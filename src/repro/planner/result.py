"""The planner's result types: :class:`PlanResult` and :class:`SolverStats`."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Optional

from ..core import CommModel, ExecutionGraph, Mapping, Plan, Platform


@dataclass
class SolverStats:
    """Bookkeeping attached to every :class:`PlanResult`.

    Attributes
    ----------
    evaluations:
        Objective computations actually performed for this solve (cache
        misses — the work the solver paid for).
    cache_hits:
        Objective queries answered from the evaluation cache.
    graphs_considered:
        Candidate execution graphs the solver scored (0 for closed-form
        methods such as ``chain``).
    wall_time:
        Wall-clock seconds for the whole solve (search + scheduling).
    extras:
        Method-specific details (e.g. the local-search solver's
        ``seed_value``, the exhaustive solver's ``space``).
    """

    evaluations: int = 0
    cache_hits: int = 0
    graphs_considered: int = 0
    wall_time: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def objective_queries(self) -> int:
        """Total objective lookups: computed plus cache-served."""
        return self.evaluations + self.cache_hits

    def as_dict(self) -> Dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "graphs_considered": self.graphs_considered,
            "wall_time": self.wall_time,
            "extras": {k: _jsonable(v) for k, v in self.extras.items()},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, Fraction):
        return {"fraction": str(value), "float": float(value)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class PlanResult:
    """Everything :func:`repro.planner.solve` knows about one solution.

    Attributes
    ----------
    objective:
        ``"period"`` or ``"latency"``.
    model:
        The communication model the solution was optimised for.
    method:
        The *resolved* solver name (``"auto"`` never appears here; see
        ``requested_method`` for what the caller asked).
    value:
        The optimiser's objective value — exact or best-known depending on
        the method/effort, as documented by the solver.
    graph:
        The chosen execution graph.
    plan:
        A concrete scheduled :class:`~repro.core.Plan` (operation list)
        realising *graph* under *model*, or ``None`` when scheduling was
        disabled.  Its achieved period/latency may differ from ``value``
        when the optimiser's evaluation effort and the scheduler disagree;
        ``scheduled_value`` exposes it.
    stats:
        :class:`SolverStats` for this solve.
    requested_method:
        The method string originally passed to ``solve`` (e.g. ``"auto"``).
    platform:
        The :class:`~repro.core.Platform` the solve targeted (``None`` for
        the paper's normalised unit platform).
    mapping:
        The service-to-server :class:`~repro.core.Mapping` the plan uses —
        pinned by the caller or chosen by the placement optimiser
        (``None`` on the unit platform, where every assignment is
        equivalent).
    deadline:
        The wall-clock budget (seconds) passed to ``solve(deadline=...)``,
        or ``None`` for an unbudgeted solve.
    budget_exhausted:
        Anytime verdict: ``True`` when the budget cut the search short (the
        result is the best incumbent, not a proved optimum), ``False`` when
        every racer completed, ``None`` for non-anytime solves.
    trajectory:
        Incumbent improvements as ``(elapsed_seconds, value, racer)``
        triples, in discovery order (``None`` for non-anytime solves).
    """

    objective: str
    model: CommModel
    method: str
    value: Fraction
    graph: ExecutionGraph
    plan: Optional[Plan] = None
    stats: SolverStats = field(default_factory=SolverStats)
    requested_method: str = ""
    platform: Optional[Platform] = None
    mapping: Optional[Mapping] = None
    deadline: Optional[float] = None
    budget_exhausted: Optional[bool] = None
    trajectory: Optional[list] = None

    @property
    def platform_label(self) -> str:
        """Short human label: ``unit``, ``hom(n)``, ``het(n)``, ``tree(n)``…

        Structured topologies surface their kind (``tree``, ``torus``) so
        a contended platform is visible at a glance in CLI tables.
        """
        if self.platform is None or self.platform.is_unit:
            return "unit"
        kind = self.platform.topology.kind
        if kind == "clique":
            kind = "hom" if self.platform.is_homogeneous else "het"
        return f"{kind}({len(self.platform)})"

    @property
    def scheduled_value(self) -> Optional[Fraction]:
        """The achieved objective of ``plan`` (``None`` without a plan)."""
        if self.plan is None:
            return None
        return self.plan.period if self.objective == "period" else self.plan.latency

    def summary(self) -> str:
        """One human-readable line, e.g. for CLI output."""
        sched = ""
        if self.plan is not None and self.scheduled_value != self.value:
            sched = f" (scheduled {self.scheduled_value})"
        return (
            f"{self.objective} under {self.model} via {self.method}: "
            f"{self.value}{sched} "
            f"[{self.stats.evaluations} evals, {self.stats.cache_hits} cache hits, "
            f"{self.stats.wall_time * 1000:.1f} ms]"
        )

    def as_dict(self, *, include_graph: bool = True) -> Dict[str, Any]:
        """JSON-serialisable rendition (fractions as string + float)."""
        out: Dict[str, Any] = {
            "objective": self.objective,
            "model": str(self.model),
            "method": self.method,
            "requested_method": self.requested_method,
            "value": str(self.value),
            "value_float": float(self.value),
            "stats": self.stats.as_dict(),
        }
        if self.plan is not None:
            out["scheduled_value"] = str(self.scheduled_value)
            out["plan_valid"] = self.plan.is_valid()
        if self.platform is not None:
            out["platform"] = self.platform_label
        if self.mapping is not None:
            out["mapping"] = {svc: srv for svc, srv in self.mapping.items()}
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.budget_exhausted is not None:
            out["budget_exhausted"] = self.budget_exhausted
        if self.trajectory is not None:
            out["trajectory"] = [
                {"elapsed": t, "value": str(v), "racer": name}
                for t, v, name in self.trajectory
            ]
        if include_graph:
            out["graph_edges"] = sorted(list(e) for e in self.graph.edges)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanResult({self.objective}, {self.model}, method={self.method!r}, "
            f"value={self.value})"
        )


__all__ = ["PlanResult", "SolverStats"]
