"""Memoized objective evaluation shared by every planner solver.

The forest heuristics (greedy construction, reparenting local search) and
the exhaustive enumerations all evaluate the same period/latency
objectives over execution graphs, and they revisit identical graphs
constantly: local search re-scores the incumbent on every pass, restarts
re-walk earlier neighbourhoods, and ``compare`` runs several methods over
one application.  :class:`EvaluationCache` memoizes those evaluations on a
*canonical* key — the application content (services, costs, selectivities,
precedence) plus the edge set, the communication model, the effort level,
and the **platform fingerprint** (server speeds, link bandwidths and the
service-to-server mapping, or the ``"unit"`` sentinel for the paper's
normalised platform) — so a value computed once is never recomputed,
within a solve or across solves, and a heterogeneous solve can never be
answered from a homogeneous entry (or vice versa).

Keys are content-based, not identity-based: :class:`~repro.core.Application`
and :class:`~repro.core.Service` are frozen dataclasses, so two separately
constructed but identical applications share cache entries.  That matters
for the greedy builder, which evaluates sub-applications created through
``Application.restricted_to``.

Both :class:`EvaluationCache` and the planner service's result cache sit
on :class:`TTLCache`, a thread-safe LRU store with optional per-entry
time-to-live, hit/miss/eviction/expiration counters (:class:`CacheStats`)
and disk persistence (:meth:`TTLCache.save` / :meth:`TTLCache.load`) —
what a long-running ``python -m repro serve`` daemon needs to stay warm
across requests and restarts without hoarding memory over millions of
distinct workloads.

Example::

    >>> from fractions import Fraction
    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> from repro.planner.cache import EvaluationCache
    >>> cache = EvaluationCache()
    >>> obj = cache.objective("period", CommModel.OVERLAP)
    >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
    >>> graph = ExecutionGraph.chain(app, ["A", "B"])
    >>> obj(graph)
    Fraction(4, 1)
    >>> obj(graph)                      # second call is a cache hit
    Fraction(4, 1)
    >>> (cache.hits, cache.misses)
    (1, 1)
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, Hashable, Optional, Tuple
from typing import Mapping as TypingMapping

from ..core import (
    CommModel,
    Exactness,
    ExecutionGraph,
    Mapping,
    Platform,
    platform_fingerprint,
)
from ..optimize.evaluation import Effort, latency_objective, period_objective

#: Objective kinds understood by the planner.
OBJECTIVES: Tuple[str, ...] = ("period", "latency")

#: Default bound on retained entries (entries are tiny; the bound only
#: protects unbounded exhaustive sweeps from hoarding memory).
DEFAULT_MAX_ENTRIES = 200_000


def graph_key(graph: ExecutionGraph) -> Hashable:
    """Canonical, content-based key for *graph*.

    Two graphs over equal applications (same services, costs,
    selectivities, precedence) with equal edge sets share a key even when
    the :class:`~repro.core.Application` objects are distinct.
    """
    return (graph.application, graph.edges)


def evaluation_key(
    kind: str,
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    exactness: Exactness = Exactness.EXACT,
) -> Hashable:
    """The full canonical cache key of one objective evaluation.

    Every discriminating input is spelled out explicitly — the objective
    kind, the communication model, the effort level, the exactness tier,
    the platform/mapping fingerprint and the graph content — so no two
    semantically different evaluations can collide:

    * the *model* is part of the key (an INORDER value is never served for
      an OUTORDER query even though both share the one-port bound);
    * the *platform fingerprint* separates every non-unit platform (and
      every distinct mapping on it) from the unit/homogeneous sentinel, so
      a heterogeneous solve can never hit a homogeneous entry;
    * the *exactness* tier keeps ``FAST`` float-image values in their own
      slot, so a fast result is never served to an exact or certified
      caller (or vice versa).

    Two deliberate collapses: the OVERLAP period is exact at every effort
    level (Theorem 1 — the bound is achievable, on any platform), so its
    three effort entries share one slot; and ``CERTIFIED`` values are
    bit-for-bit the ``EXACT`` ones (certification only changes *how*
    searches compute, never *what* an evaluation returns), so those two
    tiers share a slot — the rule lives in
    :attr:`repro.core.Exactness.memo_tier`, shared with the placement
    memo.
    """
    if kind == "period" and model is CommModel.OVERLAP:
        effort = Effort.EXACT
    return (
        kind,
        model.value,
        effort.value,
        exactness.memo_tier,
        platform_fingerprint(platform, mapping),
        graph_key(graph),
    )


@dataclass
class CacheStats:
    """A point-in-time snapshot of one :class:`TTLCache`'s counters.

    Attributes
    ----------
    hits / misses:
        Lookups answered from the store vs lookups that found nothing
        (including entries dropped because their TTL had lapsed).
    evictions:
        Entries dropped to honour ``max_entries`` (LRU order), on inserts
        *and* merges.
    expirations:
        Entries dropped because they outlived ``ttl``.
    entries:
        Entries currently stored (expired-but-unread entries count until
        a lookup or sweep notices them).
    max_entries / ttl:
        The configured bounds (``None`` = unbounded / no expiry).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    entries: int = 0
    max_entries: Optional[int] = None
    ttl: Optional[float] = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "ttl": self.ttl,
        }


class TTLCache:
    """Thread-safe LRU key/value store with optional per-entry TTL.

    The shared machinery under :class:`EvaluationCache` and the serve
    daemon's :class:`~repro.planner.result.PlanResult` cache: an
    :class:`~collections.OrderedDict` in least-recently-*used* order
    (lookups refresh recency), bounded to *max_entries* with eviction
    from the cold end, entries older than *ttl* seconds dropped lazily on
    lookup, and every mutation guarded by one re-entrant lock so an
    asyncio service loop and its worker callbacks can share an instance
    without races.  All counters are exposed through :meth:`stats`.

    Parameters
    ----------
    max_entries:
        Retain at most this many values (least-recently-used eviction).
        ``None`` disables eviction.
    ttl:
        Seconds an entry stays servable after it was stored or last
        merged.  ``None`` disables expiry.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._stamps: Dict[Hashable, float] = {}
        self._lock = threading.RLock()
        self._clock = clock
        self.max_entries = max_entries
        self.ttl = ttl
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store and not self._expired(key)

    # -- internals (call with the lock held) ------------------------------

    def _expired(self, key: Hashable) -> bool:
        if self.ttl is None:
            return False
        return self._clock() - self._stamps.get(key, 0.0) > self.ttl

    def _drop(self, key: Hashable) -> None:
        del self._store[key]
        self._stamps.pop(key, None)

    def _enforce_bound(self) -> None:
        """The single size-enforcement path: inserts and merges both land
        here, so the LRU bound (and the eviction counter) can never be
        bypassed."""
        if self.max_entries is None:
            return
        while len(self._store) > self.max_entries:
            key, _ = self._store.popitem(last=False)
            self._stamps.pop(key, None)
            self.evictions += 1

    # -- the store --------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The stored value, counting a hit/miss; TTL-lapsed entries are
        dropped and count as misses (plus an expiration)."""
        with self._lock:
            if key in self._store:
                if self._expired(key):
                    self._drop(key)
                    self.expirations += 1
                else:
                    self.hits += 1
                    self._store.move_to_end(key)
                    return self._store[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value*, stamping it now and enforcing the LRU bound."""
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            if self.ttl is not None:
                self._stamps[key] = self._clock()
            self._enforce_bound()

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._store.clear()
            self._stamps.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.expirations = 0

    def purge_expired(self) -> int:
        """Drop every TTL-lapsed entry now; returns how many went."""
        if self.ttl is None:
            return 0
        with self._lock:
            stale = [key for key in self._store if self._expired(key)]
            for key in stale:
                self._drop(key)
            self.expirations += len(stale)
            return len(stale)

    def snapshot(self) -> Dict[Hashable, Any]:
        """A plain-dict copy of the live (unexpired) entries — for
        shipping between processes or persisting to disk; keys are
        content-based, hence picklable."""
        with self._lock:
            return {
                key: value
                for key, value in self._store.items()
                if not self._expired(key)
            }

    def merge(self, entries: "TypingMapping[Hashable, Any]") -> int:
        """Adopt *entries* (e.g. another cache's :meth:`snapshot`).

        Existing keys win — both sides computed the same canonical value,
        so which copy survives is irrelevant.  Adopted entries are
        stamped *now* (their remote age is unknown) and the LRU bound is
        enforced through the same eviction path as inserts, so a merge
        can never blow the cache past ``max_entries``.  Returns the
        number of newly adopted entries (before any eviction).
        """
        with self._lock:
            added = 0
            now = self._clock() if self.ttl is not None else None
            for key, value in entries.items():
                if key not in self._store:
                    self._store[key] = value
                    if now is not None:
                        self._stamps[key] = now
                    added += 1
            self._enforce_bound()
            return added

    def stats(self) -> CacheStats:
        """Counters + configuration as one :class:`CacheStats`."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                expirations=self.expirations,
                entries=len(self._store),
                max_entries=self.max_entries,
                ttl=self.ttl,
            )

    # -- persistence ------------------------------------------------------

    def save(self, path) -> int:
        """Pickle the live entries to *path*; returns how many were saved.

        The serve daemon snapshots its warm cache here on graceful
        shutdown so a restart doesn't start cold.
        """
        entries = self.snapshot()
        with open(path, "wb") as fh:
            pickle.dump(entries, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return len(entries)

    def load(self, path) -> int:
        """Merge a :meth:`save` file back in; returns the adopted count."""
        with open(path, "rb") as fh:
            entries = pickle.load(fh)
        if not isinstance(entries, dict):
            raise ValueError(
                f"cache snapshot {path!s} does not contain a dict "
                f"(got {type(entries).__name__})"
            )
        return self.merge(entries)


class EvaluationCache(TTLCache):
    """Memo table for period/latency objective evaluations.

    A :class:`TTLCache` whose keys are :func:`evaluation_key` tuples and
    whose values are exact :class:`~fractions.Fraction` objective values.
    :meth:`get_or_compute` holds the cache lock across the compute so
    concurrent callers of the same key never duplicate work and the
    hit/miss counters stay exact under threading (objective computations
    are pure Python, so serialising them loses nothing to the GIL).
    """

    def get_or_compute(
        self,
        kind: str,
        graph: ExecutionGraph,
        model: CommModel,
        effort: Effort,
        compute: Callable[[], Fraction],
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> Fraction:
        """Return the memoized value for the canonical key, computing once."""
        key = evaluation_key(
            kind, graph, model, effort, platform, mapping, exactness
        )
        with self._lock:
            if key in self._store and not self._expired(key):
                self.hits += 1
                self._store.move_to_end(key)
                return self._store[key]
            if key in self._store:  # present but TTL-lapsed
                self._drop(key)
                self.expirations += 1
            self.misses += 1
            value = compute()
            self._store[key] = value
            if self.ttl is not None:
                self._stamps[key] = self._clock()
            self._enforce_bound()
            return value

    def objective(
        self,
        kind: str,
        model: CommModel,
        effort: Effort = Effort.HEURISTIC,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> "CachedObjective":
        """A cached ``graph -> Fraction`` evaluator for *kind* under *model*.

        *kind* is ``"period"`` or ``"latency"``; the returned callable is a
        drop-in :data:`repro.optimize.evaluation.Objective` and keeps its
        own per-instance hit/miss counters (the cache-wide counters keep
        counting too).  Binding a non-unit *platform* with ``mapping=None``
        evaluates the best server assignment per graph (see
        :mod:`repro.optimize.placement`); binding a *mapping* pins it.
        Binding an *exactness* routes the evaluation through that numeric
        tier and keys the memo slot accordingly.
        """
        if kind not in OBJECTIVES:
            raise ValueError(f"unknown objective {kind!r}; expected one of {OBJECTIVES}")
        return CachedObjective(
            self, kind, model, effort, platform, mapping, exactness
        )


class CachedObjective:
    """Callable objective bound to one (kind, model, effort, platform).

    Tracks the hits/misses charged through *this* callable so a solver can
    report per-solve statistics even when the cache is shared.
    """

    __slots__ = (
        "cache", "kind", "model", "effort", "platform", "mapping",
        "exactness", "hits", "misses",
    )

    def __init__(
        self,
        cache: EvaluationCache,
        kind: str,
        model: CommModel,
        effort: Effort,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> None:
        self.cache = cache
        self.kind = kind
        self.model = model
        self.effort = effort
        self.platform = platform
        self.mapping = mapping
        self.exactness = Exactness.coerce(exactness)
        self.hits = 0
        self.misses = 0

    @property
    def evaluations(self) -> int:
        """Total objective queries made through this callable."""
        return self.hits + self.misses

    def __call__(self, graph: ExecutionGraph) -> Fraction:
        before = self.cache.misses
        value = self.cache.get_or_compute(
            self.kind,
            graph,
            self.model,
            self.effort,
            lambda: self._compute(graph),
            self.platform,
            self.mapping,
            self.exactness,
        )
        if self.cache.misses == before:
            self.hits += 1
        else:
            self.misses += 1
        return value

    def _compute(self, graph: ExecutionGraph) -> Fraction:
        if self.kind == "period":
            return period_objective(
                graph, self.model, self.effort, self.platform, self.mapping,
                exactness=self.exactness,
            )
        return latency_objective(
            graph, self.model, self.effort, self.platform, self.mapping,
            exactness=self.exactness,
        )


_default_cache = EvaluationCache()


def default_cache() -> EvaluationCache:
    """The process-wide cache used when ``solve(..., cache=None)``."""
    return _default_cache


def clear_default_cache() -> None:
    """Reset every process-wide memo (used between benchmark runs/tests).

    Besides the evaluation cache — whose entries *and* hit/miss/eviction
    counters are reset, so a "cold" run reports cold statistics — this
    also clears the module-level placement memo of
    :mod:`repro.optimize.placement`; otherwise a run after a reset could
    silently reuse stale placement results and report misleading hit
    counts.
    """
    from ..optimize.placement import clear_placement_memo

    _default_cache.clear()
    clear_placement_memo()


__all__ = [
    "CacheStats",
    "CachedObjective",
    "DEFAULT_MAX_ENTRIES",
    "EvaluationCache",
    "OBJECTIVES",
    "TTLCache",
    "clear_default_cache",
    "default_cache",
    "evaluation_key",
    "graph_key",
]
