"""Memoized objective evaluation shared by every planner solver.

The forest heuristics (greedy construction, reparenting local search) and
the exhaustive enumerations all evaluate the same period/latency
objectives over execution graphs, and they revisit identical graphs
constantly: local search re-scores the incumbent on every pass, restarts
re-walk earlier neighbourhoods, and ``compare`` runs several methods over
one application.  :class:`EvaluationCache` memoizes those evaluations on a
*canonical* key — the application content (services, costs, selectivities,
precedence) plus the edge set, the communication model, and the effort
level — so a value computed once is never recomputed, within a solve or
across solves.

Keys are content-based, not identity-based: :class:`~repro.core.Application`
and :class:`~repro.core.Service` are frozen dataclasses, so two separately
constructed but identical applications share cache entries.  That matters
for the greedy builder, which evaluates sub-applications created through
``Application.restricted_to``.

Example::

    >>> from fractions import Fraction
    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> from repro.planner.cache import EvaluationCache
    >>> cache = EvaluationCache()
    >>> obj = cache.objective("period", CommModel.OVERLAP)
    >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
    >>> graph = ExecutionGraph.chain(app, ["A", "B"])
    >>> obj(graph)
    Fraction(4, 1)
    >>> obj(graph)                      # second call is a cache hit
    Fraction(4, 1)
    >>> (cache.hits, cache.misses)
    (1, 1)
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Callable, Hashable, Optional, Tuple

from ..core import CommModel, ExecutionGraph
from ..optimize.evaluation import Effort, latency_objective, period_objective

#: Objective kinds understood by the planner.
OBJECTIVES: Tuple[str, ...] = ("period", "latency")

#: Default bound on retained entries (entries are tiny; the bound only
#: protects unbounded exhaustive sweeps from hoarding memory).
DEFAULT_MAX_ENTRIES = 200_000


def graph_key(graph: ExecutionGraph) -> Hashable:
    """Canonical, content-based key for *graph*.

    Two graphs over equal applications (same services, costs,
    selectivities, precedence) with equal edge sets share a key even when
    the :class:`~repro.core.Application` objects are distinct.
    """
    return (graph.application, graph.edges)


class EvaluationCache:
    """LRU-bounded memo table for period/latency objective evaluations.

    Parameters
    ----------
    max_entries:
        Retain at most this many values (least-recently-used eviction).
        ``None`` disables eviction.
    """

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES) -> None:
        self._store: "OrderedDict[Hashable, Fraction]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self,
        kind: str,
        graph: ExecutionGraph,
        model: CommModel,
        effort: Effort,
        compute: Callable[[], Fraction],
    ) -> Fraction:
        """Return the memoized value for the canonical key, computing once."""
        # The OVERLAP period is exact at every effort level (Theorem 1 —
        # the bound is achievable), so all efforts share one entry.
        if kind == "period" and model is CommModel.OVERLAP:
            effort = Effort.EXACT
        key = (kind, model, effort, graph_key(graph))
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return found
        self.misses += 1
        value = compute()
        self._store[key] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def objective(
        self,
        kind: str,
        model: CommModel,
        effort: Effort = Effort.HEURISTIC,
    ) -> "CachedObjective":
        """A cached ``graph -> Fraction`` evaluator for *kind* under *model*.

        *kind* is ``"period"`` or ``"latency"``; the returned callable is a
        drop-in :data:`repro.optimize.evaluation.Objective` and keeps its
        own per-instance hit/miss counters (the cache-wide counters keep
        counting too).
        """
        if kind not in OBJECTIVES:
            raise ValueError(f"unknown objective {kind!r}; expected one of {OBJECTIVES}")
        return CachedObjective(self, kind, model, effort)


class CachedObjective:
    """Callable objective bound to one (kind, model, effort) and a cache.

    Tracks the hits/misses charged through *this* callable so a solver can
    report per-solve statistics even when the cache is shared.
    """

    __slots__ = ("cache", "kind", "model", "effort", "hits", "misses")

    def __init__(
        self,
        cache: EvaluationCache,
        kind: str,
        model: CommModel,
        effort: Effort,
    ) -> None:
        self.cache = cache
        self.kind = kind
        self.model = model
        self.effort = effort
        self.hits = 0
        self.misses = 0

    @property
    def evaluations(self) -> int:
        """Total objective queries made through this callable."""
        return self.hits + self.misses

    def __call__(self, graph: ExecutionGraph) -> Fraction:
        before = self.cache.misses
        value = self.cache.get_or_compute(
            self.kind, graph, self.model, self.effort, lambda: self._compute(graph)
        )
        if self.cache.misses == before:
            self.hits += 1
        else:
            self.misses += 1
        return value

    def _compute(self, graph: ExecutionGraph) -> Fraction:
        if self.kind == "period":
            return period_objective(graph, self.model, self.effort)
        return latency_objective(graph, self.model, self.effort)


_default_cache = EvaluationCache()


def default_cache() -> EvaluationCache:
    """The process-wide cache used when ``solve(..., cache=None)``."""
    return _default_cache


def clear_default_cache() -> None:
    """Reset the process-wide cache (used between benchmark runs/tests)."""
    _default_cache.clear()


__all__ = [
    "CachedObjective",
    "DEFAULT_MAX_ENTRIES",
    "EvaluationCache",
    "OBJECTIVES",
    "clear_default_cache",
    "default_cache",
    "graph_key",
]
