"""Memoized objective evaluation shared by every planner solver.

The forest heuristics (greedy construction, reparenting local search) and
the exhaustive enumerations all evaluate the same period/latency
objectives over execution graphs, and they revisit identical graphs
constantly: local search re-scores the incumbent on every pass, restarts
re-walk earlier neighbourhoods, and ``compare`` runs several methods over
one application.  :class:`EvaluationCache` memoizes those evaluations on a
*canonical* key — the application content (services, costs, selectivities,
precedence) plus the edge set, the communication model, the effort level,
and the **platform fingerprint** (server speeds, link bandwidths and the
service-to-server mapping, or the ``"unit"`` sentinel for the paper's
normalised platform) — so a value computed once is never recomputed,
within a solve or across solves, and a heterogeneous solve can never be
answered from a homogeneous entry (or vice versa).

Keys are content-based, not identity-based: :class:`~repro.core.Application`
and :class:`~repro.core.Service` are frozen dataclasses, so two separately
constructed but identical applications share cache entries.  That matters
for the greedy builder, which evaluates sub-applications created through
``Application.restricted_to``.

Example::

    >>> from fractions import Fraction
    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> from repro.planner.cache import EvaluationCache
    >>> cache = EvaluationCache()
    >>> obj = cache.objective("period", CommModel.OVERLAP)
    >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
    >>> graph = ExecutionGraph.chain(app, ["A", "B"])
    >>> obj(graph)
    Fraction(4, 1)
    >>> obj(graph)                      # second call is a cache hit
    Fraction(4, 1)
    >>> (cache.hits, cache.misses)
    (1, 1)
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Callable, Dict, Hashable, Optional, Tuple
from typing import Mapping as TypingMapping

from ..core import (
    CommModel,
    Exactness,
    ExecutionGraph,
    Mapping,
    Platform,
    platform_fingerprint,
)
from ..optimize.evaluation import Effort, latency_objective, period_objective

#: Objective kinds understood by the planner.
OBJECTIVES: Tuple[str, ...] = ("period", "latency")

#: Default bound on retained entries (entries are tiny; the bound only
#: protects unbounded exhaustive sweeps from hoarding memory).
DEFAULT_MAX_ENTRIES = 200_000


def graph_key(graph: ExecutionGraph) -> Hashable:
    """Canonical, content-based key for *graph*.

    Two graphs over equal applications (same services, costs,
    selectivities, precedence) with equal edge sets share a key even when
    the :class:`~repro.core.Application` objects are distinct.
    """
    return (graph.application, graph.edges)


def evaluation_key(
    kind: str,
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    exactness: Exactness = Exactness.EXACT,
) -> Hashable:
    """The full canonical cache key of one objective evaluation.

    Every discriminating input is spelled out explicitly — the objective
    kind, the communication model, the effort level, the exactness tier,
    the platform/mapping fingerprint and the graph content — so no two
    semantically different evaluations can collide:

    * the *model* is part of the key (an INORDER value is never served for
      an OUTORDER query even though both share the one-port bound);
    * the *platform fingerprint* separates every non-unit platform (and
      every distinct mapping on it) from the unit/homogeneous sentinel, so
      a heterogeneous solve can never hit a homogeneous entry;
    * the *exactness* tier keeps ``FAST`` float-image values in their own
      slot, so a fast result is never served to an exact or certified
      caller (or vice versa).

    Two deliberate collapses: the OVERLAP period is exact at every effort
    level (Theorem 1 — the bound is achievable, on any platform), so its
    three effort entries share one slot; and ``CERTIFIED`` values are
    bit-for-bit the ``EXACT`` ones (certification only changes *how*
    searches compute, never *what* an evaluation returns), so those two
    tiers share a slot — the rule lives in
    :attr:`repro.core.Exactness.memo_tier`, shared with the placement
    memo.
    """
    if kind == "period" and model is CommModel.OVERLAP:
        effort = Effort.EXACT
    return (
        kind,
        model.value,
        effort.value,
        exactness.memo_tier,
        platform_fingerprint(platform, mapping),
        graph_key(graph),
    )


class EvaluationCache:
    """LRU-bounded memo table for period/latency objective evaluations.

    Parameters
    ----------
    max_entries:
        Retain at most this many values (least-recently-used eviction).
        ``None`` disables eviction.
    """

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES) -> None:
        self._store: "OrderedDict[Hashable, Fraction]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Dict[Hashable, Fraction]:
        """A plain-dict copy of the stored entries (for shipping between
        processes — keys are content-based, hence picklable)."""
        return dict(self._store)

    def merge(self, entries: "TypingMapping[Hashable, Fraction]") -> int:
        """Adopt *entries* (e.g. another cache's :meth:`snapshot`).

        Existing keys win — both sides computed the same canonical value,
        so which copy survives is irrelevant; the LRU bound still applies.
        Returns the number of newly adopted entries.
        """
        added = 0
        for key, value in entries.items():
            if key not in self._store:
                self._store[key] = value
                added += 1
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return added

    def get_or_compute(
        self,
        kind: str,
        graph: ExecutionGraph,
        model: CommModel,
        effort: Effort,
        compute: Callable[[], Fraction],
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> Fraction:
        """Return the memoized value for the canonical key, computing once."""
        key = evaluation_key(
            kind, graph, model, effort, platform, mapping, exactness
        )
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return found
        self.misses += 1
        value = compute()
        self._store[key] = value
        if self.max_entries is not None and len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return value

    def objective(
        self,
        kind: str,
        model: CommModel,
        effort: Effort = Effort.HEURISTIC,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> "CachedObjective":
        """A cached ``graph -> Fraction`` evaluator for *kind* under *model*.

        *kind* is ``"period"`` or ``"latency"``; the returned callable is a
        drop-in :data:`repro.optimize.evaluation.Objective` and keeps its
        own per-instance hit/miss counters (the cache-wide counters keep
        counting too).  Binding a non-unit *platform* with ``mapping=None``
        evaluates the best server assignment per graph (see
        :mod:`repro.optimize.placement`); binding a *mapping* pins it.
        Binding an *exactness* routes the evaluation through that numeric
        tier and keys the memo slot accordingly.
        """
        if kind not in OBJECTIVES:
            raise ValueError(f"unknown objective {kind!r}; expected one of {OBJECTIVES}")
        return CachedObjective(
            self, kind, model, effort, platform, mapping, exactness
        )


class CachedObjective:
    """Callable objective bound to one (kind, model, effort, platform).

    Tracks the hits/misses charged through *this* callable so a solver can
    report per-solve statistics even when the cache is shared.
    """

    __slots__ = (
        "cache", "kind", "model", "effort", "platform", "mapping",
        "exactness", "hits", "misses",
    )

    def __init__(
        self,
        cache: EvaluationCache,
        kind: str,
        model: CommModel,
        effort: Effort,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        exactness: Exactness = Exactness.EXACT,
    ) -> None:
        self.cache = cache
        self.kind = kind
        self.model = model
        self.effort = effort
        self.platform = platform
        self.mapping = mapping
        self.exactness = Exactness.coerce(exactness)
        self.hits = 0
        self.misses = 0

    @property
    def evaluations(self) -> int:
        """Total objective queries made through this callable."""
        return self.hits + self.misses

    def __call__(self, graph: ExecutionGraph) -> Fraction:
        before = self.cache.misses
        value = self.cache.get_or_compute(
            self.kind,
            graph,
            self.model,
            self.effort,
            lambda: self._compute(graph),
            self.platform,
            self.mapping,
            self.exactness,
        )
        if self.cache.misses == before:
            self.hits += 1
        else:
            self.misses += 1
        return value

    def _compute(self, graph: ExecutionGraph) -> Fraction:
        if self.kind == "period":
            return period_objective(
                graph, self.model, self.effort, self.platform, self.mapping,
                exactness=self.exactness,
            )
        return latency_objective(
            graph, self.model, self.effort, self.platform, self.mapping,
            exactness=self.exactness,
        )


_default_cache = EvaluationCache()


def default_cache() -> EvaluationCache:
    """The process-wide cache used when ``solve(..., cache=None)``."""
    return _default_cache


def clear_default_cache() -> None:
    """Reset every process-wide memo (used between benchmark runs/tests).

    Besides the evaluation cache this also clears the module-level
    placement memo of :mod:`repro.optimize.placement` — otherwise a
    "cold" run after a reset could silently reuse stale placement
    results and report misleading hit counts.
    """
    from ..optimize.placement import clear_placement_memo

    _default_cache.clear()
    clear_placement_memo()


__all__ = [
    "CachedObjective",
    "DEFAULT_MAX_ENTRIES",
    "EvaluationCache",
    "OBJECTIVES",
    "clear_default_cache",
    "default_cache",
    "evaluation_key",
    "graph_key",
]
