"""``solve_many``: process-parallel batch solving with cache merging.

Production streams rarely plan one workload at a time: parameter sweeps,
galleries, nightly re-planning of a workload fleet.  :func:`solve_many`
shards a list of jobs over worker processes, solves each shard through the
ordinary :func:`repro.planner.solve` facade with a shard-local
:class:`~repro.planner.EvaluationCache`, then merges every shard's cache
entries back into the caller's cache (keys are content-based, so merged
entries keep serving later solves in the parent process) and aggregates
the per-solve :class:`~repro.planner.SolverStats`.

A *job* is anything the CLI accepts: a workload spec string (``"fig1"``,
``"random:n=9,seed=3"`` — resolved inside the worker, so nothing heavy is
pickled), a :class:`~repro.planner.catalog.Workload` (its bundled
platform/mapping apply), or a bare
:class:`~repro.core.Application`/:class:`~repro.core.ExecutionGraph`.

    >>> from repro.planner import solve_many
    >>> batch = solve_many(["fig1", "b1"], model="overlap", schedule=False,
    ...                    processes=1)
    >>> [str(r.value) for r in batch.results]
    ['4', '100']
    >>> batch.shards
    1

Exposed on the command line as ``python -m repro batch``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core import Application, ExecutionGraph, Mapping, Platform
from .cache import EvaluationCache, default_cache
from .catalog import Workload, load_workload
from .result import PlanResult, SolverStats

Job = Union[str, Workload, Application, ExecutionGraph]


@dataclass
class BatchResult:
    """Everything :func:`solve_many` knows about one batch run.

    ``results`` preserves the input job order regardless of sharding.
    ``stats`` aggregates the per-solve counters (its ``wall_time`` is the
    batch wall clock, not the sum of per-solve times — shards overlap).
    ``merged_entries`` counts cache entries adopted from the workers.
    """

    results: List[PlanResult]
    stats: SolverStats
    shards: int
    processes: int
    merged_entries: int

    def as_dict(self, *, include_graph: bool = False) -> Dict[str, Any]:
        return {
            "results": [r.as_dict(include_graph=include_graph) for r in self.results],
            "stats": self.stats.as_dict(),
            "shards": self.shards,
            "processes": self.processes,
            "merged_entries": self.merged_entries,
        }


def _resolve_job(
    job: Job,
    platform: Union[str, Platform, None],
    mapping: Optional[Mapping],
) -> Tuple[Any, Any, Any]:
    """(problem, platform, mapping) for one job.

    An explicit batch-wide platform wins over a workload's bundled one
    (mirroring the CLI's ``--platform`` semantics — the bundled mapping
    only makes sense on the bundled platform).
    """
    if isinstance(job, str):
        job = load_workload(job)
    if isinstance(job, Workload):
        if platform is not None:
            return job.problem, platform, mapping
        return job.problem, job.platform, job.mapping
    return job, platform, mapping


def _solve_shard(payload: Tuple[Sequence[Tuple[int, Job]], Dict[str, Any]]):
    """Worker body: solve one shard against a fresh shard-local cache.

    Returns ``(indexed results, cache snapshot)`` — the snapshot travels
    back so the parent can merge it (content-based keys pickle cleanly).
    """
    from .facade import solve  # deferred: keep the pickled payload light

    jobs, kwargs = payload
    platform = kwargs.pop("platform", None)
    mapping = kwargs.pop("mapping", None)
    cache = EvaluationCache()
    results: List[Tuple[int, PlanResult]] = []
    for index, job in jobs:
        problem, job_platform, job_mapping = _resolve_job(job, platform, mapping)
        results.append(
            (
                index,
                solve(
                    problem,
                    platform=job_platform,
                    mapping=job_mapping,
                    cache=cache,
                    **kwargs,
                ),
            )
        )
    return results, cache.snapshot()


def solve_many(
    jobs: Sequence[Job],
    *,
    processes: Optional[int] = None,
    cache: Optional[EvaluationCache] = None,
    pool: Optional[Any] = None,
    **solve_kwargs: Any,
) -> BatchResult:
    """Solve every job, sharding over worker processes; returns
    :class:`BatchResult`.

    Parameters
    ----------
    jobs:
        Workload spec strings, :class:`Workload` bundles, or bare
        problems; order is preserved in ``results``.
    processes:
        Worker process count; ``None`` picks ``min(cpu_count, len(jobs))``
        and ``1`` (or a single job) solves serially in-process.  Workers
        are plain ``concurrent.futures`` processes — no external
        dependencies.
    cache:
        Where the merged shard caches land (default: the process-wide
        planner cache), priming every later solve in this process.
    pool:
        An already-running ``concurrent.futures`` executor to shard over
        instead of spawning (and tearing down) a fresh process pool per
        call.  The serve daemon passes its persistent worker pool here so
        micro-batched request groups don't pay process startup on every
        batch.  The caller owns the pool's lifecycle; ``processes`` still
        bounds how many shards are cut.
    solve_kwargs:
        Forwarded to :func:`repro.planner.solve` for every job —
        ``objective``, ``model``, ``method``, ``effort``, ``schedule``,
        ``platform``, ``mapping``, solver options...

    Jobs are dealt round-robin so similarly sized neighbours spread across
    shards.  Worker failures propagate (the batch is all-or-nothing).
    """
    jobs = list(jobs)
    if not jobs:
        raise ValueError("solve_many needs at least one job")
    target_cache = cache if cache is not None else default_cache()
    if processes is None:
        processes = min(os.cpu_count() or 1, len(jobs))
    processes = max(1, int(processes))
    started = time.perf_counter()

    indexed = list(enumerate(jobs))
    if processes == 1 or len(jobs) == 1:
        processes = 1  # report what actually ran, not what was requested
        shard_outcomes = [_solve_shard((indexed, dict(solve_kwargs)))]
    else:
        shards = [indexed[i::processes] for i in range(processes)]
        shards = [s for s in shards if s]
        processes = len(shards)  # workers actually spawned
        if pool is not None:
            futures = [
                pool.submit(_solve_shard, (shard, dict(solve_kwargs)))
                for shard in shards
            ]
            shard_outcomes = [f.result() for f in futures]
        else:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(shards)
            ) as fresh_pool:
                futures = [
                    fresh_pool.submit(_solve_shard, (shard, dict(solve_kwargs)))
                    for shard in shards
                ]
                shard_outcomes = [f.result() for f in futures]

    merged = 0
    ordered: List[Optional[PlanResult]] = [None] * len(jobs)
    totals = SolverStats()
    for results, snapshot in shard_outcomes:
        merged += target_cache.merge(snapshot)
        for index, result in results:
            ordered[index] = result
            totals.evaluations += result.stats.evaluations
            totals.cache_hits += result.stats.cache_hits
            totals.graphs_considered += result.stats.graphs_considered
    totals.wall_time = time.perf_counter() - started
    totals.extras = {"jobs": len(jobs)}
    assert all(r is not None for r in ordered)
    return BatchResult(
        results=[r for r in ordered if r is not None],
        stats=totals,
        shards=len(shard_outcomes),
        processes=processes,
        merged_entries=merged,
    )


__all__ = ["BatchResult", "Job", "solve_many"]
