"""`solve` / `compare`: the single front door to mapping and orchestration.

Every consumer of the reproduction — examples, benchmarks, the CLI —
states *what* it wants optimised (objective, communication model) and
optionally *how* (method, effort); the facade picks a solver, routes all
objective evaluations through the shared memo cache, schedules a concrete
operation list for the winning graph, and returns a :class:`PlanResult`.

Two problem shapes are accepted:

* an :class:`~repro.core.Application` — the **mapping** problem: search
  the space of execution graphs (NP-hard in general; Theorems 2 and 4);
* an :class:`~repro.core.ExecutionGraph` — the **orchestration** problem:
  the graph is fixed, find the best operation list for it (the setting of
  the paper's Section 2.3 worked example).

Quickstart::

    >>> from repro import make_application
    >>> from repro.planner import solve
    >>> app = make_application([("A", 1, "1/2"), ("B", 4, "1/2"), ("C", 16, 1)])
    >>> result = solve(app, objective="period", model="overlap")
    >>> result.value
    Fraction(4, 1)
    >>> result.method
    'branch-and-bound'
    >>> result.plan.is_valid()
    True
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Optional, Sequence, Union

from ..core import (
    ALL_MODELS,
    Application,
    CommModel,
    Exactness,
    ExecutionGraph,
    Mapping,
    Plan,
    Platform,
    platform_fingerprint,
)
from ..optimize.evaluation import Effort
from ..scheduling.inorder import inorder_schedule
from ..scheduling.latency import (
    best_latency_schedule,
    oneport_latency_schedule,
    tree_latency_schedule,
)
from ..scheduling.outorder import outorder_schedule
from ..scheduling.overlap import schedule_period_overlap
from .cache import EvaluationCache, default_cache, graph_key
from .catalog import load_platform
from .registry import MAX_DAG_SERVICES, SolverRegistry, registry as default_registry
from .result import PlanResult, SolverStats

Problem = Union[Application, ExecutionGraph]

#: ``method="auto"`` answers exactly up to these sizes (forests for
#: period, DAGs for latency), heuristic search beyond them.  Branch and
#: bound prunes with Cin/Ccomp/Cout lower bounds, so the exact range
#: reaches well past the plain-enumeration caps (which were 5 and 4); the
#: certified float fast path (the default exactness) pushed the period
#: frontier from 8 to 10 — n=10 certifies in well under a second where
#: exact-tier arithmetic took several.
AUTO_EXHAUSTIVE_MAX = {"period": 10, "latency": MAX_DAG_SERVICES}

#: Orchestration methods (fixed graph) and the evaluation effort they map to.
_GRAPH_EFFORT = {
    "exhaustive": Effort.EXACT,
    "heuristic": Effort.HEURISTIC,
    "bound": Effort.BOUND,
}


def _coerce_model(model: Union[str, CommModel]) -> CommModel:
    if isinstance(model, CommModel):
        return model
    try:
        return CommModel(str(model).lower())
    except ValueError:
        names = ", ".join(m.value for m in ALL_MODELS)
        raise ValueError(f"unknown model {model!r}; expected one of: {names}") from None


def _coerce_objective(objective: str) -> str:
    obj = str(objective).lower()
    if obj not in ("period", "latency"):
        raise ValueError(
            f"unknown objective {objective!r}; expected 'period' or 'latency'"
        )
    return obj


def _coerce_effort(effort: Union[str, Effort, None], fallback: Effort) -> Effort:
    if effort is None:
        return fallback
    if isinstance(effort, Effort):
        return effort
    try:
        return Effort(str(effort).lower())
    except ValueError:
        names = ", ".join(e.value for e in Effort)
        raise ValueError(f"unknown effort {effort!r}; expected one of: {names}") from None


def _coerce_exactness(exactness: Union[str, Exactness, None]) -> Exactness:
    """``None`` means the default tier: certified (bit-for-bit exact values,
    float-tier speed inside the searches)."""
    return Exactness.coerce(exactness)


def _coerce_robust(robust):
    """Accept a :class:`~repro.robust.RobustSpec`, a spec string, or ``None``.

    Imported lazily: ``repro.robust`` itself calls back into this module,
    and a top-level import would trip over the partially-initialised
    planner package.
    """
    if robust is None:
        return None
    from ..robust.spec import RobustSpec

    return RobustSpec.coerce(robust)


def _coerce_platform(platform: Union[str, Platform, None]) -> Optional[Platform]:
    """Accept a :class:`Platform`, a catalog spec string, or ``None``."""
    if platform is None or isinstance(platform, Platform):
        return platform
    if isinstance(platform, str):
        return load_platform(platform)
    raise TypeError(
        f"platform must be a Platform, a spec string, or None, "
        f"got {type(platform).__name__}"
    )


def _coerce_mapping(
    mapping, platform: Optional[Platform]
) -> Optional[Mapping]:
    """Accept a :class:`Mapping`, a plain service->server dict, or ``None``."""
    if mapping is None:
        return None
    if platform is None:
        raise ValueError("a mapping requires a platform")
    if not isinstance(mapping, Mapping):
        mapping = Mapping(dict(mapping))
    if not mapping.is_injective:
        raise ValueError(
            "solve() schedules one service per server; use "
            "repro.planner.solve_concurrent for shared-server mappings"
        )
    return mapping


def _resolve_mapping(
    graph: ExecutionGraph,
    objective: str,
    model: CommModel,
    effort: Effort,
    platform: Optional[Platform],
    mapping: Optional[Mapping],
    exactness: Exactness = Exactness.EXACT,
) -> Optional[Mapping]:
    """The mapping a concrete schedule should use.

    A pinned mapping wins; unit platforms keep the positional default
    (every assignment is equivalent there); non-unit platforms run the
    placement optimiser for the chosen graph (on the numeric tier the
    exactness knob picks — usually a placement-memo lookup by then).
    """
    if platform is None or mapping is not None or platform.is_unit:
        return mapping
    from ..optimize.placement import optimize_mapping

    _, best = optimize_mapping(
        graph, objective, model, effort, platform, exactness=exactness
    )
    return best


def build_schedule(
    graph: ExecutionGraph,
    objective: str,
    model: CommModel,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """A concrete operation list for *graph* optimised towards *objective*.

    Period: Theorem-1 construction (OVERLAP), exact/greedy MCR
    orchestration (INORDER), repair scheduler (OUTORDER).  Latency:
    Algorithm 1 on forests, otherwise the greedy serialized one-port
    schedule, improved by the layered bandwidth-sharing schedule under
    OVERLAP.  *platform*/*mapping* scale every duration (``None`` is the
    paper's unit platform).
    """
    if objective == "period":
        if model is CommModel.OVERLAP:
            return schedule_period_overlap(graph, platform=platform, mapping=mapping)
        if model is CommModel.INORDER:
            return inorder_schedule(graph, platform=platform, mapping=mapping)
        return outorder_schedule(graph, platform=platform, mapping=mapping)
    if graph.is_forest:
        plan = tree_latency_schedule(graph, platform=platform, mapping=mapping)
        return Plan(
            plan.graph, plan.operation_list, model,
            platform=plan.platform, mapping=plan.mapping,
        )
    if model is CommModel.OVERLAP:
        return best_latency_schedule(graph, platform=platform, mapping=mapping)
    return oneport_latency_schedule(graph, model, platform=platform, mapping=mapping)


def _auto_method(app: Application, objective: str) -> str:
    """Method selection for ``method="auto"`` on the mapping problem.

    Small instances (``n <= AUTO_EXHAUSTIVE_MAX[objective]``) are solved
    exactly by pruned branch and bound; larger ones fall back to greedy
    construction plus reparenting local search.  Precedence-constrained
    applications must fit the exact DAG enumeration (branch and bound and
    the forest heuristics assume independent services).
    """
    n = len(app)
    if app.precedence:
        if n <= MAX_DAG_SERVICES:
            return "exhaustive"
        raise NotImplementedError(
            f"no registered heuristic handles precedence constraints with "
            f"n={n} > {MAX_DAG_SERVICES} services"
        )
    if n <= AUTO_EXHAUSTIVE_MAX[objective]:
        return "branch-and-bound"
    return "local-search"


def solve_key(
    problem: Problem,
    *,
    objective: str = "period",
    model: Union[str, CommModel] = CommModel.OVERLAP,
    method: str = "auto",
    effort: Union[str, Effort, None] = None,
    schedule: bool = True,
    platform: Union[str, Platform, None] = None,
    mapping=None,
    exactness: Union[str, Exactness, None] = None,
    deadline: Optional[float] = None,
    robust=None,
) -> Hashable:
    """The canonical fingerprint of one :func:`solve` request.

    Two calls with equal keys are guaranteed to ask for interchangeable
    results — same objective/model/method/effort, same numeric tier, same
    platform and mapping (by :func:`~repro.core.platform_fingerprint`,
    so a spec string and the :class:`~repro.core.Platform` it loads to
    agree), same deadline, and the same problem *content* (frozen
    application / graph-edge equality, not object identity).  The serve
    daemon keys both its in-flight request coalescing and its result
    cache on this: N identical concurrent requests collapse to one
    underlying solve, while requests differing in **any** discriminating
    input — a different platform, a different exactness tier — never
    share a slot.

    Inputs run through the same coercions as :func:`solve`, so
    ``model="overlap"`` and ``model=CommModel.OVERLAP`` fingerprint
    identically.  The three exactness tiers are all kept distinct here
    (unlike the evaluation-cache key, which collapses certified into
    exact): a certified and an exact solve return the same values but
    different solver statistics, and a coalesced response reports the
    statistics of the solve that actually ran.

    A robust solve appends ``("robust", spec.key())`` as a tenth element;
    ``robust=None`` keys are bit-for-bit what they were before robust
    planning existed, so nothing previously cached is invalidated.
    """
    obj = _coerce_objective(objective)
    mdl = _coerce_model(model)
    plat = _coerce_platform(platform)
    mapp = _coerce_mapping(mapping, plat)
    exact = _coerce_exactness(exactness)
    spec = _coerce_robust(robust)
    eff = None if effort is None else _coerce_effort(effort, Effort.HEURISTIC)
    if isinstance(problem, ExecutionGraph):
        content: Hashable = ("graph", graph_key(problem))
    elif isinstance(problem, Application):
        content = ("application", problem)
    else:
        raise TypeError(
            f"problem must be an Application or ExecutionGraph, "
            f"got {type(problem).__name__}"
        )
    base = (
        obj,
        mdl.value,
        str(method),
        None if eff is None else eff.value,
        exact.value,
        platform_fingerprint(plat, mapp),
        deadline,
        bool(schedule),
        content,
    )
    if spec is None:
        return base
    return base + (("robust", spec.key()),)


def solve(
    problem: Problem,
    *,
    objective: str = "period",
    model: Union[str, CommModel] = CommModel.OVERLAP,
    method: str = "auto",
    effort: Union[str, Effort, None] = None,
    schedule: bool = True,
    cache: Optional[EvaluationCache] = None,
    registry: Optional[SolverRegistry] = None,
    platform: Union[str, Platform, None] = None,
    mapping=None,
    exactness: Union[str, Exactness, None] = None,
    deadline: Optional[float] = None,
    robust=None,
    **solver_options,
) -> PlanResult:
    """Solve a mapping or orchestration problem; returns :class:`PlanResult`.

    Parameters
    ----------
    problem:
        An :class:`~repro.core.Application` (search over execution graphs)
        or an :class:`~repro.core.ExecutionGraph` (graph fixed; evaluate
        and schedule it).
    objective:
        ``"period"`` (throughput) or ``"latency"`` (response time).
    model:
        Communication model — a :class:`~repro.core.CommModel` or one of
        ``"overlap"``, ``"inorder"``, ``"outorder"``.
    method:
        For applications: a registered solver name (``"exhaustive"``,
        ``"greedy"``, ``"local-search"``, ``"chain"``, ``"nocomm"``, or a
        custom registration), or ``"auto"`` to pick by instance size.  For
        graphs: ``"auto"`` (model scheduler), ``"exhaustive"``,
        ``"heuristic"`` or ``"bound"`` (evaluation efforts).
    effort:
        Evaluation effort for graph scoring inside mapping solvers
        (default: ``EXACT`` for ``exhaustive``, ``HEURISTIC`` otherwise).
    schedule:
        Also build a concrete scheduled :class:`~repro.core.Plan` for the
        chosen graph (on by default).
    cache:
        An :class:`EvaluationCache`; defaults to the process-wide shared
        cache.
    registry:
        Solver registry; defaults to :data:`repro.planner.registry`.
    platform:
        Server speeds and link bandwidths — a
        :class:`~repro.core.Platform`, a catalog spec string (``"het4"``,
        ``"hom:n=8"``, ``"het:n=6,seed=1"``), or ``None`` for the paper's
        normalised unit platform.  On a non-unit platform the solvers
        search over graph x server-assignment.
    mapping:
        Pin services to servers (a :class:`~repro.core.Mapping` or a plain
        ``{service: server}`` dict).  Default: the placement optimiser
        chooses the assignment per candidate graph.
    exactness:
        Numeric tier of the solve (:class:`~repro.core.Exactness` or its
        string value).  The default ``"certified"`` runs searches on the
        float fast path with the eps-guarded certification protocol —
        returned values are **bit-for-bit identical** to ``"exact"``, at
        a fraction of the wall time.  ``"exact"`` forces Fraction
        arithmetic everywhere; ``"fast"`` stays on the float tier and
        returns uncertified float-image values.  The evaluation-cache and
        placement-memo keys include the tier, so a fast value is never
        served to a certified or exact caller.
    deadline:
        Wall-clock budget in seconds — the anytime knob.  On an
        :class:`~repro.core.Application` the solve is routed through the
        ``portfolio`` solver (greedy / local search / branch and bound
        racing a shared incumbent; the requested *method* becomes the
        portfolio's primary racer) and **always returns a valid plan**:
        the best certified incumbent when the budget runs out, the same
        result as the unbudgeted solve when it suffices.
        :attr:`PlanResult.budget_exhausted` and
        :attr:`PlanResult.trajectory` report what happened.  Fixed-graph
        orchestration is direct evaluation, so there the deadline is
        recorded but does not alter the solve.
    robust:
        Plan under parameter uncertainty instead of trusting the nominal
        numbers — a :class:`~repro.robust.RobustSpec`, a spec string such
        as ``"worst_case:eps=1/10,k=12"`` or ``"quantile:q=9/10,eps=5/100"``,
        or ``None`` (default, the plain nominal solve — behaviour,
        values, and cache keys are bit-for-bit unchanged).  With a spec,
        candidate plans are gathered from the nominal and per-scenario
        solves, ranked by their robust score across the seeded scenario
        set, and the winner — certified in exact arithmetic, never worse
        than the nominal plan under the spec's own score — is scheduled
        on the nominal parameters.  ``result.value`` is the exact robust
        score; ``result.stats.extras["robust"]`` holds the evidence.
    solver_options:
        Extra keyword arguments forwarded to the solver (e.g.
        ``max_moves=500`` for ``local-search``).

    Examples
    --------
    The Section 2.3 instance, orchestrated under INORDER (the "surprising"
    fractional optimum)::

        >>> from repro.planner import solve
        >>> from repro.workloads import fig1_example
        >>> solve(fig1_example().graph, objective="period", model="inorder",
        ...       method="exhaustive").value
        Fraction(23, 3)
    """
    started = time.perf_counter()
    obj = _coerce_objective(objective)
    mdl = _coerce_model(model)
    plat = _coerce_platform(platform)
    mapp = _coerce_mapping(mapping, plat)
    exact = _coerce_exactness(exactness)
    cache = cache if cache is not None else default_cache()
    spec = _coerce_robust(robust)

    if spec is not None:
        from ..robust.scoring import solve_robust

        result = solve_robust(
            problem,
            robust=spec,
            objective=obj,
            model=mdl,
            method=method,
            effort=effort,
            schedule=schedule,
            cache=cache,
            registry=registry,
            platform=plat,
            mapping=mapp,
            exactness=exact,
            deadline=deadline,
            solver_options=solver_options,
        )
        result.stats.wall_time = time.perf_counter() - started
        return result

    if plat is not None:
        plat.require_capacity(
            len(problem.nodes if isinstance(problem, ExecutionGraph) else problem)
        )

    if isinstance(problem, ExecutionGraph):
        if solver_options:
            raise TypeError(
                f"unexpected keyword arguments for a fixed-graph problem: "
                f"{sorted(solver_options)} (solver options only apply when "
                f"solving an Application)"
            )
        result = _solve_graph(
            problem, obj, mdl, method, effort, schedule, cache, plat, mapp,
            exact,
        )
        result.deadline = deadline
    elif isinstance(problem, Application):
        result = _solve_application(
            problem, obj, mdl, method, effort, schedule, cache,
            registry if registry is not None else default_registry,
            plat, mapp, exact, deadline, solver_options,
        )
    else:
        raise TypeError(
            f"problem must be an Application or ExecutionGraph, "
            f"got {type(problem).__name__}"
        )
    result.stats.wall_time = time.perf_counter() - started
    return result


def _solve_application(
    app: Application,
    objective: str,
    model: CommModel,
    method: str,
    effort: Union[str, Effort, None],
    schedule: bool,
    cache: EvaluationCache,
    registry: SolverRegistry,
    platform: Optional[Platform],
    mapping: Optional[Mapping],
    exactness: Exactness,
    deadline: Optional[float],
    solver_options,
) -> PlanResult:
    requested = method
    if deadline is not None and not app.precedence:
        # The anytime path: whatever method was asked for becomes the
        # portfolio's primary racer, so the unbudgeted result is still
        # reachable when the budget suffices.  (Precedence-constrained
        # applications have no anytime roster — greedy and the forest
        # searches assume independent services — so the deadline is
        # recorded but the requested solver runs as-is.)
        if method != "portfolio":
            solver_options = dict(solver_options)
            solver_options.setdefault("primary", method)
        method = "portfolio"
        solver_options = {**solver_options, "deadline": deadline}
    if method == "auto":
        method = _auto_method(app, objective)
    spec = registry.get(method)
    if not spec.supports(app, objective):
        raise ValueError(
            f"solver {method!r} does not support this instance "
            f"(objective={objective}, n={len(app)}, "
            f"precedence={bool(app.precedence)})"
        )
    eff = _coerce_effort(
        effort,
        Effort.EXACT
        if method in ("exhaustive", "branch-and-bound")
        else Effort.HEURISTIC,
    )
    objective_fn = cache.objective(
        objective, model, eff, platform, mapping, exactness
    )
    value, graph, extras = spec.run(
        app,
        objective=objective,
        model=model,
        effort=eff,
        objective_fn=objective_fn,
        **solver_options,
    )
    trajectory = extras.pop("trajectory", None)
    budget_exhausted = extras.pop("budget_exhausted", None)
    stats = SolverStats(
        evaluations=objective_fn.misses,
        cache_hits=objective_fn.hits,
        graphs_considered=extras.pop("graphs_considered", objective_fn.evaluations),
        extras={"effort": eff.value, "exactness": exactness.value, **extras},
    )
    resolved = _resolve_mapping(
        graph, objective, model, eff, platform, mapping, exactness
    )
    plan = (
        build_schedule(graph, objective, model, platform, resolved)
        if schedule
        else None
    )
    return PlanResult(
        objective=objective,
        model=model,
        method=method,
        value=value,
        graph=graph,
        plan=plan,
        stats=stats,
        requested_method=requested,
        platform=platform,
        mapping=resolved,
        deadline=deadline,
        budget_exhausted=budget_exhausted,
        trajectory=trajectory,
    )


def _solve_graph(
    graph: ExecutionGraph,
    objective: str,
    model: CommModel,
    method: str,
    effort: Union[str, Effort, None],
    schedule: bool,
    cache: EvaluationCache,
    platform: Optional[Platform],
    mapping: Optional[Mapping],
    exactness: Exactness = Exactness.EXACT,
) -> PlanResult:
    requested = method
    plan: Optional[Plan] = None
    resolved = mapping
    if method == "auto" and effort is not None:
        # An explicit effort on a fixed graph means "evaluate at this
        # effort", not "run the scheduler" — don't silently ignore it.
        eff = _coerce_effort(effort, Effort.HEURISTIC)
        method = {v: k for k, v in _GRAPH_EFFORT.items()}[eff]
    if method == "auto":
        if schedule:
            # The model's scheduler is authoritative: its value is achieved
            # by a concrete validated operation list.
            resolved = _resolve_mapping(
                graph, objective, model, Effort.HEURISTIC, platform, mapping,
                exactness,
            )
            plan = build_schedule(graph, objective, model, platform, resolved)
            value = plan.period if objective == "period" else plan.latency
            stats = SolverStats(graphs_considered=1)
        else:
            # No operation list requested: the memoized heuristic objective
            # is the same scheduler family's value, so nothing is built and
            # discarded.  On a non-unit platform the objective already ran
            # the placement search, so resolving the winning mapping below
            # is a placement-memo lookup, not a second search.
            objective_fn = cache.objective(
                objective, model, Effort.HEURISTIC, platform, mapping, exactness
            )
            value = objective_fn(graph)
            resolved = _resolve_mapping(
                graph, objective, model, Effort.HEURISTIC, platform, mapping,
                exactness,
            )
            stats = SolverStats(
                evaluations=objective_fn.misses,
                cache_hits=objective_fn.hits,
                graphs_considered=1,
            )
        method = "schedule"
    elif method in _GRAPH_EFFORT:
        eff = _coerce_effort(effort, _GRAPH_EFFORT[method])
        objective_fn = cache.objective(
            objective, model, eff, platform, mapping, exactness
        )
        value = objective_fn(graph)
        stats = SolverStats(
            evaluations=objective_fn.misses,
            cache_hits=objective_fn.hits,
            graphs_considered=1,
            extras={"effort": eff.value, "exactness": exactness.value},
        )
        resolved = _resolve_mapping(
            graph, objective, model, eff, platform, mapping, exactness
        )
        if schedule:
            plan = build_schedule(graph, objective, model, platform, resolved)
    else:
        known = ", ".join(["auto", *_GRAPH_EFFORT])
        raise ValueError(
            f"unknown orchestration method {method!r} for a fixed execution "
            f"graph; expected one of: {known}"
        )
    return PlanResult(
        objective=objective,
        model=model,
        method=method,
        value=value,
        graph=graph,
        plan=plan,
        stats=stats,
        requested_method=requested,
        platform=platform,
        mapping=resolved,
    )


def compare(
    problem: Problem,
    *,
    objectives: Sequence[str] = ("period",),
    models: Iterable[Union[str, CommModel]] = ALL_MODELS,
    methods: Sequence[str] = ("auto",),
    **kwargs,
) -> List[PlanResult]:
    """Solve *problem* over a grid of objectives × models × methods.

    Returns the flat list of :class:`PlanResult` in grid order (objective
    outermost, method innermost).  All solves share one evaluation cache,
    so methods re-scoring the same graphs hit the memo table.

    Example::

        >>> from repro.planner import compare
        >>> from repro.workloads import fig1_example
        >>> results = compare(fig1_example().graph, objectives=["period"])
        >>> [(str(r.model), str(r.value)) for r in results]
        [('OVERLAP', '4'), ('INORDER', '23/3'), ('OUTORDER', '7')]
    """
    results: List[PlanResult] = []
    for objective in objectives:
        for model in models:
            for method in methods:
                results.append(
                    solve(
                        problem,
                        objective=objective,
                        model=model,
                        method=method,
                        **kwargs,
                    )
                )
    return results


__all__ = [
    "AUTO_EXHAUSTIVE_MAX",
    "Problem",
    "build_schedule",
    "compare",
    "solve",
    "solve_key",
]
