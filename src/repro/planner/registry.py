"""Pluggable solver registry backing :func:`repro.planner.solve`.

A *solver* turns an :class:`~repro.core.Application` into an execution
graph optimised for a period or latency objective.  The built-in solvers
wrap the strategies of :mod:`repro.optimize`:

========================  =====================================================
``exhaustive``            Enumerate forests (MinPeriod, Proposition 4) or DAGs
                          (MinLatency) and keep the best — exact, exponential.
``greedy``                Incremental forest construction (cost-ordered
                          insertion, best attachment point).
``local-search``          Greedy seed + first-improvement reparenting search.
``hierarchical``          Structure on the unit abstraction, then
                          topology-partitioned placement, then
                          pinned-placement refinement.
``chain``                 Optimal *chain* plan in closed form (Propositions 8
                          and 16) — polynomial, restricted structure.
``nocomm``                The communication-free optimum of Srivastava et al.,
                          re-evaluated with communication costs (baseline).
========================  =====================================================

Registering a custom solver::

    >>> from repro.planner import SolverRegistry, registry
    >>> from repro.core import ExecutionGraph
    >>> def star_solver(app, *, objective, model, effort, objective_fn):
    ...     hub = min(app.names, key=app.cost)
    ...     graph = ExecutionGraph(app, [(hub, n) for n in app.names if n != hub])
    ...     return objective_fn(graph), graph, {"hub": hub}
    >>> reg = SolverRegistry()
    >>> spec = reg.register("star", star_solver,
    ...                     description="cheapest service feeds all")
    >>> "star" in reg
    True

A solver callable receives the application plus keyword arguments
``objective`` (``"period"``/``"latency"``), ``model``
(:class:`~repro.core.CommModel`), ``effort``
(:class:`~repro.optimize.Effort`) and ``objective_fn`` (a memoized
``graph -> Fraction`` evaluator; route all scoring through it to benefit
from the shared cache).  It returns ``(value, graph, extras)`` where
*extras* is a dict merged into :attr:`PlanResult.stats.extras`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..core import Application, CommModel, Exactness, ExecutionGraph
from ..optimize.branch_and_bound import (
    MAX_BB_LATENCY_SERVICES,
    bb_minlatency,
    bb_minperiod,
)
from ..optimize.chains import minlatency_chain, minperiod_chain
from ..optimize.evaluation import (
    Effort,
    make_fast_latency_objective,
    make_fast_period_objective,
    make_forest_period_batch,
    make_latency_objective,
    make_period_objective,
)
from ..optimize.exhaustive import (
    MAX_DAG_SERVICES,
    iter_dags,
    iter_forests,
    scan_best,
    scan_best_forests_batched,
)
from ..optimize.greedy import greedy_forest
from ..optimize.incremental import period_delta
from ..optimize.local_search import local_search_forest
from ..optimize.nocomm import (
    nocomm_optimal_latency_chain,
    nocomm_optimal_period_plan,
)

SolverOutcome = Tuple[Fraction, ExecutionGraph, Dict[str, Any]]
SolverFn = Callable[..., SolverOutcome]


@dataclass(frozen=True)
class SolverSpec:
    """A registered solver plus the metadata ``auto`` selection needs."""

    name: str
    run: SolverFn
    description: str = ""
    objectives: Tuple[str, ...] = ("period", "latency")
    supports_precedence: bool = False
    #: ``None`` means unbounded; otherwise the solver refuses larger apps.
    max_services: Optional[int] = None

    def supports(
        self, app: Application, objective: str
    ) -> bool:
        """Can this solver handle *app* for *objective*?"""
        if objective not in self.objectives:
            return False
        if app.precedence and not self.supports_precedence:
            return False
        if self.max_services is not None and len(app) > self.max_services:
            return False
        return True


class SolverRegistry:
    """Name -> :class:`SolverSpec` mapping with registration helpers."""

    def __init__(self) -> None:
        self._solvers: Dict[str, SolverSpec] = {}

    def register(
        self,
        name: str,
        run: SolverFn,
        *,
        description: str = "",
        objectives: Tuple[str, ...] = ("period", "latency"),
        supports_precedence: bool = False,
        max_services: Optional[int] = None,
        replace: bool = False,
    ) -> SolverSpec:
        """Register *run* under *name*; returns the stored spec.

        Raises :class:`ValueError` on duplicate names unless ``replace``.
        """
        if name in self._solvers and not replace:
            raise ValueError(f"solver {name!r} is already registered")
        spec = SolverSpec(
            name=name,
            run=run,
            description=description,
            objectives=tuple(objectives),
            supports_precedence=supports_precedence,
            max_services=max_services,
        )
        self._solvers[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        del self._solvers[name]

    def get(self, name: str) -> SolverSpec:
        try:
            return self._solvers[name]
        except KeyError:
            known = ", ".join(sorted(self._solvers))
            raise ValueError(
                f"unknown solver {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._solvers

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._solvers.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._solvers))


# ---------------------------------------------------------------------------
# Built-in solvers
# ---------------------------------------------------------------------------

def _solve_exhaustive(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
    space: Optional[str] = None,
    batch: bool = True,
    chunk: int = 512,
) -> SolverOutcome:
    """Exact enumeration: forests for period (Prop 4), DAGs for latency.

    MinLatency optima need not be forests (the Prop-13 fork-join gadget),
    so latency requires DAG enumeration, which is only feasible for
    ``n <= 5``; larger latency instances are refused rather than silently
    restricted.  *space* (a solver option: ``solve(app, method="exhaustive",
    space="forests")``) forces ``"forests"`` (the Prop-17 restricted
    problem) or ``"dags"`` explicitly.  Precedence-constrained
    applications need DAG enumeration (forests cannot express multiple
    predecessors' transitive requirements in general).
    """
    if space not in (None, "forests", "dags"):
        raise ValueError(f"space must be 'forests' or 'dags', got {space!r}")
    if space is None:
        if objective == "period" and not app.precedence:
            space = "forests"
        elif len(app) <= MAX_DAG_SERVICES:
            space = "dags"
        elif app.precedence:
            raise ValueError(
                f"exhaustive search with precedence constraints requires "
                f"n <= {MAX_DAG_SERVICES} services (DAG enumeration), got {len(app)}"
            )
        else:
            raise ValueError(
                f"exhaustive MinLatency needs n <= {MAX_DAG_SERVICES} for DAG "
                f"enumeration (got n={len(app)}; optimal latency plans need "
                f"not be forests — Prop 13); pass space='forests' for the "
                f"forest-restricted problem or use method='local-search'"
            )
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    fast_objective = None
    if exactness.uses_float:
        # Certified two-tier scan: float-gate the candidates, score the
        # survivors through the (memoized, exact) objective.  Where no
        # float kernel covers the configuration this stays a plain scan.
        if objective == "period":
            fast_objective = make_fast_period_objective(
                model, effort, platform, mapping
            )
        else:
            fast_objective = make_fast_latency_objective(
                effort, platform, mapping
            )
    if (
        batch
        and space == "forests"
        and objective == "period"
        and fast_objective is not None
    ):
        # Bulk-gated enumeration: chunked parent-vector pricing replaces
        # the per-candidate float kernel.  Batched floats are bit-for-bit
        # the scalar ones, so values, tie-breaks and the survivor set (and
        # hence evaluation counts) are identical to the scalar scan.
        fb = make_forest_period_batch(app, model, effort, platform, mapping)
        if fb is not None:
            value, graph, count = scan_best_forests_batched(
                app, objective_fn, fb, chunk=chunk
            )
            return value, graph, {
                "space": space, "graphs_considered": count,
                "batched": True, "chunk": chunk,
            }
    graphs = iter_forests(app) if space == "forests" else iter_dags(app)
    value, graph, count = scan_best(
        graphs, objective_fn, fast_objective=fast_objective
    )
    return value, graph, {"space": space, "graphs_considered": count}


def _solve_greedy(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
) -> SolverOutcome:
    value, graph = greedy_forest(app, objective_fn)
    return value, graph, {}


def _solve_local_search(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
    max_moves: int = 200,
    incremental: bool = True,
) -> SolverOutcome:
    """Greedy seed plus reparenting local search.

    Where the objective equals the Section-2.1 bound (period under
    OVERLAP, or the bound effort) candidate moves are priced by
    :class:`~repro.optimize.incremental.IncrementalForestPeriod` deltas
    instead of full objective evaluations; ``incremental=False`` (a solver
    option) forces the baseline path, e.g. for benchmarking.
    """
    seed_value, seed_graph = greedy_forest(app, objective_fn)
    delta = None
    if incremental and objective == "period":
        delta = period_delta(
            seed_graph, model, effort,
            getattr(objective_fn, "platform", None),
            getattr(objective_fn, "mapping", None),
            exactness=getattr(objective_fn, "exactness", Exactness.EXACT),
        )
    batch = None
    if delta is None and objective == "period":
        exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
        if exactness.uses_float:
            # No delta evaluator: bulk-gate each node's reparent column on
            # the batched kernel instead (identical move sequence).
            batch = make_forest_period_batch(
                app, model, effort,
                getattr(objective_fn, "platform", None),
                getattr(objective_fn, "mapping", None),
            )
    value, graph = local_search_forest(
        seed_graph, objective_fn, max_moves=max_moves, delta=delta, batch=batch
    )
    if delta is not None:
        # One real evaluation pins the memoized value for the winner (and
        # double-checks the delta arithmetic against the cached objective).
        value = objective_fn(graph)
    return value, graph, {
        "seed_value": seed_value,
        "incremental": delta is not None,
        "batched": batch is not None,
    }


def _solve_hierarchical(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
    max_moves: int = 200,
    strategy: str = "hierarchical",
) -> SolverOutcome:
    """Structure-then-place pipeline for topology-aware platforms.

    Decomposes the joint structure x placement search the way hierarchical
    process mapping does: (1) optimise the execution graph on the
    normalised unit abstraction (structure is platform-independent to
    first order), (2) place that structure with the topology-partitioned
    seed + local search of :func:`~repro.optimize.placement.optimize_mapping`
    (``strategy="hierarchical"``), (3) refine the structure once more at
    the pinned placement, (4) re-score the winner through *objective_fn*
    so the reported value shares the planner's memo (and, with a free
    mapping, remains the best-over-assignments semantics).  On a flat,
    unit, or pinned-mapping configuration there is nothing to decompose
    and the plain local-search solver runs instead
    (``extras["hierarchical"]`` is ``False``).
    """
    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    structured = (
        platform is not None
        and mapping is None
        and len(platform.topology.groups()) > 1
    )
    if not structured:
        value, graph, extras = _solve_local_search(
            app, objective=objective, model=model, effort=effort,
            objective_fn=objective_fn, max_moves=max_moves,
        )
        extras["hierarchical"] = False
        return value, graph, extras

    # Phase 1: structure on the unit abstraction.
    if objective == "period":
        unit_fn = make_period_objective(model, effort, exactness=exactness)
    else:
        unit_fn = make_latency_objective(model, effort, exactness=exactness)
    _seed_value, seed_graph = greedy_forest(app, unit_fn)
    _unit_value, struct_graph = local_search_forest(
        seed_graph, unit_fn, max_moves=max_moves
    )

    # Phase 2: topology-aware placement of that structure.
    from ..optimize.placement import optimize_mapping

    placed_value, placed = optimize_mapping(
        struct_graph, objective, model, effort, platform,
        max_moves=max_moves, exactness=exactness, strategy=strategy,
    )

    # Phase 3: refine the structure at the pinned placement.
    if objective == "period":
        pinned_fn = make_period_objective(
            model, effort, platform, placed, exactness=exactness
        )
    else:
        pinned_fn = make_latency_objective(
            model, effort, platform, placed, exactness=exactness
        )
    delta = None
    if objective == "period":
        delta = period_delta(
            struct_graph, model, effort, platform, placed,
            exactness=exactness,
        )
    _pinned_value, graph = local_search_forest(
        struct_graph, pinned_fn, max_moves=max_moves, delta=delta
    )

    # Phase 4: report through the planner's shared (memoized) objective.
    value = objective_fn(graph)
    return value, graph, {
        "hierarchical": True,
        "placement_value": placed_value,
        "placement": {s: placed.server(s) for s in sorted(graph.nodes)},
    }


def _solve_branch_and_bound(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
    node_limit: Optional[int] = None,
    deadline: Optional[float] = None,
    leaf_batch: bool = False,
) -> SolverOutcome:
    """Exact best-first branch and bound (see
    :mod:`repro.optimize.branch_and_bound`).

    Optimises the same quantity as ``exhaustive`` at the matching effort —
    forests for period (Proposition 4), DAGs for latency — but prunes with
    incrementally maintained ``Cin``/``Ccomp``/``Cout`` lower bounds and a
    greedy + local-search incumbent, reaching instance sizes where plain
    enumeration is infeasible.  *node_limit* (a solver option) caps the
    expanded states; when hit, the incumbent is returned as an upper bound
    and ``extras["certified"]`` is ``False``.  *deadline* (seconds) stops
    the search the same way on wall clock — the anytime knob the portfolio
    solver leans on.  ``leaf_batch=True`` routes the certified search's
    complete-forest layer through one batched float pricing per expansion
    (same optimum bit-for-bit; ``evaluated``/``pruned`` counters may
    shrink, hence opt-in).
    """
    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    if objective == "period":
        fb = None
        if leaf_batch and exactness is Exactness.CERTIFIED:
            fb = make_forest_period_batch(app, model, effort, platform, mapping)
        value, graph, stats = bb_minperiod(
            app, objective_fn, model=model, platform=platform, mapping=mapping,
            node_limit=node_limit, deadline=deadline, leaf_batch=fb,
            exactness=exactness,
        )
    else:
        value, graph, stats = bb_minlatency(
            app, objective_fn, model=model, platform=platform, mapping=mapping,
            node_limit=node_limit, deadline=deadline, exactness=exactness,
        )
    return value, graph, {
        "space": "forests" if objective == "period" else "dags",
        "graphs_considered": stats.evaluated,
        # A FAST search prunes and scores on float images: the incumbent
        # it returns is honest but its optimality is no longer certified.
        "certified": not stats.limit_hit and exactness is not Exactness.FAST,
        **stats.as_extras(),
    }


def _solve_portfolio(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
    deadline: Optional[float] = None,
    primary: str = "auto",
    seeds: int = 2,
    seed_base: int = 17,
    max_moves: int = 200,
    node_limit: Optional[int] = None,
    workers: int = 0,
) -> SolverOutcome:
    """Anytime portfolio: race greedy / local search / B&B under *deadline*.

    See :mod:`repro.optimize.portfolio` for the roster, the deterministic
    winner rule and the process mode (``workers > 0``).  Always returns a
    valid plan — greedy runs unconditionally even at ``deadline=0``.
    """
    from ..optimize.portfolio import portfolio_search

    outcome = portfolio_search(
        app, objective_fn, objective=objective, model=model, effort=effort,
        deadline=deadline, primary=primary, seeds=seeds, seed_base=seed_base,
        max_moves=max_moves, node_limit=node_limit, workers=workers,
    )
    return outcome.value, outcome.graph, {
        "trajectory": outcome.trajectory,
        "budget_exhausted": outcome.budget_exhausted,
        "racers": outcome.racers,
    }


def _solve_chain(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
) -> SolverOutcome:
    if objective == "period":
        value, graph = minperiod_chain(app, model)
    else:
        value, graph = minlatency_chain(app)
    platform = getattr(objective_fn, "platform", None)
    if platform is not None and not platform.is_unit:
        # The closed forms assume the normalised unit platform; on a real
        # platform the chain structure is kept as a heuristic but its value
        # must be re-scored at its (best or pinned) placement.
        return objective_fn(graph), graph, {"unit_chain_value": value}
    return value, graph, {}


def _solve_nocomm(
    app: Application,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    objective_fn,
) -> SolverOutcome:
    if objective == "period":
        free_value, graph = nocomm_optimal_period_plan(app)
    else:
        free_value, graph = nocomm_optimal_latency_chain(app)
    return objective_fn(graph), graph, {"nocomm_value": free_value}


def _make_default_registry() -> SolverRegistry:
    reg = SolverRegistry()
    reg.register(
        "exhaustive",
        _solve_exhaustive,
        description="exact enumeration (forests for period, DAGs for latency)",
        supports_precedence=True,
    )
    reg.register(
        "greedy",
        _solve_greedy,
        description="incremental greedy forest construction",
    )
    reg.register(
        "local-search",
        _solve_local_search,
        description="greedy seed + first-improvement reparenting local search",
    )
    reg.register(
        "hierarchical",
        _solve_hierarchical,
        description="structure on the unit abstraction, then topology-"
        "partitioned placement, then pinned-placement refinement",
    )
    reg.register(
        "branch-and-bound",
        _solve_branch_and_bound,
        description="best-first exact search with Cin/Ccomp/Cout pruning",
    )
    reg.register(
        "portfolio",
        _solve_portfolio,
        description="anytime racer portfolio (greedy / local search / B&B)",
    )
    reg.register(
        "chain",
        _solve_chain,
        description="optimal linear chain (Propositions 8 / 16)",
    )
    reg.register(
        "nocomm",
        _solve_nocomm,
        description="communication-free baseline structure, re-evaluated",
    )
    return reg


#: The default registry consulted by :func:`repro.planner.solve`.
registry: SolverRegistry = _make_default_registry()


def register_solver(name: str, run: SolverFn, **kwargs: Any) -> SolverSpec:
    """Register *run* in the default registry (see :class:`SolverRegistry`)."""
    return registry.register(name, run, **kwargs)


__all__ = [
    "MAX_DAG_SERVICES",
    "SolverFn",
    "SolverOutcome",
    "SolverRegistry",
    "SolverSpec",
    "register_solver",
    "registry",
]
