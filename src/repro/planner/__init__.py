"""Unified planner facade: one front door for mapping and orchestration.

:func:`solve` dispatches a MinPeriod/MinLatency instance to a registered
solver (exhaustive enumeration, greedy forest construction, local search,
chain closed forms, the communication-free baseline — or your own), routes
every objective evaluation through a shared memo cache, schedules a
concrete operation list for the winning graph and returns a
:class:`PlanResult` with the value, the plan and solver statistics.

    >>> from repro import make_application
    >>> from repro.planner import solve
    >>> app = make_application([("A", 1, "1/2"), ("B", 4, "1/2"), ("C", 16, 1)])
    >>> solve(app, objective="period", model="overlap").value
    Fraction(4, 1)

See :mod:`repro.planner.facade` for the full API and
:mod:`repro.planner.registry` for registering custom solvers.
"""

from .batch import BatchResult, solve_many
from .cache import (
    CachedObjective,
    CacheStats,
    EvaluationCache,
    TTLCache,
    clear_default_cache,
    default_cache,
    evaluation_key,
    graph_key,
)
from .catalog import (
    ConcurrentWorkload,
    Workload,
    load_concurrent_workload,
    load_platform,
    load_workload,
    platform_names,
    workload_names,
)
from .concurrent import ConcurrentResult, solve_concurrent
from .facade import AUTO_EXHAUSTIVE_MAX, build_schedule, compare, solve, solve_key
from .registry import (
    SolverRegistry,
    SolverSpec,
    register_solver,
    registry,
)
from .result import PlanResult, SolverStats

__all__ = [
    "AUTO_EXHAUSTIVE_MAX",
    "BatchResult",
    "CacheStats",
    "CachedObjective",
    "ConcurrentResult",
    "ConcurrentWorkload",
    "EvaluationCache",
    "PlanResult",
    "SolverRegistry",
    "SolverSpec",
    "SolverStats",
    "TTLCache",
    "Workload",
    "build_schedule",
    "clear_default_cache",
    "compare",
    "default_cache",
    "evaluation_key",
    "graph_key",
    "load_concurrent_workload",
    "load_platform",
    "load_workload",
    "platform_names",
    "register_solver",
    "registry",
    "solve",
    "solve_concurrent",
    "solve_key",
    "solve_many",
    "workload_names",
]
