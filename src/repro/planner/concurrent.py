"""``solve_concurrent``: the planner front door for shared-server mapping.

Several applications, one platform, services allowed to share servers —
the regime of the paper's sequels.  The solver searches the shared
(many-to-one) placement space for the combined instance and returns a
:class:`ConcurrentResult` with the aggregate objective value, the chosen
shared mapping, and per-application period/latency readouts.

Objectives (picked by the instance):

* without period targets — minimise the **system period**
  ``max_u Cexec(u)`` (the smallest common period all applications can
  sustain simultaneously);
* with per-application targets ``rho_a`` — minimise the **max per-server
  utilisation** (each service weighing ``1 / rho_a``); the result is
  feasible iff that maximum is at most 1.

Quickstart::

    >>> from repro.planner import solve_concurrent
    >>> result = solve_concurrent(["fig1", "fig1"], platform="hom:n=3")
    >>> result.feasible, result.mapping.is_injective
    (True, False)
    >>> sorted(result.app_periods) == list(result.multi.names)
    True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Optional, Sequence, Union

from ..concurrent import ConcurrentCosts, MultiApplication
from ..core import CommModel, Exactness, Mapping, Platform, as_fraction
from ..optimize.placement import (
    SHARED_EXHAUSTIVE_LIMIT,
    optimize_shared_mapping,
    shared_search_method,
    shared_space_size,
)
from .result import SolverStats


@dataclass
class ConcurrentResult:
    """Everything :func:`solve_concurrent` knows about one solution.

    Attributes
    ----------
    multi:
        The solved :class:`~repro.concurrent.MultiApplication`.
    platform:
        The shared platform.
    mapping:
        The chosen (or pinned) shared service-to-server mapping over the
        combined (namespaced) service names.
    model:
        Communication model the aggregation used.
    objective:
        ``"period"`` (common system period) or ``"utilisation"`` (max
        per-server utilisation under period targets).
    value:
        The objective value of *mapping*.
    app_periods / app_latencies:
        Per-application readouts (see
        :class:`~repro.concurrent.ConcurrentCosts`).
    server_loads:
        Aggregated absolute ``Cexec(u)`` per used server.
    utilisation:
        Max per-server utilisation (``None`` without targets).
    feasible:
        All targets satisfiable (always ``True`` without targets).
    method:
        ``"shared-exhaustive"``, ``"shared-local-search"`` or ``"pinned"``.
    stats:
        Solver bookkeeping (wall time; placement-space size in extras).
    """

    multi: MultiApplication
    platform: Platform
    mapping: Mapping
    model: CommModel
    objective: str
    value: Fraction
    app_periods: Dict[str, Fraction]
    app_latencies: Dict[str, Fraction]
    server_loads: Dict[str, Fraction]
    utilisation: Optional[Fraction]
    feasible: bool
    method: str
    stats: SolverStats = field(default_factory=SolverStats)

    def summary(self) -> str:
        """One human-readable line, e.g. for CLI output."""
        util = (
            f", max utilisation {self.utilisation}"
            if self.utilisation is not None
            else ""
        )
        return (
            f"{self.objective} over {len(self.multi)} app(s) on "
            f"{len(self.platform)} server(s) via {self.method}: "
            f"{self.value}{util} "
            f"[{'feasible' if self.feasible else 'INFEASIBLE'}, "
            f"{self.stats.wall_time * 1000:.1f} ms]"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendition (fractions as string + float)."""
        return {
            "objective": self.objective,
            "model": str(self.model),
            "method": self.method,
            "value": str(self.value),
            "value_float": float(self.value),
            "feasible": self.feasible,
            "utilisation": (
                str(self.utilisation) if self.utilisation is not None else None
            ),
            "applications": {
                name: {
                    "period": str(self.app_periods[name]),
                    "latency": str(self.app_latencies[name]),
                    "target": (
                        str(self.multi[name].period_target)
                        if self.multi[name].period_target is not None
                        else None
                    ),
                }
                for name in self.multi.names
            },
            "server_loads": {u: str(v) for u, v in self.server_loads.items()},
            "mapping": {svc: srv for svc, srv in self.mapping.items()},
            "stats": self.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConcurrentResult({self.objective}, {len(self.multi)} apps, "
            f"value={self.value}, feasible={self.feasible})"
        )


Problem = Union[MultiApplication, Sequence]


def _coerce_multi(problem: Problem, targets) -> MultiApplication:
    from .catalog import load_concurrent_workload, load_workload

    if isinstance(problem, str):
        problem = load_concurrent_workload(problem).multi
    if not isinstance(problem, MultiApplication):
        members = []
        for member in problem:
            if isinstance(member, str):
                members.append(_workload_member(member, len(members)))
            else:
                members.append(member)
        problem = MultiApplication(members)
    if targets:
        from ..concurrent import ConcurrentApp

        unknown = sorted(set(targets) - set(problem.names))
        if unknown:
            raise ValueError(
                f"period targets for unknown application(s): {unknown}"
            )
        problem = MultiApplication(
            [
                ConcurrentApp(
                    app.name,
                    app.graph,
                    as_fraction(targets[app.name])
                    if app.name in targets
                    else app.period_target,
                )
                for app in problem.members
            ]
        )
    return problem


def _workload_member(spec: str, index: int):
    """One catalog workload spec as a named concurrent member."""
    from .catalog import load_concurrent_workload

    workload = load_concurrent_workload(spec)
    if len(workload.multi) != 1:
        raise ValueError(
            f"member spec {spec!r} must name a single workload "
            f"(use one flat '+'-separated spec instead of nesting)"
        )
    head = spec.strip().partition(":")[0].lower()
    return (f"a{index}-{head}", workload.multi.members[0].graph)


def solve_concurrent(
    problem: Problem,
    *,
    platform: Union[str, Platform],
    model: Union[str, CommModel] = CommModel.OVERLAP,
    mapping: Union[Mapping, Dict[str, str], None] = None,
    targets: Optional[Dict[str, Any]] = None,
    exhaustive_limit: int = SHARED_EXHAUSTIVE_LIMIT,
    max_moves: int = 400,
    exactness: Union[str, "Exactness", None] = None,
) -> ConcurrentResult:
    """Map concurrent applications onto shared servers; returns a result.

    Parameters
    ----------
    problem:
        A :class:`~repro.concurrent.MultiApplication`, a concurrent
        workload spec string (``"fig1+fig1"``), or a sequence whose
        members are workload spec strings, ``(name, graph)`` pairs,
        :class:`~repro.concurrent.ConcurrentApp` objects, or bare
        execution graphs.
    platform:
        A :class:`~repro.core.Platform` or catalog spec string.  May have
        fewer servers than there are services — that is the point.
    model:
        Communication model for the aggregation (default OVERLAP, where
        the aggregated bound is the sequels' exact steady-state value).
    mapping:
        Pin the shared mapping (over combined ``app.service`` names)
        instead of searching; a plain dict is accepted.
    targets:
        Per-application period targets ``{app_name: rho_a}`` — switches
        the objective from the common system period to max per-server
        utilisation and enables the feasibility verdict.
    exhaustive_limit / max_moves:
        Forwarded to
        :func:`~repro.optimize.placement.optimize_shared_mapping`.
    exactness:
        Numeric tier of the placement search (see
        :class:`~repro.core.Exactness`).  The default ``CERTIFIED`` runs
        the float kernel with exact re-scoring inside the eps band —
        bit-for-bit the exact result; ``"fast"`` stays on the float tier.

    Example — two copies of the Section 2.3 application squeezed onto
    three servers (ten services, so sharing is forced)::

        >>> from repro.planner import solve_concurrent
        >>> result = solve_concurrent(["fig1", "fig1"], platform="hom:n=3")
        >>> result.objective, result.feasible
        ('period', True)
        >>> len(set(dict(result.mapping.items()).values())) <= 3
        True
    """
    started = time.perf_counter()
    from .facade import _coerce_model, _coerce_platform

    multi = _coerce_multi(problem, targets)
    mdl = _coerce_model(model)
    plat = _coerce_platform(platform)
    if plat is None:
        raise ValueError(
            "solve_concurrent needs a platform (shared servers are the "
            "point); pass Platform.homogeneous(m) for the unit platform"
        )
    weights = multi.weights()
    graph = multi.combined_graph
    space = shared_space_size(len(graph.nodes), len(plat))
    if mapping is not None:
        if not isinstance(mapping, Mapping):
            mapping = Mapping.shared(dict(mapping))
        mapping.validate_on(graph.nodes, plat)
        method = "pinned"
        chosen = mapping
    else:
        method = shared_search_method(
            len(graph.nodes), len(plat), exhaustive_limit
        )
        _, chosen = optimize_shared_mapping(
            graph, mdl, plat, weights=weights,
            exhaustive_limit=exhaustive_limit, max_moves=max_moves,
            exactness=Exactness.coerce(exactness),
        )
    readout = ConcurrentCosts(multi, plat, chosen, model=mdl)
    utilisation = readout.max_utilisation() if weights is not None else None
    objective = "utilisation" if weights is not None else "period"
    value = utilisation if weights is not None else readout.system_period()
    feasible = utilisation is None or utilisation <= 1
    stats = SolverStats(
        graphs_considered=1,
        extras={"placement_space": space, "servers": len(plat)},
    )
    result = ConcurrentResult(
        multi=multi,
        platform=plat,
        mapping=chosen,
        model=mdl,
        objective=objective,
        value=value,
        app_periods=readout.app_periods(),
        app_latencies=readout.app_latencies(),
        server_loads=readout.server_loads(),
        utilisation=utilisation,
        feasible=feasible,
        method=method,
        stats=stats,
    )
    result.stats.wall_time = time.perf_counter() - started
    return result


__all__ = ["ConcurrentResult", "solve_concurrent"]
