"""Named workload and platform specs for the CLI.

A workload spec is a string: either a named instance (``fig1``, ``b1``,
``b2``, ``b3``, their heterogeneous variants ``b1het``/``b2het``/``b3het``
and the ``hetdemo`` separation instance) or a generator family with
``key=value`` options after a colon, e.g. ``random:n=6,seed=3,filters=0.7``
or ``layered:widths=3x3x3,seed=4``.  :func:`load_workload` parses a spec
into a :class:`Workload` bundling the application, the fixed execution
graph when the family defines one, the paper's expected values when known,
and — for the heterogeneous variants — a platform and (for the large
instances) a pinned service-to-server mapping.

Platform specs work the same way through :func:`load_platform`: named
platforms (``het4``, ``demo2``) or families (``hom:n=8``,
``het:n=8,seed=0``, and the structured topologies
``tree:racks=4,servers=4,up_bw=1/4`` and ``torus:dims=4x4,bw=1/2``).

    >>> from repro.planner.catalog import load_platform, load_workload
    >>> wl = load_workload("fig1")
    >>> len(wl.application), wl.graph is not None
    (5, True)
    >>> load_workload("random:n=6,seed=3").graph is None
    True
    >>> load_platform("hom:n=5").is_unit, load_platform("het4").is_unit
    (True, False)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from ..core import (
    Application,
    ExecutionGraph,
    Mapping,
    Platform,
    TorusTopology,
    TreeTopology,
    as_fraction,
)
from ..workloads.generators import (
    alternating_platform,
    fork_join_instance,
    layered_instance,
    random_application,
    random_chain,
    random_execution_graph,
    random_platform,
    star_instance,
)
from ..workloads.paper import (
    b1_counterexample,
    b2_latency_ports,
    b3_period_ports,
    fig1_example,
)


@dataclass(frozen=True)
class Workload:
    """A solvable workload: application, optional fixed graph, expectations.

    Heterogeneous variants also carry a *platform* (and, for instances too
    large to re-optimise the placement on every solve, a pinned *mapping*)
    — pass both through to :func:`repro.planner.solve`.
    """

    name: str
    description: str
    application: Application
    graph: Optional[ExecutionGraph] = None
    expected: Dict[str, Fraction] = field(default_factory=dict)
    platform: Optional[Platform] = None
    mapping: Optional[Mapping] = None

    @property
    def problem(self):
        """What to hand to :func:`repro.planner.solve`: graph if fixed."""
        return self.graph if self.graph is not None else self.application


def _parse_options(text: str) -> Dict[str, str]:
    options: Dict[str, str] = {}
    if not text:
        return options
    for part in text.split(","):
        if "=" not in part:
            raise ValueError(f"malformed workload option {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        options[key.strip()] = value.strip()
    return options


def _check_keys(options: Dict[str, str], allowed: Tuple[str, ...], family: str) -> None:
    """Reject misspelled option keys — a typo must not change the workload."""
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for workload family {family!r}; "
            f"accepted: {', '.join(allowed)}"
        )


def _int(options: Dict[str, str], key: str, default: int) -> int:
    return int(options.get(key, default))


def _float(options: Dict[str, str], key: str, default: float) -> float:
    return float(options.get(key, default))


def _from_paper(maker: Callable[[], object]) -> Workload:
    inst = maker()
    return Workload(
        name=inst.name,
        description=inst.description,
        application=inst.application,
        graph=inst.graph,
        expected=dict(inst.expected),
    )


def _load_random(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("n", "seed", "filters", "precedence", "graph", "density"),
                "random")
    n = _int(options, "n", 5)
    seed = _int(options, "seed", 0)
    app = random_application(
        n,
        seed=seed,
        filter_fraction=_float(options, "filters", 0.6),
        precedence_density=_float(options, "precedence", 0.0),
    )
    graph = None
    graph_opt = options.get("graph", "")
    if graph_opt not in ("", "random"):
        raise ValueError(
            f"graph={graph_opt!r} is not supported for the random family; "
            f"the only value is graph=random (fix a random execution graph)"
        )
    if graph_opt == "random":
        graph = random_execution_graph(
            app, seed=seed + 100, density=_float(options, "density", 0.4)
        )
    return Workload(
        name=f"random(n={n}, seed={seed})",
        description=f"{n} random services (seed {seed})",
        application=app,
        graph=graph,
    )


def _load_chain(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("n", "seed"), "chain")
    n = _int(options, "n", 5)
    seed = _int(options, "seed", 0)
    app = random_application(n, seed=seed)
    return Workload(
        name=f"chain(n={n}, seed={seed})",
        description=f"random chain over {n} random services",
        application=app,
        graph=random_chain(app, seed=seed + 1),
    )


def _load_star(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("leaves", "seed"), "star")
    leaves = _int(options, "leaves", 5)
    seed = _int(options, "seed", 0)
    app, graph = star_instance(leaves, seed=seed)
    return Workload(
        name=f"star(leaves={leaves}, seed={seed})",
        description=f"filtering hub feeding {leaves} services",
        application=app,
        graph=graph,
    )


def _load_forkjoin(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("branches", "seed"), "forkjoin")
    branches = _int(options, "branches", 4)
    seed = _int(options, "seed", 0)
    app, graph = fork_join_instance(branches, seed=seed)
    return Workload(
        name=f"forkjoin(branches={branches}, seed={seed})",
        description=f"fork-join with {branches} parallel branches",
        application=app,
        graph=graph,
    )


def _load_noisy(options: Dict[str, str]) -> Workload:
    """Fragile instances for robustness studies.

    Selectivities cluster just around 1 (some barely filtering, some
    barely amplifying) and costs spread over an order of magnitude, so
    the optimal tree structure hinges on small parameter differences —
    exactly the instances where a nominal-optimal plan degrades under
    perturbation and robust planning has something to win.
    """
    import random as _random

    from ..core import Service

    _check_keys(options, ("n", "seed"), "noisy")
    n = _int(options, "n", 6)
    seed = _int(options, "seed", 0)
    rng = _random.Random(seed ^ 0x6E6F6973)  # distinct stream per seed
    services = [
        Service(
            f"N{i}",
            cost=Fraction(rng.randrange(1, 30)),
            selectivity=Fraction(rng.randrange(80, 113), 100),
        )
        for i in range(n)
    ]
    return Workload(
        name=f"noisy(n={n}, seed={seed})",
        description=f"{n} services with near-unit selectivities (seed {seed})",
        application=Application(services),
    )


def _load_layered(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("widths", "seed"), "layered")
    widths_text = options.get("widths", "3x3x3")
    widths = [int(w) for w in widths_text.split("x")]
    seed = _int(options, "seed", 0)
    app, graph = layered_instance(widths, seed=seed)
    return Workload(
        name=f"layered({widths_text}, seed={seed})",
        description=f"layered stage-parallel graph {widths_text}",
        application=app,
        graph=graph,
    )


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------

def _platform_het4() -> Platform:
    """The documented 8-server reference platform with 4 speed classes.

    Speeds cycle 1, 2, 1/2, 4; two link overrides (``S1-S2`` at 1/2,
    ``S5-S6`` at 1/4) exercise bandwidth heterogeneity; everything else
    runs at the default bandwidth 1.
    """
    speeds = [(Fraction(1), Fraction(2), Fraction(1, 2), Fraction(4))[i % 4] for i in range(8)]
    return Platform.of(
        speeds=speeds,
        links={("S1", "S2"): Fraction(1, 2), ("S5", "S6"): Fraction(1, 4)},
    )


def _platform_demo2() -> Platform:
    """Two servers (speeds 1 and 4) joined by a 1/100-bandwidth link.

    The platform of the ``hetdemo`` workload: the slow link makes any
    inter-server edge cost 100x its message size, so the homogeneous
    optimum (a filter chain) loses to independent services.
    """
    return Platform.of(speeds=[1, 4], links={("S1", "S2"): Fraction(1, 100)})


def _load_hom_platform(options: Dict[str, str]) -> Platform:
    _check_keys(options, ("n", "speed", "bw"), "hom")
    return Platform.homogeneous(
        _int(options, "n", 4),
        speed=as_fraction(options.get("speed", 1)),
        bandwidth=as_fraction(options.get("bw", 1)),
    )


def _load_het_platform(options: Dict[str, str]) -> Platform:
    _check_keys(options, ("n", "seed", "density"), "het")
    return random_platform(
        _int(options, "n", 4),
        seed=_int(options, "seed", 0),
        link_density=_float(options, "density", 0.3),
    )


def _load_tree_platform(options: Dict[str, str]) -> Platform:
    """``tree:racks=R,servers=S[,speed=..,speed2=..,rack_bw=..,up_bw=..,shared=0|1]``.

    A hierarchical switch platform: *R* racks of *S* servers each, access
    links at ``rack_bw``, rack uplinks at ``up_bw``; ``shared=1`` (the
    default) makes co-routed flows divide each link's capacity.
    ``speed2`` gives the odd-indexed server in each rack a second speed
    class (heterogeneous racks).
    """
    _check_keys(
        options,
        ("racks", "servers", "speed", "speed2", "rack_bw", "up_bw", "shared"),
        "tree",
    )
    speed2 = options.get("speed2")
    topology = TreeTopology(
        racks=_int(options, "racks", 2),
        servers_per_rack=_int(options, "servers", 2),
        speed=as_fraction(options.get("speed", 1)),
        speed2=as_fraction(speed2) if speed2 is not None else None,
        rack_bw=as_fraction(options.get("rack_bw", 1)),
        up_bw=as_fraction(options.get("up_bw", 1)),
        shared=bool(_int(options, "shared", 1)),
    )
    return Platform(topology=topology)


def _load_torus_platform(options: Dict[str, str]) -> Platform:
    """``torus:dims=AxB[,bw=..,speed=..,shared=0|1]`` — a wraparound grid.

    Every link carries ``bw``; routes are dimension-ordered shortest
    paths, and with ``shared=1`` (the default) co-routed flows divide a
    link's capacity.
    """
    _check_keys(options, ("dims", "bw", "speed", "shared"), "torus")
    dims_text = options.get("dims", "2x2")
    try:
        dims = tuple(int(d) for d in dims_text.split("x"))
    except ValueError:
        raise ValueError(
            f"malformed torus dims {dims_text!r} (expected e.g. dims=4x2)"
        ) from None
    topology = TorusTopology(
        dims,
        bw=as_fraction(options.get("bw", 1)),
        speed=as_fraction(options.get("speed", 1)),
        shared=bool(_int(options, "shared", 1)),
    )
    return Platform(topology=topology)


_NAMED_PLATFORMS: Dict[str, Callable[[], Platform]] = {
    "het4": _platform_het4,
    "demo2": _platform_demo2,
}

_PLATFORM_FAMILIES: Dict[str, Callable[[Dict[str, str]], Platform]] = {
    "hom": _load_hom_platform,
    "het": _load_het_platform,
    "tree": _load_tree_platform,
    "torus": _load_torus_platform,
}


def platform_names() -> Tuple[str, ...]:
    """Named platforms plus platform family names."""
    return tuple(sorted(_NAMED_PLATFORMS)) + tuple(sorted(_PLATFORM_FAMILIES))


def load_platform(spec: str) -> Platform:
    """Parse a platform *spec* string (named or ``family:key=value,...``)."""
    spec = spec.strip()
    head, _, tail = spec.partition(":")
    head = head.lower()
    if head in _NAMED_PLATFORMS:
        if tail:
            raise ValueError(f"named platform {head!r} takes no options")
        return _NAMED_PLATFORMS[head]()
    if head in _PLATFORM_FAMILIES:
        return _PLATFORM_FAMILIES[head](_parse_options(tail))
    known = ", ".join(platform_names())
    raise ValueError(f"unknown platform {spec!r}; known: {known}")


# ---------------------------------------------------------------------------
# Heterogeneous workload variants
# ---------------------------------------------------------------------------

def _het_variant(maker: Callable[[], object], suffix_desc: str) -> Workload:
    """A paper instance on an alternating-speed platform, placement pinned.

    The positional mapping is pinned so these large instances stay cheap
    to solve (no per-solve placement search); the expected *unit-platform*
    values no longer apply and are dropped.
    """
    inst = maker()
    platform = alternating_platform(len(inst.application))
    mapping = Mapping.default(inst.application.names, platform)
    return Workload(
        name=f"{inst.name}het",
        description=f"{inst.description} — {suffix_desc}",
        application=inst.application,
        graph=inst.graph,
        platform=platform,
        mapping=mapping,
    )


def _load_hetdemo() -> Workload:
    """The documented instance whose optimal graph depends on the platform.

    Two services: a cheap filter A (cost 1, selectivity 1/2) and a heavy
    B (cost 8).  On the unit platform the optimal execution graph is the
    chain ``A -> B`` (period 4: A's filter halves B's load).  On ``demo2``
    the 1/100 link makes the chain cost 50, while placing B alone on the
    speed-4 server achieves period 2 — the optimal graph is the *empty*
    forest.  Exercised by tests and ``python -m repro gallery --platform``.
    """
    from ..core import make_application

    app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
    return Workload(
        name="hetdemo",
        description=(
            "platform-dependent optimum: chain A->B on the unit platform, "
            "independent services on demo2"
        ),
        application=app,
        expected={"period_overlap_demo2": Fraction(2)},
        platform=_platform_demo2(),
    )


_NAMED: Dict[str, Callable[[], Workload]] = {
    "fig1": lambda: _from_paper(fig1_example),
    "b1": lambda: _from_paper(b1_counterexample),
    "b2": lambda: _from_paper(b2_latency_ports),
    "b3": lambda: _from_paper(b3_period_ports),
    "b1het": lambda: _het_variant(
        b1_counterexample, "on 202 servers with alternating speeds"
    ),
    "b2het": lambda: _het_variant(
        b2_latency_ports, "on 12 servers with alternating speeds"
    ),
    "b3het": lambda: _het_variant(
        b3_period_ports, "on 8 servers with alternating speeds"
    ),
    "hetdemo": _load_hetdemo,
}

_FAMILIES: Dict[str, Callable[[Dict[str, str]], Workload]] = {
    "random": _load_random,
    "chain": _load_chain,
    "star": _load_star,
    "forkjoin": _load_forkjoin,
    "layered": _load_layered,
    "noisy": _load_noisy,
}


# ---------------------------------------------------------------------------
# Concurrent (multi-application) workloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConcurrentWorkload:
    """A multi-application workload: named apps competing for one platform.

    The platform is deliberately *not* part of the workload — shared-server
    mapping is only meaningful relative to a concrete server count, which
    the caller picks (``solve_concurrent(..., platform=...)``).
    """

    name: str
    description: str
    multi: "MultiApplication"


def load_concurrent_workload(spec: str) -> ConcurrentWorkload:
    """Parse a ``+``-separated list of workload specs into one instance.

    Each part is an ordinary :func:`load_workload` spec; workloads without
    a fixed execution graph get one from a single-application period solve
    on the unit platform (deterministic).  Members are named
    ``a<i>-<family>`` in order, e.g. ``fig1+random:n=4,seed=1`` becomes
    applications ``a0-fig1`` and ``a1-random``.

        >>> wl = load_concurrent_workload("fig1+fig1")
        >>> wl.multi.names
        ('a0-fig1', 'a1-fig1')
        >>> wl.multi.total_services
        10
    """
    from ..concurrent import MultiApplication

    parts = [p.strip() for p in spec.split("+") if p.strip()]
    if not parts:
        raise ValueError(f"empty concurrent workload spec {spec!r}")
    members = []
    descriptions = []
    for i, part in enumerate(parts):
        workload = load_workload(part)
        graph = workload.graph
        if graph is None:
            from .facade import solve

            graph = solve(
                workload.application, objective="period", model="overlap",
                schedule=False,
            ).graph
        head = part.partition(":")[0].lower()
        members.append((f"a{i}-{head}", graph))
        descriptions.append(workload.name)
    return ConcurrentWorkload(
        name=spec,
        description=" + ".join(descriptions),
        multi=MultiApplication(members),
    )


def workload_names() -> Tuple[str, ...]:
    """Named instances plus generator family names (for ``--help``/errors)."""
    return tuple(sorted(_NAMED)) + tuple(sorted(_FAMILIES))


def load_workload(spec: str) -> Workload:
    """Parse a workload *spec* string (see module docstring)."""
    spec = spec.strip()
    head, _, tail = spec.partition(":")
    head = head.lower()
    if head in _NAMED:
        if tail:
            raise ValueError(f"named instance {head!r} takes no options")
        return _NAMED[head]()
    if head in _FAMILIES:
        return _FAMILIES[head](_parse_options(tail))
    known = ", ".join(workload_names())
    raise ValueError(f"unknown workload {spec!r}; known: {known}")


__all__ = [
    "ConcurrentWorkload",
    "Workload",
    "load_concurrent_workload",
    "load_platform",
    "load_workload",
    "platform_names",
    "workload_names",
]
