"""Named workload specs for the CLI: paper instances + generator families.

A workload spec is a string: either a named paper instance (``fig1``,
``b1``, ``b2``, ``b3``) or a generator family with ``key=value`` options
after a colon, e.g. ``random:n=6,seed=3,filters=0.7`` or
``layered:widths=3x3x3,seed=4``.  :func:`load_workload` parses a spec into
a :class:`Workload` bundling the application, the fixed execution graph
when the family defines one, and the paper's expected values when known.

    >>> from repro.planner.catalog import load_workload
    >>> wl = load_workload("fig1")
    >>> len(wl.application), wl.graph is not None
    (5, True)
    >>> load_workload("random:n=6,seed=3").graph is None
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from ..core import Application, ExecutionGraph
from ..workloads.generators import (
    fork_join_instance,
    layered_instance,
    random_application,
    random_chain,
    random_execution_graph,
    star_instance,
)
from ..workloads.paper import (
    b1_counterexample,
    b2_latency_ports,
    b3_period_ports,
    fig1_example,
)


@dataclass(frozen=True)
class Workload:
    """A solvable workload: application, optional fixed graph, expectations."""

    name: str
    description: str
    application: Application
    graph: Optional[ExecutionGraph] = None
    expected: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def problem(self):
        """What to hand to :func:`repro.planner.solve`: graph if fixed."""
        return self.graph if self.graph is not None else self.application


def _parse_options(text: str) -> Dict[str, str]:
    options: Dict[str, str] = {}
    if not text:
        return options
    for part in text.split(","):
        if "=" not in part:
            raise ValueError(f"malformed workload option {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        options[key.strip()] = value.strip()
    return options


def _check_keys(options: Dict[str, str], allowed: Tuple[str, ...], family: str) -> None:
    """Reject misspelled option keys — a typo must not change the workload."""
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for workload family {family!r}; "
            f"accepted: {', '.join(allowed)}"
        )


def _int(options: Dict[str, str], key: str, default: int) -> int:
    return int(options.get(key, default))


def _float(options: Dict[str, str], key: str, default: float) -> float:
    return float(options.get(key, default))


def _from_paper(maker: Callable[[], object]) -> Workload:
    inst = maker()
    return Workload(
        name=inst.name,
        description=inst.description,
        application=inst.application,
        graph=inst.graph,
        expected=dict(inst.expected),
    )


def _load_random(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("n", "seed", "filters", "precedence", "graph", "density"),
                "random")
    n = _int(options, "n", 5)
    seed = _int(options, "seed", 0)
    app = random_application(
        n,
        seed=seed,
        filter_fraction=_float(options, "filters", 0.6),
        precedence_density=_float(options, "precedence", 0.0),
    )
    graph = None
    graph_opt = options.get("graph", "")
    if graph_opt not in ("", "random"):
        raise ValueError(
            f"graph={graph_opt!r} is not supported for the random family; "
            f"the only value is graph=random (fix a random execution graph)"
        )
    if graph_opt == "random":
        graph = random_execution_graph(
            app, seed=seed + 100, density=_float(options, "density", 0.4)
        )
    return Workload(
        name=f"random(n={n}, seed={seed})",
        description=f"{n} random services (seed {seed})",
        application=app,
        graph=graph,
    )


def _load_chain(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("n", "seed"), "chain")
    n = _int(options, "n", 5)
    seed = _int(options, "seed", 0)
    app = random_application(n, seed=seed)
    return Workload(
        name=f"chain(n={n}, seed={seed})",
        description=f"random chain over {n} random services",
        application=app,
        graph=random_chain(app, seed=seed + 1),
    )


def _load_star(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("leaves", "seed"), "star")
    leaves = _int(options, "leaves", 5)
    seed = _int(options, "seed", 0)
    app, graph = star_instance(leaves, seed=seed)
    return Workload(
        name=f"star(leaves={leaves}, seed={seed})",
        description=f"filtering hub feeding {leaves} services",
        application=app,
        graph=graph,
    )


def _load_forkjoin(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("branches", "seed"), "forkjoin")
    branches = _int(options, "branches", 4)
    seed = _int(options, "seed", 0)
    app, graph = fork_join_instance(branches, seed=seed)
    return Workload(
        name=f"forkjoin(branches={branches}, seed={seed})",
        description=f"fork-join with {branches} parallel branches",
        application=app,
        graph=graph,
    )


def _load_layered(options: Dict[str, str]) -> Workload:
    _check_keys(options, ("widths", "seed"), "layered")
    widths_text = options.get("widths", "3x3x3")
    widths = [int(w) for w in widths_text.split("x")]
    seed = _int(options, "seed", 0)
    app, graph = layered_instance(widths, seed=seed)
    return Workload(
        name=f"layered({widths_text}, seed={seed})",
        description=f"layered stage-parallel graph {widths_text}",
        application=app,
        graph=graph,
    )


_NAMED: Dict[str, Callable[[], Workload]] = {
    "fig1": lambda: _from_paper(fig1_example),
    "b1": lambda: _from_paper(b1_counterexample),
    "b2": lambda: _from_paper(b2_latency_ports),
    "b3": lambda: _from_paper(b3_period_ports),
}

_FAMILIES: Dict[str, Callable[[Dict[str, str]], Workload]] = {
    "random": _load_random,
    "chain": _load_chain,
    "star": _load_star,
    "forkjoin": _load_forkjoin,
    "layered": _load_layered,
}


def workload_names() -> Tuple[str, ...]:
    """Named instances plus generator family names (for ``--help``/errors)."""
    return tuple(sorted(_NAMED)) + tuple(sorted(_FAMILIES))


def load_workload(spec: str) -> Workload:
    """Parse a workload *spec* string (see module docstring)."""
    spec = spec.strip()
    head, _, tail = spec.partition(":")
    head = head.lower()
    if head in _NAMED:
        if tail:
            raise ValueError(f"named instance {head!r} takes no options")
        return _NAMED[head]()
    if head in _FAMILIES:
        return _FAMILIES[head](_parse_options(tail))
    known = ", ".join(workload_names())
    raise ValueError(f"unknown workload {spec!r}; known: {known}")


__all__ = ["Workload", "load_workload", "workload_names"]
