"""2-Partition (Garey & Johnson [18]) — source problem of Proposition 17."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class PartitionInstance:
    """Integers ``x_1..x_n``: is there ``I`` with ``sum_I = sum/2``?"""

    xs: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "xs", tuple(int(x) for x in self.xs))
        if not self.xs or any(x <= 0 for x in self.xs):
            raise ValueError("2-Partition requires positive integers")

    @property
    def total(self) -> int:
        return sum(self.xs)


def solve(instance: PartitionInstance) -> Optional[List[int]]:
    """Subset-sum DP: indices of a half-sum subset, or ``None``."""
    total = instance.total
    if total % 2:
        return None
    target = total // 2
    reachable = {0: []}
    for i, x in enumerate(instance.xs):
        updates = {}
        for s, idxs in reachable.items():
            t = s + x
            if t <= target and t not in reachable and t not in updates:
                updates[t] = idxs + [i]
        reachable.update(updates)
        if target in reachable:
            return reachable[target]
    return reachable.get(target)


def is_solvable(instance: PartitionInstance) -> bool:
    return solve(instance) is not None


def solvable_instance(n: int, seed: int = 0, hi: int = 50) -> PartitionInstance:
    """Random instance made solvable by mirroring a random half."""
    if n < 2 or n % 2:
        raise ValueError("need an even n >= 2")
    rng = np.random.default_rng(seed)
    half = [int(rng.integers(1, hi)) for _ in range(n // 2)]
    return PartitionInstance(tuple(half + half))


def unsolvable_instance(n: int, seed: int = 1, hi: int = 50) -> PartitionInstance:
    """Random unsolvable instance (odd total forces unsolvability)."""
    rng = np.random.default_rng(seed)
    while True:
        xs = [int(rng.integers(1, hi)) for _ in range(n)]
        if sum(xs) % 2 == 1:
            return PartitionInstance(tuple(xs))


__all__ = [
    "PartitionInstance",
    "is_solvable",
    "solvable_instance",
    "solve",
    "unsolvable_instance",
]
