"""Propositions 6-7 (Figure 11): RN3DM -> MinPeriod one-port.

The gadget has ``3n + 1`` services (``x_i = y_i = n - i``, ``z_i = A[i]``,
``alpha = 1 + 2^-n``, ``m = 2n``):

* ``C0``: selectivity ``sigma0 = 1 / (alpha^m (1 + eps))``, cost
  ``K - 1 - n sigma0``;
* ``Cx_i``: selectivity ``alpha^{x_i}``, cost ``K / sigma0 - sigma - 1``;
* ``Cy_i``: selectivity ``(1 + eps) alpha^{y_i}``, cost
  ``K / (sigma0 (1 + eps)) - 1 - sigma``;
* ``Cz_i``: selectivity ``1 + 2 eps``, cost ``alpha^{z_i} K - 1 - sigma``.

A plan of period ``<= K`` must be the Figure-11 structure — ``C0`` fans
out to the ``Cx`` family, chains continue through distinct ``Cy`` then
``Cz`` services — and chain ``i`` meets the bound iff ``x_{l1(i)} +
y_{l2(i)} + z_i <= 2n``, i.e. iff RN3DM is solvable.

The extracted paper text garbles the exact value of ``K`` (an artefact of
the PDF-to-text pipeline); every proof step only uses ``K > n + 2`` and
positivity of the costs, so we set ``K = n + 3`` and verify the proof's
observation inequalities numerically in the tests.  ``eps`` must satisfy
``alpha^{2n} < 1 + eps`` (the paper's ``eps = 1/(2n)`` works for
``n >= 7``; smaller test instances take ``eps = 2 (alpha^{2n} - 1)``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core import (
    Application,
    CommModel,
    CostModel,
    ExecutionGraph,
    make_application,
)
from .rn3dm import RN3DMInstance, solve

F = Fraction


def parameters(n: int) -> Tuple[Fraction, Fraction, Fraction]:
    """``(alpha, eps, K)`` with every inequality exact."""
    alpha = 1 + F(1, 2**n)
    eps = F(1, 2 * n)
    if alpha ** (2 * n) >= 1 + eps:
        eps = 2 * (alpha ** (2 * n) - 1)
    K = F(n + 3)
    return alpha, eps, K


@dataclass(frozen=True)
class MinPeriodOnePortGadget:
    instance: RN3DMInstance
    application: Application
    K: Fraction
    alpha: Fraction
    eps: Fraction
    sigma0: Fraction


def build(instance: RN3DMInstance) -> MinPeriodOnePortGadget:
    n = instance.n
    alpha, eps, K = parameters(n)
    sigma0 = 1 / (alpha ** (2 * n) * (1 + eps))
    specs: List[Tuple[str, Fraction, Fraction]] = [
        ("C0", K - 1 - n * sigma0, sigma0)
    ]
    for i in range(1, n + 1):
        x = n - i
        sigma = alpha**x
        specs.append((f"Cx_{i}", K / sigma0 - sigma - 1, sigma))
    for i in range(1, n + 1):
        y = n - i
        sigma = (1 + eps) * alpha**y
        specs.append((f"Cy_{i}", K / (sigma0 * (1 + eps)) - 1 - sigma, sigma))
    for i in range(1, n + 1):
        z = instance.A[i - 1]
        sigma = 1 + 2 * eps
        specs.append((f"Cz_{i}", alpha**z * K - 1 - sigma, sigma))
    app = make_application(specs)
    for name, cost, _ in specs:
        if cost <= 0:
            raise ValueError(f"non-positive cost for {name}: {cost}")
    return MinPeriodOnePortGadget(instance, app, K, alpha, eps, sigma0)


def star_chain_plan(
    gadget: MinPeriodOnePortGadget,
    lambda1: Sequence[int],
    lambda2: Sequence[int],
) -> ExecutionGraph:
    """Figure 11: ``C0`` fans into ``Cx``; chains ``Cx -> Cy -> Cz``.

    Chain ``i`` is ``C0 -> Cx_{l1(i)} -> Cy_{l2(i)} -> Cz_i`` — note
    ``x_{l1(i)} = n - l1(i)``, matching the proof's indexing.
    """
    n = gadget.instance.n
    edges = []
    for i in range(1, n + 1):
        edges.append(("C0", f"Cx_{lambda1[i - 1]}"))
        edges.append((f"Cx_{lambda1[i - 1]}", f"Cy_{lambda2[i - 1]}"))
        edges.append((f"Cy_{lambda2[i - 1]}", f"Cz_{i}"))
    return ExecutionGraph(gadget.application, edges)


def plan_period_bound(
    gadget: MinPeriodOnePortGadget, graph: ExecutionGraph
) -> Fraction:
    """One-port period bound ``max_k (Cin + Ccomp + Cout)``.

    On the star-of-chains structure the bound is achievable (each chain's
    event-graph cycles are dominated by single-server cycles and ``C0``'s
    fan-out is saturated but conflict-free), which the tests verify via the
    exact INORDER orchestrator on small instances.
    """
    return CostModel(graph).period_lower_bound(CommModel.INORDER)


def forward_period(gadget: MinPeriodOnePortGadget) -> Optional[Fraction]:
    sol = solve(gadget.instance)
    if sol is None:
        return None
    lambda1, lambda2 = sol
    # The proof pairs x_{l1(i)} + y_{l2(i)} + z_i = 2n using x = n - l1 and
    # y = n - l2: l1 + l2 = A[i]  <=>  x + y + z = 2n.
    return plan_period_bound(gadget, star_chain_plan(gadget, lambda1, lambda2))


def structure_restricted_decision(gadget: MinPeriodOnePortGadget) -> bool:
    """Minimum bound over all Figure-11 assignments, vs ``K`` (exact)."""
    n = gadget.instance.n
    indices = list(range(1, n + 1))
    for l1 in itertools.permutations(indices):
        for l2 in itertools.permutations(indices):
            graph = star_chain_plan(gadget, l1, l2)
            if plan_period_bound(gadget, graph) <= gadget.K:
                return True
    return False


def verify_observations(gadget: MinPeriodOnePortGadget) -> List[str]:
    """Numeric check of the proof's Observations 1-6 (empty = all hold)."""
    app = gadget.application
    n, K, eps, sigma0 = (
        gadget.instance.n,
        gadget.K,
        gadget.eps,
        gadget.sigma0,
    )
    problems: List[str] = []
    for fam, label in (("Cx", "Obs1-x"), ("Cy", "Obs1-y"), ("Cz", "Obs1-z")):
        for i in range(1, n + 1):
            name = f"{fam}_{i}"
            if not 1 + app.cost(name) + app.selectivity(name) > K:
                problems.append(f"{label}: {name} could be an entry node")
    # Obs 2: C0 saturates with n successors
    c0 = app.cost("C0")
    if not 1 + c0 + n * sigma0 <= K:
        problems.append("Obs2: C0 cannot even feed n successors")
    if not 1 + c0 + (n + 1) * sigma0 > K:
        problems.append("Obs2: C0 could feed n+1 successors")
    # Obs 4: Cx services cannot have two successors
    for i in range(1, n + 1):
        name = f"Cx_{i}"
        if not sigma0 * (1 + app.cost(name) + 2 * app.selectivity(name)) > K:
            problems.append(f"Obs4: {name} could feed two successors")
    # Obs 5: nothing but a Cx may precede a Cy
    min_sy = min(app.selectivity(f"Cy_{i}") for i in range(1, n + 1))
    if not min_sy >= 1 + eps:
        problems.append("Obs5: some Cy selectivity is below 1+eps")
    return problems


__all__ = [
    "MinPeriodOnePortGadget",
    "build",
    "forward_period",
    "parameters",
    "plan_period_bound",
    "star_chain_plan",
    "structure_restricted_decision",
    "verify_observations",
]
