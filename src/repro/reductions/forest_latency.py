"""Proposition 17: 2-Partition -> forest-restricted MinLatency.

Given integers ``x_1..x_n`` with sum ``S`` and a large scale ``A``, the
gadget builds ``n + 1`` services:

* ``C_i``: cost ``x_i / A``, selectivity ``1 - x_i/A + beta (x_i/A)^2``
  with ``beta = (A - S) / (2A + S)``;
* ``C_{n+1}``: cost ``(2A + S) / (2A - 2S)``, selectivity 1.

A forest plan chains a subset ``I`` of the ``C_i`` in front of
``C_{n+1}`` and leaves the rest as isolated roots.  The chained prefix
multiplies ``C_{n+1}``'s huge cost by ``prod_I sigma_i``; the second-order
``beta`` term is tuned so the latency is (up to vanishing corrections) a
quadratic in ``S/2 - sum_I x_i`` — minimal exactly at a perfect partition.

.. note::
   **Reproduction finding (negative).**  The gadget as printed does *not*
   discriminate, under either latency accounting:

   * the paper's own chain algebra drops the per-hop communication terms
     (its ``L`` sums only ``prod(sigma) * c`` terms) — adding them
     perturbs the latency at ``Theta(1/A)``, above the claimed
     ``Theta(1/A^2)`` separation signal;
   * even under the paper's communication-free accounting, exact
     second-order expansion of ``L(I) = sum_I P_i c_i + P_I c_{n+1}``
     gives ``L - c_{n+1} = (1 - c_{n+1}) * Sx/A + O((Sx/A)^2)`` with
     ``c_{n+1} > 1``: *monotone decreasing* in the chained sum ``Sx``, so
     chaining everything is optimal regardless of balance.  The pairwise
     coefficient needed for the claimed square ``(S/2 - Sx)^2`` is
     ``3/(A(A-S))``, but the printed constants only produce
     ``3S/(2A^2(A-S))`` — a factor ``S/(2A)`` short.

   The module keeps the printed construction and exposes measurement
   tools (:func:`full_profile`, :func:`decision`,
   :func:`latency_is_monotone_in_imbalance`) so the benchmarks can report
   the measured behaviour; see ``EXPERIMENTS.md`` for the write-up.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import Application, ExecutionGraph, make_application
from ..scheduling.latency import tree_latency
from .partition import PartitionInstance, solve

F = Fraction


@dataclass(frozen=True)
class ForestLatencyGadget:
    instance: PartitionInstance
    application: Application
    A: int
    beta: Fraction


def build(instance: PartitionInstance, A: Optional[int] = None) -> ForestLatencyGadget:
    xs = instance.xs
    n = len(xs)
    S = instance.total
    xm = max(xs)
    if A is None:
        # paper: A > (4/3) n 3^n beta^n x_M^3; beta < 1/2 so this suffices
        A = max(2 * S, 2 * n * 3**n * xm**3)
    if A <= S:
        raise ValueError("A must exceed the total sum S")
    beta = F(A - S, 2 * A + S)
    specs: List[Tuple[str, Fraction, Fraction]] = []
    for i, x in enumerate(xs, start=1):
        r = F(x, A)
        specs.append((f"C{i}", r, 1 - r + beta * r * r))
    specs.append((f"C{n + 1}", F(2 * A + S, 2 * A - 2 * S), F(1)))
    return ForestLatencyGadget(instance, make_application(specs), A, beta)


def subset_plan(
    gadget: ForestLatencyGadget, subset: Sequence[int]
) -> ExecutionGraph:
    """Chain the (0-based) *subset* before ``C_{n+1}``; rest are roots."""
    n = len(gadget.instance.xs)
    chain = [f"C{i + 1}" for i in sorted(subset)] + [f"C{n + 1}"]
    edges = list(zip(chain, chain[1:]))
    return ExecutionGraph(gadget.application, edges)


def subset_latency(
    gadget: ForestLatencyGadget,
    subset: Sequence[int],
    *,
    include_comm: bool = False,
) -> Fraction:
    """Latency of the subset plan.

    ``include_comm=False`` (default) uses the paper's accounting — the
    communication-free critical path, under which the reduction's algebra
    is exact.  ``include_comm=True`` charges the Section-2.1 communication
    terms (see the module docstring).
    """
    graph = subset_plan(gadget, subset)
    if include_comm:
        return tree_latency(graph)
    from ..optimize.nocomm import nocomm_latency

    return nocomm_latency(graph)


def imbalance(gadget: ForestLatencyGadget, subset: Sequence[int]) -> int:
    """``|S - 2 * sum_I|`` (0 iff *subset* realises a perfect partition)."""
    s = sum(gadget.instance.xs[i] for i in subset)
    return abs(gadget.instance.total - 2 * s)


def full_profile(
    gadget: ForestLatencyGadget, *, include_comm: bool = False
) -> List[Tuple[int, Fraction]]:
    """``(imbalance, latency)`` over *all* subsets, sorted by imbalance."""
    n = len(gadget.instance.xs)
    rows = []
    for size in range(n + 1):
        for subset in itertools.combinations(range(n), size):
            rows.append(
                (
                    imbalance(gadget, subset),
                    subset_latency(gadget, subset, include_comm=include_comm),
                )
            )
    rows.sort()
    return rows


def decision(gadget: ForestLatencyGadget, *, include_comm: bool = False) -> bool:
    """Does the minimum-latency subset realise a perfect partition?

    Under the paper's accounting (``include_comm=False``) this is exact:
    the subset minimising the forest latency has zero imbalance iff the
    2-Partition instance is solvable.
    """
    profile = full_profile(gadget, include_comm=include_comm)
    best_latency = min(lat for _, lat in profile)
    achieved = sorted(imb for imb, lat in profile if lat == best_latency)
    return achieved[0] == 0


def latency_is_monotone_in_imbalance(
    gadget: ForestLatencyGadget, *, include_comm: bool = False
) -> bool:
    """Does lower imbalance always give (weakly) lower optimal latency?

    This is the mechanism of the reduction: the latency of the best subset
    at each imbalance level increases with the imbalance.
    """
    profile = full_profile(gadget, include_comm=include_comm)
    best_at: Dict[int, Fraction] = {}
    for imb, lat in profile:
        if imb not in best_at or lat < best_at[imb]:
            best_at[imb] = lat
    levels = sorted(best_at)
    return all(
        best_at[a] <= best_at[b] for a, b in zip(levels, levels[1:])
    )


__all__ = [
    "ForestLatencyGadget",
    "build",
    "decision",
    "full_profile",
    "imbalance",
    "latency_is_monotone_in_imbalance",
    "subset_latency",
    "subset_plan",
]
