"""Propositions 9-11 (Figure 12): RN3DM -> latency orchestration.

The gadget is a fork-join of ``n + 2`` unit-selectivity services:
``C0`` (cost 1) fans out to ``C_i`` of cost ``B[i] = n - A[i] + n^2``
(``i = 1..n``), which join into ``C_{n+1}`` (cost 1).  With a send order
``lambda1`` at ``C0`` and a receive order ``n + 1 - lambda2`` at the join,
the latency is ``4 + max_i (lambda1(i) + B[i] + lambda2(i))``; an
operation list of latency ``K = n + 4 + n^2`` exists iff the RN3DM
instance is solvable.  The same gadget serves OUTORDER (Prop 9), INORDER
(Prop 10) and OVERLAP (Prop 11 — one-port schedules dominate multi-port
ones on fork-joins).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core import Application, ExecutionGraph, make_application
from ..scheduling.latency import exact_oneport_latency, minmax_two_permutations
from .rn3dm import RN3DMInstance, solve


@dataclass(frozen=True)
class LatencyOrchestrationGadget:
    instance: RN3DMInstance
    application: Application
    graph: ExecutionGraph
    K: Fraction

    @property
    def branch_costs(self) -> List[Fraction]:
        n = self.instance.n
        return [self.application.cost(f"C{i}") for i in range(1, n + 1)]


def build(instance: RN3DMInstance) -> LatencyOrchestrationGadget:
    """Construct the Figure-12 fork-join gadget."""
    n = instance.n
    specs: List[Tuple[str, int, int]] = [("C0", 1, 1)]
    for i in range(1, n + 1):
        cost = n - instance.A[i - 1] + n * n
        if cost <= 0:
            raise ValueError("gadget requires n - A[i] + n^2 > 0")
        specs.append((f"C{i}", cost, 1))
    specs.append((f"C{n + 1}", 1, 1))
    app = make_application(specs)
    edges = [("C0", f"C{i}") for i in range(1, n + 1)]
    edges += [(f"C{i}", f"C{n + 1}") for i in range(1, n + 1)]
    graph = ExecutionGraph(app, edges)
    return LatencyOrchestrationGadget(
        instance, app, graph, Fraction(n + 4 + n * n)
    )


def optimal_latency(gadget: LatencyOrchestrationGadget) -> Fraction:
    """Exact optimal fork-join latency via the two-permutation solver.

    For a fork-join with unit fork/join costs and unit messages, the
    one-port latency under orders ``(lambda1, lambda2)`` is
    ``4 + max_i (lambda1(i) + B_i + lambda2(i))`` — in-message, fork
    computation, per-slot sends, branch computation, per-slot receives,
    join computation, out-message.  Optimising over orders is exactly the
    two-permutation min-max problem.
    """
    val, _, _ = minmax_two_permutations(gadget.branch_costs)
    return val + 4


def optimal_latency_branch_and_bound(
    gadget: LatencyOrchestrationGadget,
) -> Fraction:
    """Independent check through the generic B&B scheduler (small n)."""
    return exact_oneport_latency(gadget.graph)


def decision(gadget: LatencyOrchestrationGadget) -> bool:
    """Does an operation list of latency ``<= K`` exist?  (Exact.)"""
    return optimal_latency(gadget) <= gadget.K


def forward_latency(gadget: LatencyOrchestrationGadget) -> Optional[Fraction]:
    """Latency of the forward construction (``None`` if unsolvable).

    With ``lambda1(i) + lambda2(i) = A[i]`` every branch satisfies
    ``lambda1(i) + B[i] + lambda2(i) = n + n^2``, so the latency is exactly
    ``K``.
    """
    sol = solve(gadget.instance)
    if sol is None:
        return None
    lambda1, lambda2 = sol
    n = gadget.instance.n
    vals = [
        lambda1[i] + gadget.branch_costs[i] + lambda2[i] for i in range(n)
    ]
    return Fraction(max(vals) + 4)


__all__ = [
    "LatencyOrchestrationGadget",
    "build",
    "decision",
    "forward_latency",
    "optimal_latency",
    "optimal_latency_branch_and_bound",
]
