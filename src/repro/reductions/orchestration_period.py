"""Propositions 2-3 (Figure 9): RN3DM -> one-port period orchestration.

Given RN3DM vector ``A`` of size ``n``, the gadget has ``2n + 5`` unit-
selectivity services arranged as a fork at ``C1`` into ``n + 2`` branches
joining at ``C_{2n+5}``:

* ``C1`` (cost ``n``) feeds ``C_{2i}`` (cost ``2n+1``, ``i = 1..n+1``) and
  ``C_{2n+4}`` (cost ``2n+1``);
* each ``C_{2i}`` (``i <= n``) feeds ``C_{2i+1}`` (cost ``2n+1-A[i]``);
  ``C_{2n+2}`` feeds ``C_{2n+3}`` (cost ``2n+1``);
* all ``C_{2i+1}``, ``C_{2n+3}`` and ``C_{2n+4}`` feed ``C_{2n+5}``
  (cost ``n``).

Servers ``C1`` and ``C_{2n+5}`` are *saturated*: their cycle time is
exactly ``K = 2n + 3``, so a period-``K`` operation list exists iff the
send order at ``C1`` and the receive order at ``C_{2n+5}`` realise
permutations solving the RN3DM instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Application, CommModel, ExecutionGraph, INPUT, OUTPUT, make_application
from ..scheduling.inorder import (
    CommOrders,
    exact_inorder_period,
    inorder_period_for_orders,
)
from .rn3dm import RN3DMInstance, solve


@dataclass(frozen=True)
class PeriodOrchestrationGadget:
    instance: RN3DMInstance
    application: Application
    graph: ExecutionGraph
    K: Fraction


def build(instance: RN3DMInstance) -> PeriodOrchestrationGadget:
    """Construct the Figure-9 gadget for *instance*."""
    n = instance.n
    A = instance.A
    specs: List[Tuple[str, int, int]] = [("C1", n, 1)]
    for i in range(1, n + 2):  # C2, C4, ..., C_{2n+2}
        specs.append((f"C{2 * i}", 2 * n + 1, 1))
    for i in range(1, n + 1):  # C3, C5, ..., C_{2n+1}
        specs.append((f"C{2 * i + 1}", 2 * n + 1 - A[i - 1], 1))
    specs.append((f"C{2 * n + 3}", 2 * n + 1, 1))
    specs.append((f"C{2 * n + 4}", 2 * n + 1, 1))
    specs.append((f"C{2 * n + 5}", n, 1))
    app = make_application(specs)
    edges: List[Tuple[str, str]] = []
    for i in range(1, n + 2):
        edges.append(("C1", f"C{2 * i}"))
    edges.append(("C1", f"C{2 * n + 4}"))
    for i in range(1, n + 1):
        edges.append((f"C{2 * i}", f"C{2 * i + 1}"))
        edges.append((f"C{2 * i + 1}", f"C{2 * n + 5}"))
    edges.append((f"C{2 * n + 2}", f"C{2 * n + 3}"))
    edges.append((f"C{2 * n + 3}", f"C{2 * n + 5}"))
    edges.append((f"C{2 * n + 4}", f"C{2 * n + 5}"))
    graph = ExecutionGraph(app, edges)
    return PeriodOrchestrationGadget(instance, app, graph, Fraction(2 * n + 3))


def forward_orders(
    gadget: PeriodOrchestrationGadget,
    lambda1: Sequence[int],
    lambda2: Sequence[int],
) -> CommOrders:
    """The paper's forward construction: orders realising period ``K``.

    ``C1`` feeds ``C_{2n+2}``, then the branches ``C_{2i}`` in the order
    given by ``lambda1``, and finally ``C_{2n+4}`` (the paper's "first
    communicates with C_{2n+4}" — the send sequence is cyclic, so first
    and last coincide).  ``C_{2n+5}`` receives from ``C_{2n+4}``, then the
    branch ends in the order ``n + 1 - lambda2``, and finally ``C_{2n+3}``.
    """
    n = gadget.instance.n
    graph = gadget.graph
    by_l1 = sorted(range(1, n + 1), key=lambda i: lambda1[i - 1])
    out_c1 = (
        [f"C{2 * n + 2}"]
        + [f"C{2 * i}" for i in by_l1]
        + [f"C{2 * n + 4}"]
    )
    by_l2 = sorted(range(1, n + 1), key=lambda i: n + 1 - lambda2[i - 1])
    in_join = (
        [f"C{2 * n + 4}"]
        + [f"C{2 * i + 1}" for i in by_l2]
        + [f"C{2 * n + 3}"]
    )
    incoming: Dict[str, Tuple[str, ...]] = {}
    outgoing: Dict[str, Tuple[str, ...]] = {}
    for node in graph.nodes:
        incoming[node] = tuple(graph.predecessors(node)) or (INPUT,)
        outgoing[node] = tuple(graph.successors(node)) or (OUTPUT,)
    outgoing["C1"] = tuple(out_c1)
    incoming[f"C{2 * n + 5}"] = tuple(in_join)
    return CommOrders(incoming, outgoing)


def forward_period(gadget: PeriodOrchestrationGadget) -> Optional[Fraction]:
    """Period of the forward construction (``None`` if RN3DM unsolvable)."""
    sol = solve(gadget.instance)
    if sol is None:
        return None
    orders = forward_orders(gadget, *sol)
    return inorder_period_for_orders(gadget.graph, orders)


def decision(gadget: PeriodOrchestrationGadget) -> bool:
    """Does an INORDER operation list of period ``<= K`` exist?  (Exact.)

    Only the send order at ``C1`` and the receive order at ``C_{2n+5}``
    carry any freedom (every other server has at most one predecessor and
    successor), so the search enumerates those two permutations —
    deduplicated over equal-cost branches — and runs one Bellman–Ford
    feasibility check at ``K`` each.
    """
    import itertools

    from ..cyclic import is_feasible
    from ..scheduling.inorder import CommOrders, inorder_event_graph

    # Fast path: a solvable instance yields a period-K list constructively.
    sol = solve(gadget.instance)
    if sol is not None:
        orders = forward_orders(gadget, *sol)
        if inorder_period_for_orders(gadget.graph, orders) <= gadget.K:
            return True
    n = gadget.instance.n
    graph = gadget.graph
    join = f"C{2 * n + 5}"
    out_candidates = list(graph.successors("C1"))
    in_candidates = list(graph.predecessors(join))

    def branch_key(name: str):
        """Branches with equal A[i] are interchangeable; specials are not."""
        idx = int(name[1:])
        if idx in (2 * n + 2, 2 * n + 3, 2 * n + 4):
            return name
        i = idx // 2  # C_{2i} and C_{2i+1} both belong to branch i
        return ("branch", gadget.instance.A[i - 1])

    def cost_pattern(names):
        return tuple(branch_key(x) for x in names)

    base_in = {
        node: tuple(graph.predecessors(node)) or (INPUT,) for node in graph.nodes
    }
    base_out = {
        node: tuple(graph.successors(node)) or (OUTPUT,) for node in graph.nodes
    }
    seen_out = set()
    for out_perm in itertools.permutations(out_candidates):
        pat = cost_pattern(out_perm)
        if pat in seen_out:
            continue
        seen_out.add(pat)
        seen_in = set()
        for in_perm in itertools.permutations(in_candidates):
            pat_in = cost_pattern(in_perm)
            if pat_in in seen_in:
                continue
            seen_in.add(pat_in)
            orders = CommOrders(
                {**base_in, join: in_perm}, {**base_out, "C1": out_perm}
            )
            eg = inorder_event_graph(graph, orders)
            if is_feasible(eg, gadget.K):
                return True
    return False


__all__ = [
    "PeriodOrchestrationGadget",
    "build",
    "decision",
    "forward_orders",
    "forward_period",
]
