"""Proposition 5 (Figure 10): RN3DM -> MinPeriod-OVERLAP.

The gadget has ``3n`` services in three families (``K = 3/2``):

* ``C1_i``: cost ``K``, selectivity ``a * gamma^i``;
* ``C2_i``: cost ``2K / (b + 1)``, selectivity ``a * gamma^i``;
* ``C3_i``: cost ``(K / a^2) * gamma^(-A[i])``, selectivity ``K / b^2``;

with rationals ``a < b < 1 < gamma`` chosen so that (paper's conditions)
``3/4 < a^{2n} < b^{2n} < 3.2/4`` and ``gamma^n < b / a``.  A plan of
period ``<= K`` must arrange the services into ``n`` independent chains
``C1_* -> C2_* -> C3_i`` (Observations in the proof), and chain ``i`` meets
the bound iff ``lambda1(i) + lambda2(i) <= A[i]``, which by the sum
constraint forces equality — i.e. a solution of RN3DM.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Application, CommModel, CostModel, ExecutionGraph, make_application
from .rn3dm import RN3DMInstance, solve

F = Fraction


def find_parameters(n: int) -> Tuple[Fraction, Fraction, Fraction]:
    """Exact rationals ``(a, b, gamma)`` satisfying the gadget inequalities.

    The paper proves existence with denominators ``2^n`` for large ``n``;
    for the small instances the tests use we search increasing denominators
    ``2^m`` (``m >= n``) and verify every inequality exactly.
    """
    lo, hi = F(3, 4), F(16, 20)  # 3/4 < a^{2n} < b^{2n} < 3.2/4
    exp = 2 * n
    for m in range(max(n, 3), n + 40):
        denom = 2**m
        # Bisect the smallest p with (p / denom)^{2n} > 3/4 (monotone in p).
        low, high = 1, denom  # (denom/denom)^{2n} = 1 > 3/4
        while low < high:
            mid = (low + high) // 2
            if F(mid, denom) ** exp > lo:
                high = mid
            else:
                low = mid + 1
        a_num = low
        b_num = a_num + 1
        if F(a_num, denom) ** exp >= hi or F(b_num, denom) ** exp >= hi:
            continue  # the grid is too coarse at this denominator
        a, b = F(a_num, denom), F(b_num, denom)
        # gamma just above 1 with gamma^n < b/a; a finer denominator than
        # a and b is required (the paper's shared-2^n-denominator claim
        # fails for small n — see DESIGN.md "Known paper slips").
        for mg in range(m, m + 64):
            gdenom = 2**mg
            gamma = F(gdenom + 1, gdenom)
            if gamma**n < b / a:
                return a, b, gamma
    raise ValueError(f"could not find gadget parameters for n={n}")


@dataclass(frozen=True)
class MinPeriodOverlapGadget:
    instance: RN3DMInstance
    application: Application
    K: Fraction
    a: Fraction
    b: Fraction
    gamma: Fraction

    def names(self, family: int) -> List[str]:
        return [f"C{family}_{i}" for i in range(1, self.instance.n + 1)]


def build(instance: RN3DMInstance) -> MinPeriodOverlapGadget:
    n = instance.n
    a, b, gamma = find_parameters(n)
    K = F(3, 2)
    specs: List[Tuple[str, Fraction, Fraction]] = []
    for i in range(1, n + 1):
        specs.append((f"C1_{i}", K, a * gamma**i))
    for i in range(1, n + 1):
        specs.append((f"C2_{i}", K * 2 / (b + 1), a * gamma**i))
    for i in range(1, n + 1):
        specs.append(
            (f"C3_{i}", (K / a**2) * gamma ** (-instance.A[i - 1]), K / b**2)
        )
    app = make_application(specs)
    return MinPeriodOverlapGadget(instance, app, K, a, b, gamma)


def chain_plan(
    gadget: MinPeriodOverlapGadget,
    lambda1: Sequence[int],
    lambda2: Sequence[int],
) -> ExecutionGraph:
    """The Figure-10 plan: chains ``C1_{l1(i)} -> C2_{l2(i)} -> C3_i``."""
    edges = []
    for i in range(1, gadget.instance.n + 1):
        edges.append((f"C1_{lambda1[i - 1]}", f"C2_{lambda2[i - 1]}"))
        edges.append((f"C2_{lambda2[i - 1]}", f"C3_{i}"))
    return ExecutionGraph(gadget.application, edges)


def plan_period(gadget: MinPeriodOverlapGadget, graph: ExecutionGraph) -> Fraction:
    """OVERLAP period of a plan (exact — Theorem 1)."""
    return CostModel(graph).period_lower_bound(CommModel.OVERLAP)


def forward_period(gadget: MinPeriodOverlapGadget) -> Optional[Fraction]:
    """Period of the forward construction (``None`` if unsolvable)."""
    sol = solve(gadget.instance)
    if sol is None:
        return None
    return plan_period(gadget, chain_plan(gadget, *sol))


def structure_restricted_decision(gadget: MinPeriodOverlapGadget) -> bool:
    """Minimum period over all Figure-10 chain assignments, vs ``K``.

    The proof's Observations force optimal plans into this structure;
    enumerating the two permutations is then exact for the restricted
    problem (and equivalent to RN3DM).
    """
    n = gadget.instance.n
    indices = list(range(1, n + 1))
    for l1 in itertools.permutations(indices):
        for l2 in itertools.permutations(indices):
            if plan_period(gadget, chain_plan(gadget, l1, l2)) <= gadget.K:
                return True
    return False


def verify_observations(gadget: MinPeriodOverlapGadget) -> List[str]:
    """Check the proof's structural observations numerically (exact).

    Returns a list of violated observations (empty = all hold):
    1. no service may be an entry node except the ``C1`` family;
    2. every ``C3_i`` needs at least two proper ancestors;
    3. ``C3`` services cannot feed other ``C3`` services;
    4. no ``C1``/``C2`` service can have two successors.
    """
    app = gadget.application
    K, a, b, n = gadget.K, gadget.a, gadget.b, gadget.instance.n
    gamma = gadget.gamma
    problems: List[str] = []
    for i in range(1, n + 1):
        c2 = app.cost(f"C2_{i}")
        if not 1 + c2 + app.selectivity(f"C2_{i}") > K:
            problems.append(f"C2_{i} could be an entry node")
        c3 = app.cost(f"C3_{i}")
        if not 1 + c3 + app.selectivity(f"C3_{i}") > K:
            problems.append(f"C3_{i} could be an entry node")
        # one single C1/C2 ancestor is not enough for C3_i
        for j in range(1, n + 1):
            sel = app.selectivity(f"C1_{j}")
            if not sel * c3 > K:
                problems.append(f"C3_{i} could hang below C1_{j} alone")
    # two successors of a C1/C2 service exceed the outgoing capacity
    min_sel = min(app.selectivity(f"C1_{i}") for i in range(1, n + 1))
    if not 2 * min_sel * min_sel > K:
        problems.append("a C1/C2 service could feed two successors")
    return problems


__all__ = [
    "MinPeriodOverlapGadget",
    "build",
    "chain_plan",
    "find_parameters",
    "forward_period",
    "plan_period",
    "structure_restricted_decision",
    "verify_observations",
]
