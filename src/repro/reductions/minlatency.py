"""Propositions 13-15: RN3DM -> MinLatency (fork-join emerges from optimality).

The gadget has ``n + 2`` services:

* a fork ``F`` with ``c_F = sigma_F = 1/(20n)``;
* ``C_i`` with cost ``10n - A[i]`` and selectivity ``sigma = 1 - 1/(2n)``;
* a join ``J`` with ``c_J = 1`` and ``sigma_J = 200 n^2 - 1``.

The paper shows every latency-optimal plan is the fork-join
``F -> {C_i} -> J`` and that the optimal latency is reached iff the send /
receive orders encode an RN3DM solution.  In the paper's accounting the
initial input message is dropped; our model charges it, which shifts every
latency by the constant 1 and leaves the reduction untouched — we use
``K = 1 + c_F + 10n * sigma_F + sigma_F sigma^n (c_J + sigma_J)
= 3/2 + 1/(20n) + 10n (1 - 1/2n)^n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from ..core import Application, ExecutionGraph, make_application
from ..scheduling.latency import minmax_two_permutations
from .rn3dm import RN3DMInstance, solve

F = Fraction


@dataclass(frozen=True)
class MinLatencyGadget:
    instance: RN3DMInstance
    application: Application
    K: Fraction

    @property
    def fork_join_graph(self) -> ExecutionGraph:
        n = self.instance.n
        edges = [("F", f"C{i}") for i in range(1, n + 1)]
        edges += [(f"C{i}", "J") for i in range(1, n + 1)]
        return ExecutionGraph(self.application, edges)


def build(instance: RN3DMInstance) -> MinLatencyGadget:
    n = instance.n
    sf = F(1, 20 * n)
    sigma = 1 - F(1, 2 * n)
    specs: List[Tuple[str, Fraction, Fraction]] = [("F", sf, sf)]
    for i in range(1, n + 1):
        specs.append((f"C{i}", F(10 * n - instance.A[i - 1]), sigma))
    specs.append(("J", F(1), F(200 * n * n - 1)))
    app = make_application(specs)
    K = 1 + sf + 10 * n * sf + sf * sigma**n * (1 + (200 * n * n - 1))
    return MinLatencyGadget(instance, app, K)


def fork_join_latency(
    gadget: MinLatencyGadget,
    lambda1: List[int],
    lambda2: List[int],
) -> Fraction:
    """Exact latency of the fork-join plan under the given orders.

    ``L = 1 + c_F + sigma_F * max_i (lambda1(i) + c_i + sigma lambda2(i))
    + sigma_F sigma^n (c_J + sigma_J)`` — input message, fork computation,
    the packed send/receive pipeline, join computation and output message.
    """
    app = gadget.application
    n = gadget.instance.n
    sf = app.selectivity("F")
    sigma = app.selectivity("C1")
    inner = max(
        lambda1[i - 1] + app.cost(f"C{i}") + sigma * lambda2[i - 1]
        for i in range(1, n + 1)
    )
    tail = sf * sigma**n * (app.cost("J") + app.selectivity("J"))
    return 1 + app.cost("F") + sf * inner + tail


def optimal_fork_join_latency(gadget: MinLatencyGadget) -> Fraction:
    """Exact optimum over both orders (two-permutation min-max)."""
    app = gadget.application
    n = gadget.instance.n
    sf = app.selectivity("F")
    sigma = app.selectivity("C1")
    costs = [app.cost(f"C{i}") for i in range(1, n + 1)]
    inner, _, _ = minmax_two_permutations(costs, second_scale=sigma)
    tail = sf * sigma**n * (app.cost("J") + app.selectivity("J"))
    return 1 + app.cost("F") + sf * inner + tail


def forward_latency(gadget: MinLatencyGadget) -> Optional[Fraction]:
    sol = solve(gadget.instance)
    if sol is None:
        return None
    return fork_join_latency(gadget, *sol)


def decision(gadget: MinLatencyGadget) -> bool:
    """Fork-join-restricted MinLatency ``<= K``?  (Exact; the paper's
    Observations force optimal plans into this very structure.)"""
    return optimal_fork_join_latency(gadget) <= gadget.K


def structure_penalties(gadget: MinLatencyGadget) -> List[Tuple[str, Fraction]]:
    """The proof's 'wrong structure' latencies, all strictly above ``K``.

    Returns labelled lower bounds for: a branch service without a
    predecessor, the join without predecessors, the join directly after
    the fork, and two chained branch services.
    """
    app = gadget.application
    n = gadget.instance.n
    sf = app.selectivity("F")
    sigma = app.selectivity("C1")
    cmin = min(app.cost(f"C{i}") for i in range(1, n + 1))
    join_tail = app.cost("J") + app.selectivity("J")  # = 200 n^2
    out: List[Tuple[str, Fraction]] = []
    out.append(("branch service as entry node", 1 + cmin))
    out.append(("join as entry node", 1 + join_tail))
    out.append(
        ("join directly after fork", 1 + app.cost("F") + sf * (1 + join_tail))
    )
    # two chained branch services: both computations pay their cost, the
    # join tail is filtered by at most sigma^n (paper's L').
    out.append(
        (
            "two chained branch services",
            1
            + app.cost("F")
            + sf * (cmin + sigma * cmin + sigma**n * join_tail),
        )
    )
    return out


__all__ = [
    "MinLatencyGadget",
    "build",
    "decision",
    "fork_join_latency",
    "forward_latency",
    "optimal_fork_join_latency",
    "structure_penalties",
]
