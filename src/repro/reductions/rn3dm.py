"""RN3DM — the permutation sums problem (Yu, Hoogeveen, Lenstra [22]).

Given an integer vector ``A`` of size ``n``, do two permutations
``lambda1, lambda2`` of ``{1..n}`` exist with ``lambda1(i) + lambda2(i) =
A[i]`` for all ``i``?  This restricted numerical 3-dimensional matching is
NP-complete and is the source problem of every RN3DM reduction in the
paper (Propositions 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15).

Necessary conditions used by the paper ("we can suppose"): ``2 <= A[i] <=
2n`` and ``sum A = n (n + 1)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RN3DMInstance:
    """An RN3DM instance (the integer vector ``A``)."""

    A: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "A", tuple(int(a) for a in self.A))
        if not self.A:
            raise ValueError("empty RN3DM instance")

    @property
    def n(self) -> int:
        return len(self.A)

    def is_well_formed(self) -> bool:
        """The paper's necessary conditions (not sufficient)."""
        n = self.n
        return all(2 <= a <= 2 * n for a in self.A) and sum(self.A) == n * (n + 1)

    def check(self, lambda1: Sequence[int], lambda2: Sequence[int]) -> bool:
        """Is ``(lambda1, lambda2)`` a certificate (1-based permutations)?"""
        n = self.n
        return (
            sorted(lambda1) == list(range(1, n + 1))
            and sorted(lambda2) == list(range(1, n + 1))
            and all(lambda1[i] + lambda2[i] == self.A[i] for i in range(n))
        )


def solve(instance: RN3DMInstance) -> Optional[Tuple[List[int], List[int]]]:
    """Backtracking solver: returns ``(lambda1, lambda2)`` or ``None``.

    Positions are assigned in order; both value pools are tracked.  The
    problem is NP-complete, but instances of the size the gadget tests use
    (n <= 10) solve instantly.
    """
    if not instance.is_well_formed():
        return None
    n = instance.n
    lambda1 = [0] * n
    lambda2 = [0] * n
    used1 = [False] * (n + 1)
    used2 = [False] * (n + 1)

    # Assign most-constrained positions first (fewest feasible v values).
    def domain_size(i: int) -> int:
        return sum(
            1
            for v in range(1, n + 1)
            if not used1[v] and 1 <= instance.A[i] - v <= n and not used2[instance.A[i] - v]
        )

    order = sorted(range(n), key=lambda i: (min(instance.A[i] - 1, n) - max(instance.A[i] - n, 1)))

    def backtrack(k: int) -> bool:
        if k == n:
            return True
        i = order[k]
        a = instance.A[i]
        for v in range(max(1, a - n), min(n, a - 1) + 1):
            w = a - v
            if used1[v] or used2[w]:
                continue
            used1[v] = used2[w] = True
            lambda1[i], lambda2[i] = v, w
            if backtrack(k + 1):
                return True
            used1[v] = used2[w] = False
        return False

    if backtrack(0):
        return lambda1, lambda2
    return None


def is_solvable(instance: RN3DMInstance) -> bool:
    return solve(instance) is not None


def brute_force_solve(
    instance: RN3DMInstance,
) -> Optional[Tuple[List[int], List[int]]]:
    """Reference solver enumerating all permutations (tests only)."""
    n = instance.n
    if not instance.is_well_formed():
        return None
    for perm in itertools.permutations(range(1, n + 1)):
        lambda2 = [instance.A[i] - perm[i] for i in range(n)]
        if sorted(lambda2) == list(range(1, n + 1)):
            return list(perm), lambda2
    return None


def solvable_instance(n: int, seed: int = 0) -> RN3DMInstance:
    """A random solvable instance: ``A = lambda1 + lambda2`` by construction."""
    rng = np.random.default_rng(seed)
    l1 = rng.permutation(n) + 1
    l2 = rng.permutation(n) + 1
    return RN3DMInstance(tuple(int(a + b) for a, b in zip(l1, l2)))


def unsolvable_instance(n: int, seed: int = 0, max_tries: int = 10_000) -> RN3DMInstance:
    """A random well-formed but unsolvable instance (exists for n >= 4).

    E.g. ``A = (2, 2, 8, 8)`` is well-formed for ``n = 4`` yet unsolvable:
    two positions demanding ``1 + 1`` collide.
    """
    if n < 4:
        raise ValueError("all well-formed instances with n <= 3 are solvable")
    rng = np.random.default_rng(seed)
    target = n * (n + 1)
    for _ in range(max_tries):
        a = rng.integers(2, 2 * n + 1, size=n)
        diff = target - int(a.sum())
        # greedy repair of the sum
        idx = 0
        while diff != 0 and idx < 10 * n:
            j = int(rng.integers(0, n))
            step = 1 if diff > 0 else -1
            if 2 <= a[j] + step <= 2 * n:
                a[j] += step
                diff -= step
            idx += 1
        inst = RN3DMInstance(tuple(int(x) for x in a))
        if inst.is_well_formed() and not is_solvable(inst):
            return inst
    return RN3DMInstance((2, 2, 2 * n, 2 * n) + tuple([n + 1] * (n - 4)))


__all__ = [
    "RN3DMInstance",
    "brute_force_solve",
    "is_solvable",
    "solvable_instance",
    "solve",
    "unsolvable_instance",
]
