"""Executable NP-hardness reductions (Figures 9-12 and Proposition 17)."""

from . import (
    forest_latency,
    minlatency,
    minperiod_oneport,
    minperiod_overlap,
    orchestration_latency,
    orchestration_period,
)
from .partition import PartitionInstance
from .rn3dm import RN3DMInstance, is_solvable, solvable_instance, solve, unsolvable_instance

__all__ = [
    "PartitionInstance",
    "RN3DMInstance",
    "forest_latency",
    "is_solvable",
    "minlatency",
    "minperiod_oneport",
    "minperiod_overlap",
    "orchestration_latency",
    "orchestration_period",
    "solvable_instance",
    "solve",
    "unsolvable_instance",
]
