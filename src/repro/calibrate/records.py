"""Measured traces: one row per observed operation occurrence.

A :class:`TraceRecord` is what a deployment can actually meter about one
operation: *when* it ran, *how much data* it touched, and *how long* it
took — never the model parameters themselves.  Calibration
(:mod:`repro.calibrate.fit`) inverts the paper's cost formulas over many
records:

* a computation of service ``i`` on server ``u`` processing ``P`` bytes
  for ``d`` time units satisfies ``d = P · c_i / s_u``;
* a transfer of ``P`` bytes between servers ``u → v`` taking ``d``
  satisfies ``d = P / b_{u,v}``;
* the output/input size ratio of a service is its selectivity ``σ_i``.

Three observers produce traces.  :func:`records_from_policy` instruments
the rendezvous INORDER runtime (:func:`repro.simulate.simulate_inorder_policy`
with ``record=True``); :func:`records_from_plan` meters a scheduled
:class:`~repro.core.Plan`'s operation list; :func:`synthetic_records`
emits ground-truth records straight from the :class:`~repro.core.CostModel`
with seeded multiplicative noise — the controlled environment the
round-trip tests calibrate against.  External measurements enter through
the CSV round-trip (:meth:`CalibrationTrace.load_csv`).

Everything stays in exact :class:`~fractions.Fraction`s, so noise-free
observation followed by a quantile fit recovers parameters *exactly*.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core import (
    CostModel,
    ExecutionGraph,
    INPUT,
    Mapping,
    Numeric,
    OUTPUT,
    Plan,
    Platform,
    as_fraction,
    is_comm,
)

#: CSV rendition, one record per row.  ``service``/``server`` are the
#: computation columns; ``src``/``dst`` (service names or INPUT/OUTPUT)
#: and ``src_server``/``dst_server`` the communication columns — unused
#: columns stay empty.
CSV_COLUMNS: Tuple[str, ...] = (
    "time", "dataset", "kind", "service", "server",
    "src", "dst", "src_server", "dst_server", "size", "duration",
)

#: Denominator of the rational noise grid (multiplicative jitter draws).
_GRID = 10**6

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass(frozen=True)
class TraceRecord:
    """One observed operation occurrence (a computation or a transfer)."""

    kind: str  # "comp" | "comm"
    dataset: int
    size: Fraction
    duration: Fraction
    time: Fraction = ZERO
    service: str = ""      # comp: the service that computed
    server: str = ""       # comp: where it ran
    src: str = ""          # comm: producing service (or INPUT)
    dst: str = ""          # comm: consuming service (or OUTPUT)
    src_server: str = ""
    dst_server: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("comp", "comm"):
            raise ValueError(
                f"record kind must be 'comp' or 'comm', got {self.kind!r}"
            )
        if int(self.dataset) < 0:
            raise ValueError(f"dataset index must be >= 0, got {self.dataset}")
        object.__setattr__(self, "dataset", int(self.dataset))
        for name in ("size", "duration", "time"):
            object.__setattr__(self, name, as_fraction(getattr(self, name)))
        if self.size <= 0:
            raise ValueError(f"record size must be > 0, got {self.size}")
        if self.duration < 0:
            raise ValueError(f"record duration must be >= 0, got {self.duration}")
        if self.kind == "comp" and not (self.service and self.server):
            raise ValueError("comp record needs 'service' and 'server'")
        if self.kind == "comm" and not (self.src and self.dst):
            raise ValueError("comm record needs 'src' and 'dst'")

    @classmethod
    def comp(
        cls, service: str, server: str, size: Numeric, duration: Numeric,
        *, dataset: int = 0, time: Numeric = ZERO,
    ) -> "TraceRecord":
        return cls(
            kind="comp", dataset=dataset, size=as_fraction(size),
            duration=as_fraction(duration), time=as_fraction(time),
            service=service, server=server,
        )

    @classmethod
    def comm(
        cls, src: str, dst: str, src_server: str, dst_server: str,
        size: Numeric, duration: Numeric,
        *, dataset: int = 0, time: Numeric = ZERO,
    ) -> "TraceRecord":
        return cls(
            kind="comm", dataset=dataset, size=as_fraction(size),
            duration=as_fraction(duration), time=as_fraction(time),
            src=src, dst=dst, src_server=src_server, dst_server=dst_server,
        )

    def as_row(self) -> List[str]:
        return [
            str(self.time), str(self.dataset), self.kind, self.service,
            self.server, self.src, self.dst, self.src_server,
            self.dst_server, str(self.size), str(self.duration),
        ]

    @classmethod
    def from_row(cls, row: dict) -> "TraceRecord":
        unknown = sorted(set(row) - set(CSV_COLUMNS), key=str)
        if unknown:
            names = ", ".join(
                "<extra unnamed column>" if k is None else repr(k)
                for k in unknown
            )
            raise ValueError(
                f"unknown trace field(s) {names}; "
                f"accepted: {', '.join(CSV_COLUMNS)}"
            )
        kind = row.get("kind")
        if not isinstance(kind, str):
            raise ValueError("trace record needs a 'kind' column")
        try:
            dataset = int(row.get("dataset") or 0)
        except (TypeError, ValueError):
            raise ValueError(
                f"dataset must be an integer, got {row.get('dataset')!r}"
            ) from None
        return cls(
            kind=kind,
            dataset=dataset,
            size=as_fraction(row.get("size") or 0),
            duration=as_fraction(row.get("duration") or 0),
            time=as_fraction(row.get("time") or 0),
            service=str(row.get("service") or ""),
            server=str(row.get("server") or ""),
            src=str(row.get("src") or ""),
            dst=str(row.get("dst") or ""),
            src_server=str(row.get("src_server") or ""),
            dst_server=str(row.get("dst_server") or ""),
        )


@dataclass
class CalibrationTrace:
    """An ordered bag of :class:`TraceRecord` rows with CSV round-trip."""

    records: Tuple[TraceRecord, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.records = tuple(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __add__(self, other: "CalibrationTrace") -> "CalibrationTrace":
        """Concatenate traces — e.g. the same application measured under
        several mappings, which is what breaks the cost/speed gauge."""
        if not isinstance(other, CalibrationTrace):
            return NotImplemented
        return CalibrationTrace(self.records + other.records)

    def save_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_COLUMNS)
            for record in self.records:
                writer.writerow(record.as_row())

    @classmethod
    def load_csv(cls, path) -> "CalibrationTrace":
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or sorted(reader.fieldnames) != sorted(
                CSV_COLUMNS
            ):
                raise ValueError(
                    f"trace CSV needs columns {', '.join(CSV_COLUMNS)}; "
                    f"got {reader.fieldnames}"
                )
            records = []
            for line, row in enumerate(reader, start=2):
                try:
                    records.append(TraceRecord.from_row(dict(row)))
                except ValueError as exc:
                    raise ValueError(f"trace CSV row {line}: {exc}") from None
            return cls(tuple(records))


# -- observers ----------------------------------------------------------------


def _jitter(rng: random.Random, amount: Fraction) -> Fraction:
    """A rational multiplicative factor uniform in ``[1-amount, 1+amount]``."""
    if amount == 0:
        return ONE
    return ONE + amount * Fraction(rng.randrange(-_GRID, _GRID + 1), _GRID)


def _server_of(mapping: Optional[Mapping], node: str) -> str:
    """Observed host of *node* — itself on the paper's implicit platform."""
    if node in (INPUT, OUTPUT):
        return node
    return mapping.server(node) if mapping is not None else node


def synthetic_records(
    graph: ExecutionGraph,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    *,
    n_datasets: int = 1,
    noise: Numeric = 0,
    size_jitter: Numeric = 0,
    seed: int = 0,
    start: Numeric = 0,
) -> CalibrationTrace:
    """Ground-truth measurements of *graph* with controlled noise.

    Emits one comp record per service and one comm record per graph edge
    (including the INPUT/OUTPUT world edges) per data set, with durations
    taken from the true :class:`~repro.core.CostModel` times a seeded
    multiplicative factor in ``[1-noise, 1+noise]``; *size_jitter*
    additionally scales each data set's input volume (real streams are
    not constant-size), which perturbs sizes and durations **together**
    exactly as the linear cost model predicts.  ``noise=0`` reproduces
    the model exactly — the round-trip tests' setting.
    """
    if n_datasets < 1:
        raise ValueError(f"need n_datasets >= 1, got {n_datasets}")
    noise = as_fraction(noise)
    size_jitter = as_fraction(size_jitter)
    for name, value in (("noise", noise), ("size_jitter", size_jitter)):
        if not 0 <= value < 1:
            raise ValueError(f"{name} must be in [0, 1), got {value}")
    rng = random.Random(seed)
    costs = CostModel(graph, platform, mapping)
    mapped = costs.mapping if platform is not None else mapping
    records: List[TraceRecord] = []
    clock = as_fraction(start)
    for dataset in range(n_datasets):
        scale = _jitter(rng, size_jitter)
        for node in graph.topological_order:
            in_edges = [(p, node) for p in graph.predecessors(node)]
            if not in_edges:
                in_edges = [(INPUT, node)]
            for src, dst in in_edges:
                duration = costs.comm_time(src, dst) * scale * _jitter(rng, noise)
                records.append(TraceRecord.comm(
                    src, dst, _server_of(mapped, src), _server_of(mapped, dst),
                    costs.message_size(src, dst) * scale, duration,
                    dataset=dataset, time=clock,
                ))
                clock += duration
            duration = costs.ccomp(node) * scale * _jitter(rng, noise)
            records.append(TraceRecord.comp(
                node, _server_of(mapped, node),
                costs.ancestor_selectivity(node) * scale, duration,
                dataset=dataset, time=clock,
            ))
            clock += duration
            if not graph.successors(node):
                duration = (
                    costs.comm_time(node, OUTPUT) * scale * _jitter(rng, noise)
                )
                records.append(TraceRecord.comm(
                    node, OUTPUT, _server_of(mapped, node), OUTPUT,
                    costs.message_size(node, OUTPUT) * scale, duration,
                    dataset=dataset, time=clock,
                ))
                clock += duration
    return CalibrationTrace(tuple(records))


def records_from_policy(
    graph: ExecutionGraph,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    *,
    n_datasets: int = 4,
    noise: Numeric = 0,
    seed: int = 0,
) -> CalibrationTrace:
    """Instrument the rendezvous INORDER runtime and meter every operation.

    Runs :func:`repro.simulate.simulate_inorder_policy` with
    ``record=True`` and converts its per-occurrence
    :data:`~repro.simulate.OpRecord` spans into trace records —
    timestamps come from the actual max-plus execution, durations from
    the rendezvous transfer/compute spans (optionally re-jittered by
    *noise*, modelling measurement error on the clock reads).
    """
    from ..simulate.policies import simulate_inorder_policy

    noise = as_fraction(noise)
    if not 0 <= noise < 1:
        raise ValueError(f"noise must be in [0, 1), got {noise}")
    rng = random.Random(seed)
    trace = simulate_inorder_policy(
        graph, n_datasets, platform=platform, mapping=mapping, record=True
    )
    mapped = (
        CostModel(graph, platform, mapping).mapping
        if platform is not None
        else mapping
    )
    records: List[TraceRecord] = []
    for op, dataset, begin, end, size in trace.records:
        duration = (end - begin) * _jitter(rng, noise)
        if is_comm(op):
            records.append(TraceRecord.comm(
                op[1], op[2], _server_of(mapped, op[1]), _server_of(mapped, op[2]),
                size, duration, dataset=dataset, time=begin,
            ))
        else:
            records.append(TraceRecord.comp(
                op[1], _server_of(mapped, op[1]), size, duration,
                dataset=dataset, time=begin,
            ))
    return CalibrationTrace(tuple(records))


def records_from_plan(
    plan: Plan,
    *,
    n_datasets: int = 2,
    noise: Numeric = 0,
    seed: int = 0,
) -> CalibrationTrace:
    """Meter a scheduled :class:`~repro.core.Plan`'s operation list.

    Each operation occurrence becomes one record with the schedule's own
    begin/duration.  Note the caveat for multiport (OVERLAP) schedules:
    the scheduler may *stretch* a transfer over a longer window at lower
    effective rate, so plan-derived bandwidth fits are lower bounds;
    rendezvous policy traces (:func:`records_from_policy`) measure links
    at full rate.
    """
    if n_datasets < 1:
        raise ValueError(f"need n_datasets >= 1, got {n_datasets}")
    noise = as_fraction(noise)
    if not 0 <= noise < 1:
        raise ValueError(f"noise must be in [0, 1), got {noise}")
    rng = random.Random(seed)
    graph, ol = plan.graph, plan.operation_list
    costs = CostModel(graph, plan.platform, plan.mapping)
    mapped = costs.mapping if plan.platform is not None else plan.mapping
    records: List[TraceRecord] = []
    for op in ol.operations():
        for dataset in range(n_datasets):
            begin = ol.begin_n(op, dataset)
            duration = ol.duration(op) * _jitter(rng, noise)
            if duration <= 0:
                continue  # co-located or zero-size edge: nothing measurable
            if is_comm(op):
                records.append(TraceRecord.comm(
                    op[1], op[2],
                    _server_of(mapped, op[1]), _server_of(mapped, op[2]),
                    costs.message_size(op[1], op[2]), duration,
                    dataset=dataset, time=begin,
                ))
            else:
                records.append(TraceRecord.comp(
                    op[1], _server_of(mapped, op[1]),
                    costs.ancestor_selectivity(op[1]), duration,
                    dataset=dataset, time=begin,
                ))
    records.sort(key=lambda r: (r.time, r.dataset))
    return CalibrationTrace(tuple(records))


__all__ = [
    "CSV_COLUMNS",
    "CalibrationTrace",
    "TraceRecord",
    "records_from_plan",
    "records_from_policy",
    "synthetic_records",
]
