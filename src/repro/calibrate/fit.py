"""Estimators: invert the cost formulas over a measured trace.

What is identifiable, and how each family is fitted:

**Selectivities.**  Per data set, a service's output/input size ratio is
exactly ``σ_i`` — sizes pair through the ``(service, dataset)`` key, so
per-data-set volume fluctuations cancel.  One sample per outgoing
transfer record.

**Bandwidths.**  Every cross-server transfer yields a throughput sample
``size / duration`` for its unordered server pair; world transfers
(INPUT/OUTPUT endpoints) sample the platform's default bandwidth.

**Costs and speeds.**  A computation record only constrains the *ratio*
``c_i / s_u = duration / size`` — from a single mapping the two are not
separately identifiable (the classic gauge freedom: double every cost,
double every speed, nothing observable changes).  The fit builds the
bipartite observation graph over services and servers, picks one gauge
anchor per connected component (a server with a known speed if
``known_speeds`` provides one, else the lexicographically smallest
observed server, pinned to speed 1), propagates estimates by BFS, then
refines by alternating per-node medians — the quantile analogue of
alternating least squares — re-normalising the gauge each round.
Measuring the same application under **several mappings** merges the
components, so heterogeneous speeds become identifiable up to the single
global anchor.

Every estimate is an exact-Fraction quantile (``estimator="median"``,
the default) or mean (``"mean"``, the least-squares solution), wrapped
in an :class:`~repro.core.UncertainValue` whose interval brackets the
per-record sample estimates.  Noise-free traces therefore round-trip the
true constants *exactly* — the property the tier-1 tests pin down.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core import (
    Application,
    ExecutionGraph,
    INPUT,
    Numeric,
    OUTPUT,
    Platform,
    Service,
    UncertainValue,
    as_fraction,
    perturbed_application,
    perturbed_platform,
)
from .records import CalibrationTrace, TraceRecord

ZERO = Fraction(0)
ONE = Fraction(1)

#: Alternating-median refinement rounds (noise-free data converges in 0).
_REFINE_ROUNDS = 6

_WORLD = (INPUT, OUTPUT)


def _pair(u: str, v: str) -> Tuple[str, str]:
    return (u, v) if u <= v else (v, u)


@dataclass
class CalibrationResult:
    """Fitted parameters, diagnostics, and rebuilders.

    All dictionaries map names to :class:`~repro.core.UncertainValue`
    (bandwidths by unordered server pair).  ``residuals`` holds the
    worst relative prediction error per family — ``0`` means the fitted
    model reproduces every record exactly; large values flag model
    mismatch (e.g. bandwidth fits from stretched multiport transfers).
    """

    costs: Dict[str, UncertainValue]
    selectivities: Dict[str, UncertainValue]
    speeds: Dict[str, UncertainValue]
    bandwidths: Dict[Tuple[str, str], UncertainValue]
    default_bandwidth: UncertainValue
    edges: Tuple[Tuple[str, str], ...]
    n_records: int
    residuals: Dict[str, Fraction] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    # -- rebuilders -----------------------------------------------------------
    def application(self, base: Optional[Application] = None) -> Application:
        """The fitted :class:`~repro.core.Application`.

        With *base*, its service order and precedence are kept and only
        observed parameters are replaced (unobserved ones keep the base
        value).  Without it, services are the observed ones in sorted
        order, precedence-free.
        """
        if base is not None:
            return perturbed_application(
                base,
                costs={n: uv.nominal for n, uv in self.costs.items()
                       if n in base.names},
                selectivities={n: uv.nominal
                               for n, uv in self.selectivities.items()
                               if n in base.names},
            )
        names = sorted(set(self.costs) | set(self.selectivities))
        if not names:
            raise ValueError("no services observed; cannot build an application")
        return Application(tuple(
            Service(
                name,
                self.costs.get(name, UncertainValue.point(0)).nominal,
                self.selectivities.get(name, UncertainValue.point(1)).nominal,
            )
            for name in names
        ))

    def graph(self, application: Application) -> ExecutionGraph:
        """The observed execution graph over *application*."""
        return ExecutionGraph(application, self.edges)

    def platform(self, base: Optional[Platform] = None) -> Platform:
        """The fitted :class:`~repro.core.Platform`.

        With *base*, observed speeds/bandwidths replace the base values
        (structure, unobserved links and server order preserved).
        Without it, servers are the observed ones in sorted order and a
        link is emitted for every observed pair whose fitted bandwidth
        differs from the fitted default.
        """
        if base is not None:
            default = self.default_bandwidth.nominal
            base_pairs = {_pair(u, v) for (u, v) in base.link_overrides()}
            known = set(base.names) | set(_WORLD)
            return perturbed_platform(
                base,
                speeds={n: uv.nominal for n, uv in self.speeds.items()
                        if n in base.names},
                # A pair fitted *at* the default needs no explicit link —
                # emitting one would change the platform key without
                # changing any priced bandwidth.
                bandwidths={
                    p: uv.nominal for p, uv in self.bandwidths.items()
                    if set(p) <= known
                    and (p in base_pairs or uv.nominal != default)
                },
                default_bandwidth=default,
            )
        if not self.speeds:
            raise ValueError("no servers observed; cannot build a platform")
        from ..core import Link, Server

        default = self.default_bandwidth.nominal
        servers = tuple(
            Server(name, self.speeds[name].nominal)
            for name in sorted(self.speeds)
        )
        links = tuple(
            Link(u, v, uv.nominal)
            for (u, v), uv in sorted(self.bandwidths.items())
            if uv.nominal != default
        )
        return Platform(servers, links, default_bandwidth=default)

    def robust_spec(self, **kwargs) -> "RobustSpec":  # noqa: F821
        """A :class:`~repro.robust.RobustSpec` carrying this fit's
        empirical uncertainty sets (see
        :meth:`repro.robust.RobustSpec.from_calibration`)."""
        from ..robust import RobustSpec

        return RobustSpec.from_calibration(self, **kwargs)

    # -- reporting ------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "n_records": self.n_records,
            "costs": {n: uv.as_dict() for n, uv in sorted(self.costs.items())},
            "selectivities": {
                n: uv.as_dict() for n, uv in sorted(self.selectivities.items())
            },
            "speeds": {n: uv.as_dict() for n, uv in sorted(self.speeds.items())},
            "bandwidths": {
                f"{u}|{v}": uv.as_dict()
                for (u, v), uv in sorted(self.bandwidths.items())
            },
            "default_bandwidth": self.default_bandwidth.as_dict(),
            "edges": [list(edge) for edge in self.edges],
            "residuals": {k: str(v) for k, v in sorted(self.residuals.items())},
            "warnings": list(self.warnings),
        }

    def report(self) -> str:
        """Human fit-quality report (the ``repro calibrate`` output)."""
        lines = [
            f"calibration fit over {self.n_records} records",
            "",
            f"{'parameter':<24} {'nominal':>12} {'[lo, hi]':>24} {'n':>5}",
        ]

        def num(value: Fraction) -> str:
            # Noisy fits produce Fractions with astronomical denominators;
            # the report is for humans, so fall back to a float rendering.
            if value.denominator <= 10_000:
                return str(value)
            return f"{float(value):.6g}"

        def row(label: str, uv: UncertainValue) -> str:
            return (
                f"{label:<24} {num(uv.nominal):>12} "
                f"{f'[{num(uv.lo)}, {num(uv.hi)}]':>24} {len(uv.samples):>5}"
            )

        for name, uv in sorted(self.costs.items()):
            lines.append(row(f"cost {name}", uv))
        for name, uv in sorted(self.selectivities.items()):
            lines.append(row(f"selectivity {name}", uv))
        for name, uv in sorted(self.speeds.items()):
            lines.append(row(f"speed {name}", uv))
        for (u, v), uv in sorted(self.bandwidths.items()):
            lines.append(row(f"bandwidth {u}-{v}", uv))
        lines.append(row("default bandwidth", self.default_bandwidth))
        lines.append("")
        lines.append("max relative residual per family:")
        for family in ("comp", "comm"):
            value = self.residuals.get(family)
            shown = "n/a" if value is None else f"{float(value):.6g}"
            lines.append(f"  {family:<6} {shown}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)


def _estimate(
    samples: Sequence[Fraction],
    estimator: str,
    lo_q: Fraction,
    hi_q: Fraction,
) -> UncertainValue:
    return UncertainValue.from_samples(
        samples, estimator=estimator, lo_q=lo_q, hi_q=hi_q
    )


def fit_trace(
    trace: Union[CalibrationTrace, Iterable[TraceRecord]],
    *,
    estimator: str = "median",
    lo_q: Numeric = Fraction(1, 10),
    hi_q: Numeric = Fraction(9, 10),
    known_speeds: Optional[Dict[str, Numeric]] = None,
    gauge: Optional[str] = None,
) -> CalibrationResult:
    """Fit costs, selectivities, speeds and bandwidths from *trace*.

    Parameters
    ----------
    estimator:
        ``"median"`` (robust quantile fit, exact on noise-free data) or
        ``"mean"`` (per-parameter least squares).
    lo_q / hi_q:
        Quantiles bracketing each :class:`~repro.core.UncertainValue`.
    known_speeds:
        Ground-truth speeds for some servers (e.g. from hardware specs);
        they anchor the cost/speed gauge of their components.
    gauge:
        Server pinned to speed 1 when no known speed anchors its
        component (default: the lexicographically smallest observed
        server of each component).
    """
    records = tuple(trace)
    if not records:
        raise ValueError("fit_trace needs at least one record")
    lo_q = as_fraction(lo_q)
    hi_q = as_fraction(hi_q)
    known = {
        name: as_fraction(value) for name, value in (known_speeds or {}).items()
    }
    warnings: List[str] = []

    comp = [r for r in records if r.kind == "comp"]
    comm = [r for r in records if r.kind == "comm"]

    # -- selectivities: pair output transfers with the producer's input size
    in_size: Dict[Tuple[str, int], Fraction] = {}
    for r in comp:
        in_size.setdefault((r.service, r.dataset), r.size)
    sel_samples: Dict[str, List[Fraction]] = defaultdict(list)
    for r in comm:
        if r.src in _WORLD:
            continue
        base = in_size.get((r.src, r.dataset))
        if base:
            sel_samples[r.src].append(r.size / base)
    selectivities = {
        name: _estimate(samples, estimator, lo_q, hi_q)
        for name, samples in sel_samples.items()
    }
    for r in comp:
        if r.service not in selectivities:
            warnings.append(
                f"service {r.service!r}: no outgoing transfer observed; "
                f"selectivity not identifiable (assume 1)"
            )
            selectivities[r.service] = UncertainValue.point(1)

    # -- bandwidths: throughput samples per unordered server pair
    bw_samples: Dict[Tuple[str, str], List[Fraction]] = defaultdict(list)
    world_samples: List[Fraction] = []
    for r in comm:
        if r.duration <= 0 or not (r.src_server and r.dst_server):
            continue
        if r.src_server == r.dst_server and r.src_server not in _WORLD:
            continue  # co-located: no link was exercised
        throughput = r.size / r.duration
        if r.src_server in _WORLD or r.dst_server in _WORLD:
            world_samples.append(throughput)
        else:
            bw_samples[_pair(r.src_server, r.dst_server)].append(throughput)
    bandwidths = {
        pair: _estimate(samples, estimator, lo_q, hi_q)
        for pair, samples in bw_samples.items()
    }
    if world_samples:
        default_bandwidth = _estimate(world_samples, estimator, lo_q, hi_q)
    else:
        default_bandwidth = UncertainValue.point(1)
        warnings.append(
            "no world (INPUT/OUTPUT) transfers observed; default bandwidth "
            "not identifiable (assume 1)"
        )

    # -- costs and speeds: gauge-fixed fit of the bipartite ratio graph
    ratio_records: Dict[Tuple[str, str], List[Tuple[Fraction, Fraction]]] = (
        defaultdict(list)
    )  # (service, server) -> [(size, duration)]
    for r in comp:
        ratio_records[(r.service, r.server)].append((r.size, r.duration))
    ratio: Dict[Tuple[str, str], Fraction] = {}
    for key, pairs in ratio_records.items():
        ratio[key] = _estimate(
            [d / s for s, d in pairs], estimator, lo_q, hi_q
        ).nominal

    services = sorted({svc for svc, _ in ratio})
    servers = sorted({srv for _, srv in ratio})
    zero_cost = {
        svc
        for svc in services
        if all(ratio[(s, u)] == 0 for (s, u) in ratio if s == svc)
    }
    # Adjacency over informative (nonzero) edges only — a zero-cost
    # service runs in zero time on every server and constrains nothing.
    adj: Dict[str, List[str]] = defaultdict(list)
    for (svc, srv), m in ratio.items():
        if m != 0 and svc not in zero_cost:
            adj[f"f:{svc}"].append(f"u:{srv}")
            adj[f"u:{srv}"].append(f"f:{svc}")

    cost_hat: Dict[str, Fraction] = {svc: ZERO for svc in zero_cost}
    speed_hat: Dict[str, Fraction] = {}
    seen: set = set()
    for srv in servers:
        node = f"u:{srv}"
        if node in seen or node not in adj:
            continue
        # Collect this component.
        component = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for peer in adj[current]:
                if peer not in component:
                    component.add(peer)
                    frontier.append(peer)
        seen |= component
        comp_servers = sorted(n[2:] for n in component if n.startswith("u:"))
        anchored = [u for u in comp_servers if u in known]
        if anchored:
            for u in anchored:
                speed_hat[u] = known[u]
        elif gauge is not None and gauge in comp_servers:
            speed_hat[gauge] = ONE
        else:
            speed_hat[comp_servers[0]] = ONE
        # BFS propagation from the anchors.
        frontier = [f"u:{u}" for u in comp_servers if u in speed_hat]
        visited = set(frontier)
        while frontier:
            current = frontier.pop(0)
            for peer in adj[current]:
                if peer in visited:
                    continue
                visited.add(peer)
                if peer.startswith("f:"):
                    svc, srv = peer[2:], current[2:]
                    cost_hat[svc] = speed_hat[srv] * ratio[(svc, srv)]
                else:
                    svc, srv = current[2:], peer[2:]
                    speed_hat[srv] = cost_hat[svc] / ratio[(svc, srv)]
                frontier.append(peer)
        # Alternating-median refinement (gauge re-normalised per round).
        anchor = anchored[0] if anchored else (
            gauge if gauge in comp_servers else comp_servers[0]
        )
        anchor_speed = speed_hat[anchor]
        comp_services = sorted(
            n[2:] for n in component if n.startswith("f:")
        )
        for _ in range(_REFINE_ROUNDS):
            new_costs = {}
            for svc in comp_services:
                samples = [
                    d * speed_hat[srv] / s
                    for (s2, srv), pairs in ratio_records.items()
                    if s2 == svc and srv in speed_hat
                    for (s, d) in pairs
                ]
                new_costs[svc] = _estimate(samples, estimator, lo_q, hi_q).nominal
            new_speeds = {}
            for srv in comp_servers:
                if srv in anchored:
                    new_speeds[srv] = known[srv]
                    continue
                samples = [
                    new_costs[svc] * s / d
                    for (svc, srv2), pairs in ratio_records.items()
                    if srv2 == srv and svc in new_costs and new_costs[svc] > 0
                    for (s, d) in pairs
                    if d > 0
                ]
                new_speeds[srv] = (
                    _estimate(samples, estimator, lo_q, hi_q).nominal
                    if samples
                    else speed_hat[srv]
                )
            if not anchored and new_speeds.get(anchor):
                factor = anchor_speed / new_speeds[anchor]
                new_speeds = {u: v * factor for u, v in new_speeds.items()}
                new_costs = {f: v * factor for f, v in new_costs.items()}
            converged = all(
                new_costs[svc] == cost_hat.get(svc) for svc in comp_services
            ) and all(
                new_speeds[srv] == speed_hat.get(srv) for srv in comp_servers
            )
            cost_hat.update(new_costs)
            speed_hat.update(new_speeds)
            if converged:
                break

    unseen_servers = sorted(
        {r.server for r in comp} - set(speed_hat)
    )
    for srv in unseen_servers:
        warnings.append(
            f"server {srv!r}: only zero-cost computations observed; "
            f"speed not identifiable (assume 1)"
        )
        speed_hat[srv] = ONE
    # Per-parameter sample sets for the uncertainty intervals.
    costs: Dict[str, UncertainValue] = {}
    for svc in sorted({s for s, _ in ratio}):
        samples = [
            d * speed_hat[srv] / s
            for (s2, srv), pairs in ratio_records.items()
            if s2 == svc
            for (s, d) in pairs
        ]
        costs[svc] = _estimate(samples, estimator, lo_q, hi_q)
        if svc in cost_hat:
            uv = costs[svc]
            costs[svc] = UncertainValue(
                cost_hat[svc],
                min(uv.lo, cost_hat[svc]),
                max(uv.hi, cost_hat[svc]),
                uv.samples,
            )
    speeds: Dict[str, UncertainValue] = {}
    for srv in sorted(speed_hat):
        samples = [
            cost_hat[svc] * s / d
            for (svc, srv2), pairs in ratio_records.items()
            if srv2 == srv and cost_hat.get(svc, ZERO) > 0
            for (s, d) in pairs
            if d > 0
        ]
        if samples:
            uv = _estimate(samples, estimator, lo_q, hi_q)
            speeds[srv] = UncertainValue(
                speed_hat[srv],
                min(uv.lo, speed_hat[srv]),
                max(uv.hi, speed_hat[srv]),
                uv.samples,
            )
        else:
            speeds[srv] = UncertainValue.point(speed_hat[srv])

    # -- residual diagnostics -------------------------------------------------
    residuals: Dict[str, Fraction] = {}
    worst_comp = ZERO
    for r in comp:
        predicted = r.size * costs[r.service].nominal / speeds[r.server].nominal
        if predicted > 0:
            worst_comp = max(worst_comp, abs(r.duration - predicted) / predicted)
        elif r.duration > 0:
            worst_comp = max(worst_comp, ONE)
    residuals["comp"] = worst_comp
    worst_comm = ZERO
    for r in comm:
        if r.duration <= 0 or not (r.src_server and r.dst_server):
            continue
        if r.src_server in _WORLD or r.dst_server in _WORLD:
            bw = default_bandwidth.nominal
        elif r.src_server == r.dst_server:
            continue
        else:
            bw = bandwidths[_pair(r.src_server, r.dst_server)].nominal
        predicted = r.size / bw
        if predicted > 0:
            worst_comm = max(worst_comm, abs(r.duration - predicted) / predicted)
    residuals["comm"] = worst_comm

    edges = tuple(sorted({
        (r.src, r.dst)
        for r in comm
        if r.src not in _WORLD and r.dst not in _WORLD
    }))
    return CalibrationResult(
        costs=costs,
        selectivities=dict(sorted(selectivities.items())),
        speeds=speeds,
        bandwidths=dict(sorted(bandwidths.items())),
        default_bandwidth=default_bandwidth,
        edges=edges,
        n_records=len(records),
        residuals=residuals,
        warnings=warnings,
    )


__all__ = ["CalibrationResult", "fit_trace"]
