"""Calibration: fit the cost model from measured traces.

The planner consumes service costs ``c_i``, selectivities ``σ_i``,
server speeds ``s_u`` and link bandwidths ``b_{u,v}`` as given
constants; a deployment only ever *measures* them.  This package closes
that gap:

* :mod:`repro.calibrate.records` — the measurement currency: timestamped
  per-operation :class:`TraceRecord` rows (CSV round-trip), plus
  observers that produce them from the runtime simulators
  (:func:`records_from_policy`, :func:`records_from_plan`) or from the
  ground-truth cost model with controlled noise
  (:func:`synthetic_records`);
* :mod:`repro.calibrate.fit` — quantile/least-squares estimators that
  turn a trace into :class:`~repro.core.UncertainValue` parameters with
  residual diagnostics (:func:`fit_trace` → :class:`CalibrationResult`),
  ready to rebuild a fitted :class:`~repro.core.Application` /
  :class:`~repro.core.Platform` or seed a
  :class:`~repro.robust.RobustSpec`.

Exposed on the command line as ``python -m repro calibrate``.
"""

from .records import (
    CSV_COLUMNS,
    CalibrationTrace,
    TraceRecord,
    records_from_plan,
    records_from_policy,
    synthetic_records,
)
from .fit import CalibrationResult, fit_trace

__all__ = [
    "CSV_COLUMNS",
    "CalibrationResult",
    "CalibrationTrace",
    "TraceRecord",
    "fit_trace",
    "records_from_plan",
    "records_from_policy",
    "synthetic_records",
]
