"""Anytime portfolio search: race solver configurations under a deadline.

The individual solvers trade quality for time very differently — greedy
construction is effectively free, reparenting local search costs
milliseconds, branch and bound proves optimality but may need seconds —
and which one wins on a given instance is hard to predict.  The portfolio
runs a fixed roster of *racers* against one shared incumbent under a
wall-clock budget:

1. **greedy** always runs first, in-process and unconditionally, so any
   deadline — including one that has already expired — still yields a
   valid plan (the anytime guarantee);
2. the **primary** racer (the method the caller asked for, resolved to a
   deadline-capable search);
3. **seeded local searches** restarting from pseudo-random forests
   (:func:`random_forest` with fixed seeds — deterministic);
4. **branch and bound** last, warm-started from the best incumbent so
   far and handed the remaining budget via its ``deadline`` knob.

**Winner rule (deterministic):** the incumbent only updates on a strict
improvement and racers run in the fixed priority order above, so among
equal-valued results the *earliest* racer wins.  With fixed seeds the
outcome is a pure function of the instance and the roster — the deadline
can only truncate the tail of the roster, never reorder it.

``workers > 0`` races the post-greedy roster in parallel OS processes
(each worker re-derives its objective in a private cache; the greedy
incumbent computed before the fork is the shared warm start).  Results
are still arbitrated by ``(value, priority)``, so a fully-completed
parallel run matches the serial one; a deadline may truncate different
racers than serial execution would, which is the documented
nondeterminism of the process mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import Application, CommModel, Exactness, ExecutionGraph
from .branch_and_bound import MAX_BB_LATENCY_SERVICES, bb_minlatency, bb_minperiod
from .evaluation import Effort, make_forest_period_batch
from .greedy import greedy_forest
from .incremental import period_delta
from .local_search import local_search_forest

Incumbent = Tuple[Fraction, ExecutionGraph]

#: Racers other than branch and bound finish in bounded time on their
#: own; B&B without a deadline is bounded by this node budget instead, so
#: an undeadlined portfolio solve always terminates.
DEFAULT_BB_NODE_LIMIT = 20_000


@dataclass
class Racer:
    """One portfolio entrant.

    *run* receives ``(remaining_seconds_or_None, incumbent_or_None)`` and
    returns ``(value, graph, extras)``; it must honour the remaining
    budget on a best-effort basis (greedy and local search simply finish —
    they are fast; branch and bound cuts off via its ``deadline``).
    """

    name: str
    run: Callable[
        [Optional[float], Optional[Incumbent]],
        Tuple[Fraction, ExecutionGraph, Dict[str, Any]],
    ]


@dataclass
class PortfolioOutcome:
    """What :func:`run_portfolio` learned.

    ``trajectory`` records every incumbent improvement as
    ``(elapsed_seconds, value, racer_name)``; ``budget_exhausted`` is
    ``True`` when the deadline truncated the roster or a racer reported
    stopping on its own limit (the result is then the best incumbent, not
    a proved optimum).
    """

    value: Fraction
    graph: ExecutionGraph
    trajectory: List[Tuple[float, Fraction, str]] = field(default_factory=list)
    budget_exhausted: bool = False
    racers: List[Dict[str, Any]] = field(default_factory=list)


def random_forest(app: Application, rng: Random) -> ExecutionGraph:
    """A pseudo-random forest over *app* (acyclic by construction).

    Services are shuffled and each picks a parent uniformly among the
    already-placed ones (or roothood), so every forest shape is reachable
    and the result is a pure function of the RNG state — the portfolio's
    deterministic restart seeds.
    """
    names = list(app.names)
    order = names[:]
    rng.shuffle(order)
    parents: Dict[str, Optional[str]] = {}
    placed: List[str] = []
    for name in order:
        choices: List[Optional[str]] = [None] + placed
        parents[name] = choices[rng.randrange(len(choices))]
        placed.append(name)
    return ExecutionGraph.from_parents(app, parents)


def run_portfolio(
    racers: List[Racer],
    *,
    deadline: Optional[float] = None,
) -> PortfolioOutcome:
    """Run *racers* serially against a shared incumbent and wall budget.

    The first racer always runs (the anytime guarantee); later racers are
    skipped once the budget is spent.  Each racer receives the remaining
    budget and the current incumbent — deadline-capable searches warm-start
    from it and stop in time.
    """
    if not racers:
        raise ValueError("a portfolio needs at least one racer")
    started = time.monotonic()
    deadline_at = None if deadline is None else started + deadline
    best: Optional[Incumbent] = None
    trajectory: List[Tuple[float, Fraction, str]] = []
    ran: List[Dict[str, Any]] = []
    exhausted = False
    for i, racer in enumerate(racers):
        if i > 0 and deadline_at is not None and time.monotonic() >= deadline_at:
            exhausted = True
            break
        remaining = (
            None if deadline_at is None
            else max(0.0, deadline_at - time.monotonic())
        )
        value, graph, extras = racer.run(remaining, best)
        ran.append({"racer": racer.name, "value": value, **extras})
        if extras.get("limit_hit"):
            exhausted = True
        if best is None or value < best[0]:
            best = (value, graph)
            trajectory.append((time.monotonic() - started, value, racer.name))
    assert best is not None  # racer 0 always ran
    return PortfolioOutcome(
        value=best[0],
        graph=best[1],
        trajectory=trajectory,
        budget_exhausted=exhausted,
        racers=ran,
    )


def _local_search_run(
    app: Application,
    objective_fn,
    seed_graph: ExecutionGraph,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    max_moves: int,
) -> Tuple[Fraction, ExecutionGraph, Dict[str, Any]]:
    """One local-search racer body (delta / batched gate as the solver)."""
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    delta = None
    if objective == "period":
        delta = period_delta(
            seed_graph, model, effort, platform, mapping, exactness=exactness
        )
    batch = None
    if delta is None and objective == "period" and exactness.uses_float:
        batch = make_forest_period_batch(app, model, effort, platform, mapping)
    value, graph = local_search_forest(
        seed_graph, objective_fn, max_moves=max_moves, delta=delta, batch=batch
    )
    if delta is not None:
        value = objective_fn(graph)
    return value, graph, {}


def _bb_run(
    app: Application,
    objective_fn,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    remaining: Optional[float],
    incumbent: Optional[Incumbent],
    node_limit: Optional[int],
) -> Tuple[Fraction, ExecutionGraph, Dict[str, Any]]:
    """The branch-and-bound racer body: deadline-aware, incumbent-seeded."""
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    if remaining is None and node_limit is None:
        node_limit = DEFAULT_BB_NODE_LIMIT
    if objective == "period":
        fb = None
        if exactness is Exactness.CERTIFIED:
            fb = make_forest_period_batch(app, model, effort, platform, mapping)
        value, graph, stats = bb_minperiod(
            app, objective_fn, model=model, platform=platform, mapping=mapping,
            incumbent=incumbent, node_limit=node_limit, deadline=remaining,
            leaf_batch=fb, exactness=exactness,
        )
    else:
        value, graph, stats = bb_minlatency(
            app, objective_fn, model=model, platform=platform, mapping=mapping,
            incumbent=incumbent, node_limit=node_limit, deadline=remaining,
            exactness=exactness,
        )
    return value, graph, {
        "limit_hit": stats.limit_hit,
        "expanded": stats.expanded,
        "evaluated": stats.evaluated,
    }


def build_racers(
    app: Application,
    objective_fn,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    primary: str = "auto",
    seeds: int = 2,
    seed_base: int = 17,
    max_moves: int = 200,
    node_limit: Optional[int] = None,
) -> List[Racer]:
    """The portfolio roster, in priority order (see the module docstring).

    *primary* is the method the caller originally asked for:
    ``"branch-and-bound"``, ``"exhaustive"`` and ``"auto"`` all resolve to
    the deadline-capable branch and bound (same optimum when it
    completes), which then runs right after greedy; any other name leaves
    local search as the second racer.  *seeds* adds that many
    pseudo-random restarts (``seed_base + k``).
    """
    bb_ok = objective == "period" or len(app) <= MAX_BB_LATENCY_SERVICES
    bb_primary = bb_ok and primary in ("auto", "branch-and-bound", "exhaustive")

    def greedy_run(_remaining, _incumbent):
        value, graph = greedy_forest(app, objective_fn)
        return value, graph, {}

    def ls_run_from(seed_graph):
        def run(_remaining, _incumbent):
            return _local_search_run(
                app, objective_fn, seed_graph,
                objective=objective, model=model, effort=effort,
                max_moves=max_moves,
            )
        return run

    def seeded_ls_run(seed):
        def run(_remaining, _incumbent):
            seed_graph = random_forest(app, Random(seed))
            return _local_search_run(
                app, objective_fn, seed_graph,
                objective=objective, model=model, effort=effort,
                max_moves=max_moves,
            )
        return run

    def bb_run(remaining, incumbent):
        return _bb_run(
            app, objective_fn, objective=objective, model=model, effort=effort,
            remaining=remaining, incumbent=incumbent, node_limit=node_limit,
        )

    racers: List[Racer] = [Racer("greedy", greedy_run)]

    def ls_racer() -> Racer:
        def run(_remaining, _incumbent):
            _, seed_graph = greedy_forest(app, objective_fn)
            return _local_search_run(
                app, objective_fn, seed_graph,
                objective=objective, model=model, effort=effort,
                max_moves=max_moves,
            )
        return Racer("local-search", run)

    if bb_primary:
        racers.append(Racer("branch-and-bound", bb_run))
        racers.append(ls_racer())
    else:
        racers.append(ls_racer())
    for k in range(seeds):
        racers.append(
            Racer(f"local-search[seed={seed_base + k}]",
                  seeded_ls_run(seed_base + k))
        )
    if bb_ok and not bb_primary:
        racers.append(Racer("branch-and-bound", bb_run))
    return racers


# ---------------------------------------------------------------------------
# Process-parallel mode
# ---------------------------------------------------------------------------

def _racer_worker(payload):
    """Run one racer spec in a worker process (module-level: picklable).

    The worker re-derives its objective in a private
    :class:`~repro.planner.cache.EvaluationCache` — caches are per-process,
    the shared state is only the greedy incumbent computed before the
    fork.  Never raises: failures come back as ``("error", ...)`` so one
    broken racer cannot void the anytime contract.
    """
    (
        app, objective, model, effort, platform, mapping, exactness,
        incumbent, name, spec, params,
    ) = payload
    try:
        from ..planner.cache import EvaluationCache

        objective_fn = EvaluationCache().objective(
            objective, model, effort, platform, mapping, exactness
        )
        if spec == "local-search":
            seed = params.get("seed")
            if seed is None:
                _, seed_graph = greedy_forest(app, objective_fn)
            else:
                seed_graph = random_forest(app, Random(seed))
            value, graph, extras = _local_search_run(
                app, objective_fn, seed_graph,
                objective=objective, model=model, effort=effort,
                max_moves=params.get("max_moves", 200),
            )
        elif spec == "branch-and-bound":
            value, graph, extras = _bb_run(
                app, objective_fn, objective=objective, model=model,
                effort=effort, remaining=params.get("deadline"),
                incumbent=incumbent, node_limit=params.get("node_limit"),
            )
        else:
            return name, None, None, {"error": f"unknown racer spec {spec!r}"}
        return name, value, graph, extras
    except Exception as exc:  # pragma: no cover - defensive
        return name, None, None, {"error": repr(exc)}


def _parallel_specs(
    app: Application,
    *,
    objective: str,
    primary: str,
    seeds: int,
    seed_base: int,
    max_moves: int,
    node_limit: Optional[int],
    remaining: Optional[float],
) -> List[Tuple[str, str, Dict[str, Any]]]:
    """Picklable ``(name, spec, params)`` roster mirroring :func:`build_racers`
    minus the in-process greedy leg."""
    bb_ok = objective == "period" or len(app) <= MAX_BB_LATENCY_SERVICES
    bb_primary = bb_ok and primary in ("auto", "branch-and-bound", "exhaustive")
    bb_params: Dict[str, Any] = {"node_limit": node_limit, "deadline": remaining}
    specs: List[Tuple[str, str, Dict[str, Any]]] = []
    if bb_primary:
        specs.append(("branch-and-bound", "branch-and-bound", bb_params))
    specs.append(("local-search", "local-search", {"max_moves": max_moves}))
    for k in range(seeds):
        specs.append(
            (f"local-search[seed={seed_base + k}]", "local-search",
             {"seed": seed_base + k, "max_moves": max_moves})
        )
    if bb_ok and not bb_primary:
        specs.append(("branch-and-bound", "branch-and-bound", bb_params))
    return specs


def _run_parallel(
    app: Application,
    objective_fn,
    incumbent: Incumbent,
    specs: List[Tuple[str, str, Dict[str, Any]]],
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    workers: int,
    deadline_at: Optional[float],
    started: float,
) -> Tuple[Optional[Incumbent], List[Tuple[float, Fraction, str]],
           List[Dict[str, Any]], bool]:
    """Race *specs* in OS processes; returns ``(best, trajectory, ran,
    exhausted)`` relative to the greedy *incumbent*."""
    import multiprocessing

    platform = getattr(objective_fn, "platform", None)
    mapping = getattr(objective_fn, "mapping", None)
    exactness = getattr(objective_fn, "exactness", Exactness.EXACT)
    payloads = [
        (app, objective, model, effort, platform, mapping, exactness,
         incumbent, name, spec, params)
        for name, spec, params in specs
    ]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        ctx = multiprocessing.get_context()
    best: Optional[Incumbent] = incumbent
    trajectory: List[Tuple[float, Fraction, str]] = []
    ran: List[Dict[str, Any]] = []
    exhausted = False
    pool = ctx.Pool(processes=workers)
    try:
        handles = [
            (name, pool.apply_async(_racer_worker, (payload,)))
            for (name, _s, _p), payload in zip(specs, payloads)
        ]
        # Collect in priority order so ties keep the earliest racer —
        # the serial winner rule.
        for name, handle in handles:
            timeout = (
                None if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
            try:
                got_name, value, graph, extras = handle.get(timeout=timeout)
            except multiprocessing.TimeoutError:
                exhausted = True
                ran.append({"racer": name, "skipped": "deadline"})
                continue
            if value is None:
                ran.append({"racer": got_name, **extras})
                continue
            ran.append({"racer": got_name, "value": value, **extras})
            if extras.get("limit_hit"):
                exhausted = True
            if best is None or value < best[0]:
                best = (value, graph)
                trajectory.append(
                    (time.monotonic() - started, value, got_name)
                )
    finally:
        pool.terminate()
        pool.join()
    return best, trajectory, ran, exhausted


def portfolio_search(
    app: Application,
    objective_fn,
    *,
    objective: str,
    model: CommModel,
    effort: Effort,
    deadline: Optional[float] = None,
    primary: str = "auto",
    seeds: int = 2,
    seed_base: int = 17,
    max_moves: int = 200,
    node_limit: Optional[int] = None,
    workers: int = 0,
) -> PortfolioOutcome:
    """The full portfolio solve (see the module docstring).

    Serial by default; ``workers > 0`` forks that many racer processes
    after the in-process greedy warm start.  A failure to fork (or any
    process-mode error) falls back to the serial roster — the anytime
    contract never surfaces an exception.
    """
    if workers <= 0:
        racers = build_racers(
            app, objective_fn, objective=objective, model=model, effort=effort,
            primary=primary, seeds=seeds, seed_base=seed_base,
            max_moves=max_moves, node_limit=node_limit,
        )
        return run_portfolio(racers, deadline=deadline)

    started = time.monotonic()
    deadline_at = None if deadline is None else started + deadline
    value, graph = greedy_forest(app, objective_fn)
    best: Incumbent = (value, graph)
    trajectory: List[Tuple[float, Fraction, str]] = [(
        time.monotonic() - started, value, "greedy"
    )]
    ran: List[Dict[str, Any]] = [{"racer": "greedy", "value": value}]
    remaining = (
        None if deadline_at is None
        else max(0.0, deadline_at - time.monotonic())
    )
    specs = _parallel_specs(
        app, objective=objective, primary=primary, seeds=seeds,
        seed_base=seed_base, max_moves=max_moves, node_limit=node_limit,
        remaining=remaining,
    )
    try:
        best2, traj2, ran2, exhausted = _run_parallel(
            app, objective_fn, best, specs,
            objective=objective, model=model, effort=effort,
            workers=workers, deadline_at=deadline_at, started=started,
        )
    except Exception:
        # Process mode unavailable (sandboxing, pickling, ...): serial
        # fallback minus the greedy leg already run.
        racers = build_racers(
            app, objective_fn, objective=objective, model=model, effort=effort,
            primary=primary, seeds=seeds, seed_base=seed_base,
            max_moves=max_moves, node_limit=node_limit,
        )[1:]
        outcome = run_portfolio(
            [Racer("incumbent", lambda _r, _i: (best[0], best[1], {}))] + racers,
            deadline=remaining,
        )
        outcome.trajectory = trajectory + [
            (t, v, n) for t, v, n in outcome.trajectory if n != "incumbent"
        ]
        outcome.racers = ran + [
            r for r in outcome.racers if r.get("racer") != "incumbent"
        ]
        return outcome
    if best2 is not None:
        best = best2
    return PortfolioOutcome(
        value=best[0],
        graph=best[1],
        trajectory=trajectory + traj2,
        budget_exhausted=exhausted,
        racers=ran + ran2,
    )


__all__ = [
    "DEFAULT_BB_NODE_LIMIT",
    "PortfolioOutcome",
    "Racer",
    "build_racers",
    "portfolio_search",
    "random_forest",
    "run_portfolio",
]
