"""Exhaustive search over execution graphs (exact references, small n).

Both MinPeriod and MinLatency are NP-hard in the full generality of the
paper (Theorems 2 and 4); these enumerations are the exact references the
heuristics and reductions are tested against.

* :func:`iter_forests` — all forests, via parent maps (``(n+1)^n`` with
  cycle filtering).  Proposition 4 guarantees some optimal MinPeriod plan
  is a forest when there are no precedence constraints.
* :func:`iter_dags` — all DAGs (deduplicated), for very small ``n``; used
  to verify Proposition 4 empirically and for latency where optimal plans
  need not be forests.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core import Application, CommModel, ExecutionGraph
from .evaluation import Effort, latency_objective, period_objective


def iter_forests(app: Application) -> Iterator[ExecutionGraph]:
    """All forest execution graphs of *app* (no precedence constraints)."""
    if app.precedence:
        raise ValueError("forest enumeration assumes no precedence constraints")
    names = list(app.names)
    n = len(names)
    choices = [[None] + [p for p in names if p != child] for child in names]
    for combo in itertools.product(*choices):
        parents: Dict[str, Optional[str]] = dict(zip(names, combo))
        # reject parent cycles (follow pointers with a step bound)
        ok = True
        for start in names:
            node, steps = start, 0
            while node is not None:
                node = parents[node]
                steps += 1
                if steps > n:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            yield ExecutionGraph.from_parents(app, parents)


def iter_dags(app: Application) -> Iterator[ExecutionGraph]:
    """All DAG execution graphs of *app*, deduplicated (tiny n only)."""
    names = list(app.names)
    n = len(names)
    if n > 5:
        raise ValueError(f"DAG enumeration is unreasonable for n={n} > 5")
    seen = set()
    for perm in itertools.permutations(names):
        # predecessors of perm[j] are any subset of perm[:j]
        subset_lists = []
        for j in range(n):
            preds = perm[:j]
            subset_lists.append(
                list(
                    itertools.chain.from_iterable(
                        itertools.combinations(preds, k) for k in range(j + 1)
                    )
                )
            )
        for combo in itertools.product(*subset_lists):
            edges = frozenset(
                (p, perm[j]) for j in range(n) for p in combo[j]
            )
            if edges in seen:
                continue
            seen.add(edges)
            graph = ExecutionGraph(app, edges, check_precedence=False)
            if app.precedence:
                try:
                    graph._check_precedence()
                except Exception:
                    continue
            yield graph


def _search(
    graphs: Iterable[ExecutionGraph],
    objective,
) -> Tuple[Fraction, ExecutionGraph]:
    best_val: Optional[Fraction] = None
    best_graph: Optional[ExecutionGraph] = None
    for graph in graphs:
        val = objective(graph)
        if best_val is None or val < best_val:
            best_val, best_graph = val, graph
    if best_graph is None:
        raise ValueError("no candidate execution graph")
    return best_val, best_graph


def exhaustive_minperiod(
    app: Application,
    model: CommModel,
    *,
    forests_only: bool = True,
    effort: Effort = Effort.EXACT,
) -> Tuple[Fraction, ExecutionGraph]:
    """Exact MinPeriod by enumeration (forests by default — Prop 4)."""
    graphs = iter_forests(app) if forests_only else iter_dags(app)
    return _search(graphs, lambda g: period_objective(g, model, effort))


def exhaustive_minlatency(
    app: Application,
    model: CommModel,
    *,
    forests_only: bool = False,
    effort: Effort = Effort.EXACT,
) -> Tuple[Fraction, ExecutionGraph]:
    """Exact MinLatency by enumeration.

    Optimal latency plans are *not* always forests (the Prop-13 gadget is a
    fork-join), so the default enumerates DAGs; ``forests_only=True`` gives
    the Proposition-17 restricted problem.
    """
    graphs = iter_forests(app) if forests_only else iter_dags(app)
    return _search(graphs, lambda g: latency_objective(g, model, effort))


__all__ = [
    "exhaustive_minlatency",
    "exhaustive_minperiod",
    "iter_dags",
    "iter_forests",
]
