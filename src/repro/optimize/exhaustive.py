"""Exhaustive search over execution graphs (exact references, small n).

Both MinPeriod and MinLatency are NP-hard in the full generality of the
paper (Theorems 2 and 4); these enumerations are the exact references the
heuristics and reductions are tested against.

* :func:`iter_forests` — all forests, via parent maps (``(n+1)^n`` with
  cycle filtering).  Proposition 4 guarantees some optimal MinPeriod plan
  is a forest when there are no precedence constraints.
* :func:`iter_dags` — all DAGs (deduplicated), for very small ``n``; used
  to verify Proposition 4 empirically and for latency where optimal plans
  need not be forests.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core import Application, CommModel, ExecutionGraph, certified_threshold
from .evaluation import Effort, latency_objective, period_objective

#: :func:`iter_dags` refuses applications larger than this (the DAG space
#: explodes combinatorially); auto-selection thresholds derive from it.
MAX_DAG_SERVICES = 5


def iter_forests(app: Application) -> Iterator[ExecutionGraph]:
    """All forest execution graphs of *app* (no precedence constraints).

    Example (two services: both independent, A->B, B->A)::

        >>> from repro import make_application
        >>> app = make_application([("A", 1, 1), ("B", 1, 1)])
        >>> sum(1 for _ in iter_forests(app))
        3
    """
    if app.precedence:
        raise ValueError("forest enumeration assumes no precedence constraints")
    names = list(app.names)
    n = len(names)
    choices = [[None] + [p for p in names if p != child] for child in names]
    for combo in itertools.product(*choices):
        parents: Dict[str, Optional[str]] = dict(zip(names, combo))
        # reject parent cycles (follow pointers with a step bound)
        ok = True
        for start in names:
            node, steps = start, 0
            while node is not None:
                node = parents[node]
                steps += 1
                if steps > n:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            yield ExecutionGraph.from_parents(app, parents)


def iter_dags(app: Application) -> Iterator[ExecutionGraph]:
    """All DAG execution graphs of *app*, deduplicated (tiny n only).

    Example (the 3 labelled 2-node DAGs: empty, A->B, B->A)::

        >>> from repro import make_application
        >>> app = make_application([("A", 1, 1), ("B", 1, 1)])
        >>> sum(1 for _ in iter_dags(app))
        3
    """
    names = list(app.names)
    n = len(names)
    if n > MAX_DAG_SERVICES:
        raise ValueError(
            f"DAG enumeration is unreasonable for n={n} > {MAX_DAG_SERVICES}"
        )
    seen = set()
    for perm in itertools.permutations(names):
        # predecessors of perm[j] are any subset of perm[:j]
        subset_lists = []
        for j in range(n):
            preds = perm[:j]
            subset_lists.append(
                list(
                    itertools.chain.from_iterable(
                        itertools.combinations(preds, k) for k in range(j + 1)
                    )
                )
            )
        for combo in itertools.product(*subset_lists):
            edges = frozenset(
                (p, perm[j]) for j in range(n) for p in combo[j]
            )
            if edges in seen:
                continue
            seen.add(edges)
            graph = ExecutionGraph(app, edges, check_precedence=False)
            if app.precedence:
                try:
                    graph._check_precedence()
                except Exception:
                    continue
            yield graph


def scan_best(
    graphs: Iterable[ExecutionGraph],
    objective,
    *,
    fast_objective: Optional[
        Callable[[ExecutionGraph], Optional[float]]
    ] = None,
) -> Tuple[Fraction, ExecutionGraph, int]:
    """Scan *graphs*, returning ``(best value, best graph, count scanned)``.

    Shared by the exhaustive searches here and the planner's exhaustive
    solver.  Ties keep the first graph in enumeration order.

    Passing *fast_objective* (a float-tier evaluator, e.g. from
    :func:`~repro.optimize.evaluation.make_fast_period_objective`) turns
    the scan into a **certified** two-tier sweep: each candidate is scored
    on the float kernel first and the exact *objective* is consulted only
    when the float value lands at or under the running best's
    :func:`~repro.core.certified_threshold` — so the result (value, graph
    and tie-breaks) is bit-for-bit the plain scan's, while the vast
    majority of candidates never allocate a Fraction.  A per-graph
    ``None`` from *fast_objective* (no kernel for that graph) falls back
    to exact scoring for that candidate.
    """
    best_val: Optional[Fraction] = None
    best_graph: Optional[ExecutionGraph] = None
    cut: Optional[float] = None
    count = 0
    for graph in graphs:
        count += 1
        if fast_objective is not None and cut is not None:
            fast = fast_objective(graph)
            if fast is not None and fast > cut:
                continue  # provably no better than the incumbent
        val = objective(graph)
        if best_val is None or val < best_val:
            best_val, best_graph = val, graph
            try:
                cut = certified_threshold(float(best_val))
            except OverflowError:
                cut = None  # beyond float range: no gate, exact scoring only
    if best_graph is None or best_val is None:
        raise ValueError("no candidate execution graph")
    return best_val, best_graph, count


def scan_best_forests_batched(
    app: Application,
    objective,
    batch,
    *,
    chunk: int = 512,
) -> Tuple[Fraction, ExecutionGraph, int]:
    """The certified forest scan of :func:`scan_best`, gated in bulk.

    *batch* is a :class:`~repro.core.ForestBatch` for the configuration
    being searched (see
    :func:`~repro.optimize.evaluation.make_forest_period_batch`).  Parent
    vectors are enumerated in :func:`iter_forests` order *chunk* rows at a
    time and priced in one numpy call per chunk; only rows at or under the
    running incumbent's :func:`~repro.core.certified_threshold` are
    materialised as graphs and scored through *objective*.  Because the
    batched floats are bit-for-bit the scalar kernel's, every gate
    decision — and therefore the returned ``(value, graph, count)``
    including tie-breaks — is identical to
    ``scan_best(iter_forests(app), objective, fast_objective=...)``.
    """
    import numpy as np

    if app.precedence:
        raise ValueError("forest enumeration assumes no precedence constraints")
    from ..core.batched import iter_forest_rows

    n = len(app.names)
    best_val: Optional[Fraction] = None
    best_graph: Optional[ExecutionGraph] = None
    cut: Optional[float] = None
    count = 0
    for rows, _base in iter_forest_rows(n, chunk):
        valid, fast = batch.periods(rows)
        count += int(valid.sum())
        if cut is None:
            candidates = np.nonzero(valid)[0]
        else:
            # Chunk-level pre-filter with the cut as of the chunk start: it
            # only ever *keeps* rows the scalar scan would examine (the cut
            # never increases); the loop below re-checks the running cut so
            # the survivor set matches the scalar scan exactly.
            candidates = np.nonzero(valid & ~(fast > cut))[0]
        for r in candidates:
            if cut is not None and fast[r] > cut:
                continue  # provably no better than the incumbent
            graph = batch.decode(rows[r])
            val = objective(graph)
            if best_val is None or val < best_val:
                best_val, best_graph = val, graph
                try:
                    cut = certified_threshold(float(best_val))
                except OverflowError:
                    cut = None  # beyond float range: exact scoring only
    if best_graph is None or best_val is None:
        raise ValueError("no candidate execution graph")
    return best_val, best_graph, count


def exhaustive_minperiod(
    app: Application,
    model: CommModel,
    *,
    forests_only: bool = True,
    effort: Effort = Effort.EXACT,
    certified: bool = False,
) -> Tuple[Fraction, ExecutionGraph]:
    """Exact MinPeriod by enumeration (forests by default — Prop 4).

    ``certified=True`` pre-screens candidates on the float kernel (where
    one covers the configuration) before exact scoring — same result,
    fewer Fraction allocations; see :func:`scan_best`.

    Example (a filter in front of an expensive service halves its load;
    the facade equivalent is ``solve(app, method="exhaustive")``)::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> value, graph = exhaustive_minperiod(app, CommModel.OVERLAP)
        >>> value, sorted(graph.edges)
        (Fraction(4, 1), [('A', 'B')])
    """
    from .evaluation import make_fast_period_objective

    graphs = iter_forests(app) if forests_only else iter_dags(app)
    fast = make_fast_period_objective(model, effort) if certified else None
    value, graph, _ = scan_best(
        graphs, lambda g: period_objective(g, model, effort),
        fast_objective=fast,
    )
    return value, graph


def exhaustive_minlatency(
    app: Application,
    model: CommModel,
    *,
    forests_only: bool = False,
    effort: Effort = Effort.EXACT,
    certified: bool = False,
) -> Tuple[Fraction, ExecutionGraph]:
    """Exact MinLatency by enumeration.

    Optimal latency plans are *not* always forests (the Prop-13 gadget is a
    fork-join), so the default enumerates DAGs; ``forests_only=True`` gives
    the Proposition-17 restricted problem.  ``certified=True`` as in
    :func:`exhaustive_minperiod`.

    Example (serial beats parallel here: filtering pays for the extra hop)::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 1, "1/4"), ("B", 8, 1)])
        >>> value, graph = exhaustive_minlatency(app, CommModel.OVERLAP)
        >>> value, sorted(graph.edges)
        (Fraction(9, 2), [('A', 'B')])
    """
    from .evaluation import make_fast_latency_objective

    graphs = iter_forests(app) if forests_only else iter_dags(app)
    fast = make_fast_latency_objective(model, effort) if certified else None
    value, graph, _ = scan_best(
        graphs, lambda g: latency_objective(g, model, effort),
        fast_objective=fast,
    )
    return value, graph


__all__ = [
    "MAX_DAG_SERVICES",
    "exhaustive_minlatency",
    "exhaustive_minperiod",
    "iter_dags",
    "iter_forests",
    "scan_best",
    "scan_best_forests_batched",
]
