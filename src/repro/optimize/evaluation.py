"""Objective evaluators shared by the optimisers.

The full minimisation problems need a per-graph objective.  Depending on
the model this is exact-and-cheap (OVERLAP period, forest latency), exact
but exponential (one-port orchestration), or an upper bound from a
heuristic scheduler.  The :class:`Effort` knob picks the trade-off so
exhaustive searches stay honest about what they optimise.

On a heterogeneous :class:`~repro.core.Platform` the objectives take two
extra knobs: a *mapping* pins services to servers and evaluates exactly
that placement; ``mapping=None`` additionally optimises the placement
(exhaustive for small instances, greedy + local search beyond — see
:mod:`repro.optimize.placement`), so graph searches transparently become
graph × server-assignment searches.

The :class:`~repro.core.Exactness` knob picks the numeric tier.  ``EXACT``
and ``CERTIFIED`` return bit-for-bit identical exact ``Fraction``s for a
single graph (certification only changes how *searches* use the float
kernel internally); ``FAST`` answers from the
:class:`~repro.core.FloatCosts` flat-array kernel wherever the Section-2.1
bound *is* the objective — OVERLAP period (Theorem 1), the ``BOUND``
effort, shared-server mappings — returning the exact binary image
``Fraction(float_value)``; configurations without a float kernel fall back
to the exact computation.

Callers that already hold a :class:`~repro.core.CostModel` for the same
``(graph, platform, mapping)`` can pass it as ``costs=`` and it is reused
instead of rebuilt — the schedulers accept the same keyword, so one model
now serves a whole evaluation instead of being constructed per layer.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Callable, Optional, Union

from ..core import (
    CommModel,
    CostModel,
    Exactness,
    ExecutionGraph,
    FloatCosts,
    Mapping,
    Platform,
)
from ..scheduling.inorder import (
    exact_inorder_period,
    greedy_orders,
    inorder_period_for_orders,
    order_space_size,
)
from ..scheduling.latency import (
    exact_oneport_latency,
    oneport_latency_schedule,
    overlap_latency_layered,
    tree_latency,
)
from ..scheduling.outorder import outorder_schedule


class Effort(enum.Enum):
    """How hard evaluators work: a bound, a heuristic, or exact search."""

    BOUND = "bound"
    HEURISTIC = "heuristic"
    EXACT = "exact"


def _normalise(
    platform: Optional[Platform], mapping: Optional[Mapping]
) -> "tuple[Optional[Platform], Optional[Mapping]]":
    """Unit platforms evaluate exactly like ``platform=None`` — collapse them.

    This keeps the fast normalised code path (and shared cache entries) for
    ``Platform.homogeneous(n)``, the paper's platform.  A shared
    (non-injective) mapping is *never* collapsed: co-location zeroes
    intra-server communications and aggregates per-server loads even when
    every speed and bandwidth is 1.
    """
    if (
        platform is not None
        and platform.is_unit
        and (mapping is None or mapping.is_injective)
    ):
        return None, None
    return platform, mapping


def fast_period_value(
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[float]:
    """Float-tier period value, or ``None`` when no float kernel applies.

    One-shot form of :func:`make_fast_period_objective` — that factory is
    the single source of truth for which configurations the kernel
    covers.
    """
    fast = make_fast_period_objective(model, effort, platform, mapping)
    return fast(graph) if fast is not None else None


def fast_latency_value(
    graph: ExecutionGraph,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[float]:
    """Float-tier latency value, or ``None`` when no float kernel applies.

    One-shot form of :func:`make_fast_latency_objective` — that factory
    is the single source of truth for which configurations the kernel
    covers.
    """
    fast = make_fast_latency_objective(effort, platform, mapping)
    return fast(graph) if fast is not None else None


def period_objective(
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    *,
    costs: Optional[CostModel] = None,
    exactness: Union[str, Exactness] = Exactness.EXACT,
) -> Fraction:
    """Period of the best known operation list for *graph* under *model*.

    * OVERLAP: always exact (Theorem 1 — the bound is achievable, on any
      platform).
    * INORDER: ``BOUND`` returns ``max_k Cexec``; ``HEURISTIC`` uses greedy
      orders + MCR (achievable); ``EXACT`` enumerates orders when feasible.
    * OUTORDER: ``BOUND`` as above; otherwise the repair scheduler's value
      (achievable, certified when it meets the bound).

    With a non-unit *platform* and ``mapping=None`` the value is the best
    over server assignments (the placement optimiser of
    :mod:`repro.optimize.placement`).

    *costs* reuses a caller-built :class:`~repro.core.CostModel` for the
    same configuration; *exactness* picks the numeric tier (``FAST``
    answers from the float kernel where one exists — see the module
    docstring).

    The Section 2.3 instance shows the INORDER bound/exact gap::

        >>> from repro.core import CommModel
        >>> from repro.workloads import fig1_example
        >>> graph = fig1_example().graph
        >>> period_objective(graph, CommModel.INORDER, Effort.BOUND)
        Fraction(7, 1)
        >>> period_objective(graph, CommModel.INORDER, Effort.EXACT)
        Fraction(23, 3)

    The planner memoizes this function through
    :class:`repro.planner.EvaluationCache`.
    """
    exactness = Exactness.coerce(exactness)
    platform, mapping = _normalise(platform, mapping)
    if exactness is Exactness.FAST:
        fast = fast_period_value(graph, model, effort, platform, mapping)
        if fast is not None:
            return Fraction(fast)
    if platform is not None and mapping is None:
        from .placement import optimize_mapping

        value, _ = optimize_mapping(
            graph, "period", model, effort, platform, exactness=exactness
        )
        return value
    if costs is None:
        costs = CostModel(graph, platform, mapping)
    if model is CommModel.OVERLAP:
        return costs.period_lower_bound(model)
    if effort is Effort.BOUND:
        return costs.period_lower_bound(model)
    if mapping is not None and not mapping.is_injective:
        # Shared servers: the one-port orchestration schedulers assume one
        # service per server; the aggregated steady-state bound is the
        # analytic readout of the concurrent regime.
        return costs.period_lower_bound(model)
    if model is CommModel.INORDER:
        if effort is Effort.EXACT and order_space_size(graph) <= 50_000:
            lam, _ = exact_inorder_period(
                graph, max_configs=50_000, platform=platform, mapping=mapping
            )
            return lam
        return inorder_period_for_orders(
            graph,
            greedy_orders(graph, platform=platform, mapping=mapping, costs=costs),
            platform=platform,
            mapping=mapping,
        )
    # OUTORDER
    return outorder_schedule(
        graph, platform=platform, mapping=mapping, costs=costs
    ).period


def latency_objective(
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    *,
    costs: Optional[CostModel] = None,
    exactness: Union[str, Exactness] = Exactness.EXACT,
) -> Fraction:
    """Latency of the best known operation list for *graph* under *model*.

    Forests are exact for every effort level (Algorithm 1 / Prop 12, which
    generalises to platforms via the delivery-time exchange argument).
    General DAGs use the critical-path bound (``BOUND``), the greedy
    serialized scheduler plus — for OVERLAP — the layered bandwidth-sharing
    scheduler (``HEURISTIC``), or branch-and-bound (``EXACT``, one-port;
    an upper bound for OVERLAP where multi-port can be strictly better).

    With a non-unit *platform* and ``mapping=None`` the value is the best
    over server assignments.  *costs*/*exactness* as in
    :func:`period_objective`.

    Example (the Figure-1 graph; the paper's hand schedule achieves 21)::

        >>> from repro.core import CommModel
        >>> from repro.workloads import fig1_example
        >>> latency_objective(fig1_example().graph, CommModel.INORDER)
        Fraction(21, 1)
    """
    exactness = Exactness.coerce(exactness)
    platform, mapping = _normalise(platform, mapping)
    if exactness is Exactness.FAST:
        fast = fast_latency_value(graph, effort, platform, mapping)
        if fast is not None:
            return Fraction(fast)
    if platform is not None and mapping is None:
        from .placement import optimize_mapping

        value, _ = optimize_mapping(
            graph, "latency", model, effort, platform, exactness=exactness
        )
        return value
    if mapping is not None and not mapping.is_injective:
        # Shared servers: Algorithm 1 and the one-port schedulers assume
        # one service per server; the critical path with free intra-server
        # edges is the concurrent regime's analytic readout.
        if costs is None:
            costs = CostModel(graph, platform, mapping)
        return costs.latency_lower_bound()
    if graph.is_forest:
        return tree_latency(graph, platform=platform, mapping=mapping)
    if costs is None:
        costs = CostModel(graph, platform, mapping)
    if effort is Effort.BOUND:
        return costs.latency_lower_bound()
    if effort is Effort.EXACT and len(graph.nodes) <= 7:
        value = exact_oneport_latency(graph, platform=platform, mapping=mapping)
    else:
        value = oneport_latency_schedule(
            graph, platform=platform, mapping=mapping
        ).latency
    if model is CommModel.OVERLAP:
        layered = overlap_latency_layered(graph, platform=platform, mapping=mapping)
        if layered is not None and layered.latency < value:
            value = layered.latency
    return value


Objective = Callable[[ExecutionGraph], Fraction]


def make_period_objective(
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    exactness: Union[str, Exactness] = Exactness.EXACT,
) -> Objective:
    """Bind :func:`period_objective` to a fixed model/effort/platform.

    Example::

        >>> from repro.core import CommModel, ExecutionGraph, make_application
        >>> obj = make_period_objective(CommModel.OVERLAP)
        >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
        >>> obj(ExecutionGraph.chain(app, ["A", "B"]))
        Fraction(4, 1)

    For a memoized equivalent use
    ``repro.planner.EvaluationCache.objective("period", model, effort)``.
    """
    return lambda graph: period_objective(
        graph, model, effort, platform, mapping, exactness=exactness
    )


def make_latency_objective(
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    exactness: Union[str, Exactness] = Exactness.EXACT,
) -> Objective:
    """Bind :func:`latency_objective` to a fixed model/effort/platform.

    Example::

        >>> from repro.core import CommModel, ExecutionGraph, make_application
        >>> obj = make_latency_objective(CommModel.OVERLAP)
        >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
        >>> obj(ExecutionGraph.chain(app, ["A", "B"]))   # 1+4+1+4+1
        Fraction(11, 1)
    """
    return lambda graph: latency_objective(
        graph, model, effort, platform, mapping, exactness=exactness
    )


def make_fast_period_objective(
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[Callable[[ExecutionGraph], Optional[float]]]:
    """A ``graph -> float | None`` period evaluator on the float tier.

    The single source of truth for the period kernel's coverage: OVERLAP
    at any effort (Theorem 1), the ``BOUND`` effort under any model, and
    shared-server mappings (whose aggregated bound is the concurrent
    readout) — exactly the configurations where the Section-2.1 bound
    *is* the period objective.  A non-unit platform with a free mapping
    is not covered (the objective there runs the placement optimiser,
    which has its own fast path), and the factory then returns ``None``.
    The returned callable answers ``None`` per graph when the instance's
    quantities overflow a float — the caller must score exactly.
    """
    plat, mapp = _normalise(platform, mapping)
    if plat is not None and mapp is None:
        return None
    shared = mapp is not None and not mapp.is_injective
    if not (model is CommModel.OVERLAP or effort is Effort.BOUND or shared):
        return None

    def evaluate(graph: ExecutionGraph) -> Optional[float]:
        try:
            return FloatCosts(graph, plat, mapp).period_lower_bound(model)
        except OverflowError:
            return None  # beyond float range: exact tier only

    return evaluate


def make_forest_period_batch(
    app,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
):
    """A :class:`~repro.core.ForestBatch` for this configuration, or ``None``.

    The batched twin of :func:`make_fast_period_objective`: covered in
    exactly the same configurations (its per-row values are bit-for-bit
    the scalar kernel's), ``None`` where the scalar factory would return
    ``None`` — plus when numpy is unavailable or the instance overflows
    float range at compilation time.
    """
    plat, mapp = _normalise(platform, mapping)
    if plat is not None and mapp is None:
        return None
    shared = mapp is not None and not mapp.is_injective
    if not (model is CommModel.OVERLAP or effort is Effort.BOUND or shared):
        return None
    try:
        from ..core.batched import ForestBatch
    except ImportError:  # pragma: no cover - numpy-free environments
        return None
    try:
        return ForestBatch(app, model, plat, mapp)
    except OverflowError:
        return None  # beyond float range: exact tier only


def make_fast_latency_objective(
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[Callable[[ExecutionGraph], Optional[float]]]:
    """A ``graph -> float | None`` latency evaluator on the float tier.

    The single source of truth for the latency kernel's coverage: shared
    mappings and the ``BOUND`` effort, minus injective forests (their
    objective is the Algorithm-1 scheduler, answered with a per-graph
    ``None`` — as is an instance overflowing float range).  The
    communication model plays no role: the critical-path bound is
    model-independent.
    """
    plat, mapp = _normalise(platform, mapping)
    if plat is not None and mapp is None:
        return None
    shared = mapp is not None and not mapp.is_injective
    if not (shared or effort is Effort.BOUND):
        return None

    def evaluate(graph: ExecutionGraph) -> Optional[float]:
        if not shared and graph.is_forest:
            return None  # Algorithm 1 territory: no float shortcut
        try:
            return FloatCosts(graph, plat, mapp).latency_lower_bound()
        except OverflowError:
            return None  # beyond float range: exact tier only
    return evaluate


__all__ = [
    "Effort",
    "Objective",
    "fast_latency_value",
    "fast_period_value",
    "latency_objective",
    "make_fast_latency_objective",
    "make_fast_period_objective",
    "make_forest_period_batch",
    "make_latency_objective",
    "make_period_objective",
    "period_objective",
]
