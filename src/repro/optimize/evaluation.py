"""Objective evaluators shared by the optimisers.

The full minimisation problems need a per-graph objective.  Depending on
the model this is exact-and-cheap (OVERLAP period, forest latency), exact
but exponential (one-port orchestration), or an upper bound from a
heuristic scheduler.  The :class:`Effort` knob picks the trade-off so
exhaustive searches stay honest about what they optimise.

On a heterogeneous :class:`~repro.core.Platform` the objectives take two
extra knobs: a *mapping* pins services to servers and evaluates exactly
that placement; ``mapping=None`` additionally optimises the placement
(exhaustive for small instances, greedy + local search beyond — see
:mod:`repro.optimize.placement`), so graph searches transparently become
graph × server-assignment searches.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Callable, Optional

from ..core import CommModel, CostModel, ExecutionGraph, Mapping, Platform
from ..scheduling.inorder import (
    exact_inorder_period,
    greedy_orders,
    inorder_period_for_orders,
    order_space_size,
)
from ..scheduling.latency import (
    exact_oneport_latency,
    oneport_latency_schedule,
    overlap_latency_layered,
    tree_latency,
)
from ..scheduling.outorder import outorder_schedule


class Effort(enum.Enum):
    """How hard evaluators work: a bound, a heuristic, or exact search."""

    BOUND = "bound"
    HEURISTIC = "heuristic"
    EXACT = "exact"


def _normalise(
    platform: Optional[Platform], mapping: Optional[Mapping]
) -> "tuple[Optional[Platform], Optional[Mapping]]":
    """Unit platforms evaluate exactly like ``platform=None`` — collapse them.

    This keeps the fast normalised code path (and shared cache entries) for
    ``Platform.homogeneous(n)``, the paper's platform.  A shared
    (non-injective) mapping is *never* collapsed: co-location zeroes
    intra-server communications and aggregates per-server loads even when
    every speed and bandwidth is 1.
    """
    if (
        platform is not None
        and platform.is_unit
        and (mapping is None or mapping.is_injective)
    ):
        return None, None
    return platform, mapping


def period_objective(
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """Period of the best known operation list for *graph* under *model*.

    * OVERLAP: always exact (Theorem 1 — the bound is achievable, on any
      platform).
    * INORDER: ``BOUND`` returns ``max_k Cexec``; ``HEURISTIC`` uses greedy
      orders + MCR (achievable); ``EXACT`` enumerates orders when feasible.
    * OUTORDER: ``BOUND`` as above; otherwise the repair scheduler's value
      (achievable, certified when it meets the bound).

    With a non-unit *platform* and ``mapping=None`` the value is the best
    over server assignments (the placement optimiser of
    :mod:`repro.optimize.placement`).

    The Section 2.3 instance shows the INORDER bound/exact gap::

        >>> from repro.core import CommModel
        >>> from repro.workloads import fig1_example
        >>> graph = fig1_example().graph
        >>> period_objective(graph, CommModel.INORDER, Effort.BOUND)
        Fraction(7, 1)
        >>> period_objective(graph, CommModel.INORDER, Effort.EXACT)
        Fraction(23, 3)

    The planner memoizes this function through
    :class:`repro.planner.EvaluationCache`.
    """
    platform, mapping = _normalise(platform, mapping)
    if platform is not None and mapping is None:
        from .placement import optimize_mapping

        value, _ = optimize_mapping(graph, "period", model, effort, platform)
        return value
    costs = CostModel(graph, platform, mapping)
    if model is CommModel.OVERLAP:
        return costs.period_lower_bound(model)
    if effort is Effort.BOUND:
        return costs.period_lower_bound(model)
    if mapping is not None and not mapping.is_injective:
        # Shared servers: the one-port orchestration schedulers assume one
        # service per server; the aggregated steady-state bound is the
        # analytic readout of the concurrent regime.
        return costs.period_lower_bound(model)
    if model is CommModel.INORDER:
        if effort is Effort.EXACT and order_space_size(graph) <= 50_000:
            lam, _ = exact_inorder_period(
                graph, max_configs=50_000, platform=platform, mapping=mapping
            )
            return lam
        return inorder_period_for_orders(
            graph,
            greedy_orders(graph, platform=platform, mapping=mapping),
            platform=platform,
            mapping=mapping,
        )
    # OUTORDER
    return outorder_schedule(graph, platform=platform, mapping=mapping).period


def latency_objective(
    graph: ExecutionGraph,
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """Latency of the best known operation list for *graph* under *model*.

    Forests are exact for every effort level (Algorithm 1 / Prop 12, which
    generalises to platforms via the delivery-time exchange argument).
    General DAGs use the critical-path bound (``BOUND``), the greedy
    serialized scheduler plus — for OVERLAP — the layered bandwidth-sharing
    scheduler (``HEURISTIC``), or branch-and-bound (``EXACT``, one-port;
    an upper bound for OVERLAP where multi-port can be strictly better).

    With a non-unit *platform* and ``mapping=None`` the value is the best
    over server assignments.

    Example (the Figure-1 graph; the paper's hand schedule achieves 21)::

        >>> from repro.core import CommModel
        >>> from repro.workloads import fig1_example
        >>> latency_objective(fig1_example().graph, CommModel.INORDER)
        Fraction(21, 1)
    """
    platform, mapping = _normalise(platform, mapping)
    if platform is not None and mapping is None:
        from .placement import optimize_mapping

        value, _ = optimize_mapping(graph, "latency", model, effort, platform)
        return value
    if mapping is not None and not mapping.is_injective:
        # Shared servers: Algorithm 1 and the one-port schedulers assume
        # one service per server; the critical path with free intra-server
        # edges is the concurrent regime's analytic readout.
        return CostModel(graph, platform, mapping).latency_lower_bound()
    if graph.is_forest:
        return tree_latency(graph, platform=platform, mapping=mapping)
    costs = CostModel(graph, platform, mapping)
    if effort is Effort.BOUND:
        return costs.latency_lower_bound()
    if effort is Effort.EXACT and len(graph.nodes) <= 7:
        value = exact_oneport_latency(graph, platform=platform, mapping=mapping)
    else:
        value = oneport_latency_schedule(
            graph, platform=platform, mapping=mapping
        ).latency
    if model is CommModel.OVERLAP:
        layered = overlap_latency_layered(graph, platform=platform, mapping=mapping)
        if layered is not None and layered.latency < value:
            value = layered.latency
    return value


Objective = Callable[[ExecutionGraph], Fraction]


def make_period_objective(
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Objective:
    """Bind :func:`period_objective` to a fixed model/effort/platform.

    Example::

        >>> from repro.core import CommModel, ExecutionGraph, make_application
        >>> obj = make_period_objective(CommModel.OVERLAP)
        >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
        >>> obj(ExecutionGraph.chain(app, ["A", "B"]))
        Fraction(4, 1)

    For a memoized equivalent use
    ``repro.planner.EvaluationCache.objective("period", model, effort)``.
    """
    return lambda graph: period_objective(graph, model, effort, platform, mapping)


def make_latency_objective(
    model: CommModel,
    effort: Effort = Effort.HEURISTIC,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Objective:
    """Bind :func:`latency_objective` to a fixed model/effort/platform.

    Example::

        >>> from repro.core import CommModel, ExecutionGraph, make_application
        >>> obj = make_latency_objective(CommModel.OVERLAP)
        >>> app = make_application([("A", 4, 1), ("B", 4, 1)])
        >>> obj(ExecutionGraph.chain(app, ["A", "B"]))   # 1+4+1+4+1
        Fraction(11, 1)
    """
    return lambda graph: latency_objective(graph, model, effort, platform, mapping)


__all__ = [
    "Effort",
    "Objective",
    "latency_objective",
    "make_latency_objective",
    "make_period_objective",
    "period_objective",
]
