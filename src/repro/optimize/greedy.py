"""Greedy forest construction heuristics for MinPeriod / MinLatency.

Services are inserted one at a time (filters by increasing cost first,
then expanders); each one attaches to the existing node — or becomes a new
root — that minimises the objective of the partial forest.  This is the
natural incremental generalisation of the paper's chain greedy (Prop 8) to
forest-shaped plans, which Proposition 4 shows are sufficient for
MinPeriod.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import Application, CommModel, ExecutionGraph
from .evaluation import Effort, latency_objective, period_objective


def _insertion_order(app: Application) -> List[str]:
    filters = sorted(
        (s.name for s in app.services if s.selectivity < 1),
        key=lambda n: (app.cost(n), n),
    )
    expanders = sorted(
        (s.name for s in app.services if s.selectivity >= 1),
        key=lambda n: (-app.cost(n), n),
    )
    return filters + expanders


def greedy_forest(
    app: Application,
    objective,
) -> Tuple[Fraction, ExecutionGraph]:
    """Incrementally build a forest minimising *objective* at each insertion.

    *objective* is any ``ExecutionGraph -> Fraction`` callable — e.g. one
    produced by :meth:`repro.planner.EvaluationCache.objective` so partial
    evaluations are memoized.  Services are inserted in the
    :func:`_insertion_order`; each attaches wherever the partial forest's
    objective is smallest.  Returns ``(value, graph)``.

    Example::

        >>> from repro import CommModel, make_application
        >>> from repro.optimize import greedy_forest, make_period_objective
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> value, graph = greedy_forest(app, make_period_objective(CommModel.OVERLAP))
        >>> value
        Fraction(4, 1)
        >>> sorted(graph.edges)
        [('A', 'B')]
    """
    if app.precedence:
        raise ValueError("greedy forest construction assumes no precedence")
    order = _insertion_order(app)
    parents: Dict[str, Optional[str]] = {}
    placed: List[str] = []
    for name in order:
        best_val: Optional[Fraction] = None
        best_parent: Optional[str] = None
        candidates: List[Optional[str]] = [None] + placed
        for parent in candidates:
            trial = dict(parents)
            trial[name] = parent
            sub = app.restricted_to(placed + [name])
            graph = ExecutionGraph.from_parents(sub, trial)
            val = objective(graph)
            if best_val is None or val < best_val:
                best_val, best_parent = val, parent
        parents[name] = best_parent
        placed.append(name)
    graph = ExecutionGraph.from_parents(app, parents)
    return objective(graph), graph


def greedy_minperiod(
    app: Application,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
) -> Tuple[Fraction, ExecutionGraph]:
    """Greedy forest heuristic for MinPeriod.

    Example (facade equivalent: ``solve(app, method="greedy")``)::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> greedy_minperiod(app, CommModel.OVERLAP)[0]
        Fraction(4, 1)
    """
    return greedy_forest(app, lambda g: period_objective(g, model, effort))


def greedy_minlatency(
    app: Application,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
) -> Tuple[Fraction, ExecutionGraph]:
    """Greedy forest heuristic for MinLatency.

    Example::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> greedy_minlatency(app, CommModel.OVERLAP)[0]
        Fraction(7, 1)
    """
    return greedy_forest(app, lambda g: latency_objective(g, model, effort))


__all__ = ["greedy_forest", "greedy_minlatency", "greedy_minperiod"]
