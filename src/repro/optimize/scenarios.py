"""Scenario-batched candidate scoring for robust planning.

Ranking R candidate graphs across K scenarios is an R×K evaluation
matrix — exactly the shape the batched numpy kernel
(:class:`repro.core.ForestBatch`) eats: encode each candidate once as a
parent-vector row, then price all rows per scenario in one vectorised
call.  The floats are the certified kernel's doubles (bit-for-bit the
float image of the exact values), so the robust solver uses this matrix
to *rank* and then certifies only the contenders exactly.

The batch path covers the common case — period objective under OVERLAP
(where the Theorem-1 bound is the evaluation at every effort tier),
forest candidates, unit/pinned-mapping scenarios.  Anything else returns
``None`` and the caller scores exactly; correctness never depends on
this module, only speed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core import CommModel, ExecutionGraph

try:  # pragma: no cover - exercised only where numpy is absent
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


def scenario_period_matrix(
    candidates: Sequence[ExecutionGraph],
    scenarios: Sequence,  # repro.robust.Scenario
    model: CommModel,
    mapping=None,
) -> Optional["np.ndarray"]:
    """The ``(len(candidates), len(scenarios))`` float period matrix.

    ``None`` when the batch preconditions fail: no numpy, a non-OVERLAP
    model (their exact period is not the Theorem-1 bound at every
    effort, so float ranks could disagree with exact certification), a
    non-forest candidate, or a scenario on a non-unit platform without a
    pinned mapping (per-row placement search is the scalar path's job).
    """
    if np is None or model is not CommModel.OVERLAP or not candidates:
        return None
    from ..core.batched import ForestBatch

    for scenario in scenarios:
        platform = scenario.platform
        if platform is not None and not platform.is_unit and mapping is None:
            return None
        if platform is not None and platform.has_contention:
            return None
    first = ForestBatch(
        scenarios[0].application, model,
        platform=scenarios[0].platform, mapping=mapping,
    )
    rows = []
    for graph in candidates:
        if not graph.is_forest:
            return None
        rows.append(first.encode(graph))
    row_matrix = np.stack(rows)
    columns: List["np.ndarray"] = []
    for scenario in scenarios:
        batch = ForestBatch(
            scenario.application, model,
            platform=scenario.platform, mapping=mapping,
        )
        valid, periods = batch.periods(row_matrix)
        if not bool(valid.all()):
            return None  # a candidate is no forest of this application
        columns.append(periods)
    return np.stack(columns, axis=1)


__all__ = ["scenario_period_matrix"]
