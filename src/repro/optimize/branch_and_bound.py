"""Best-first branch-and-bound for exact MinPeriod / MinLatency.

The exhaustive enumerations of :mod:`repro.optimize.exhaustive` score every
candidate graph — ``(n+1)^(n-1)`` forests for MinPeriod, super-exponentially
many DAGs for MinLatency — which caps exact answers at tiny ``n``.  Both
problems admit strong *partial* lower bounds, because every Section-2.1
quantity is monotone under completion of a partial graph:

* growing a forest by attaching a new node under an already-placed parent
  never changes the ancestors (hence ``Cin``/``Ccomp``) of placed nodes and
  can only add outgoing messages (``Cout``);
* appending a node to a partial DAG with predecessors chosen among placed
  nodes leaves every placed node's critical-path finish time intact.

So the search explores *states* — partial forests (a parent vector over a
subset of services) for period, partial DAGs for latency — best-first by a
lower bound derived from the same ``Cin``/``Ccomp``/``Cout`` algebra as
:meth:`~repro.core.CostModel.period_lower_bound` and
:meth:`~repro.core.CostModel.latency_lower_bound`, seeded with a greedy +
local-search incumbent.  A state whose bound reaches the incumbent is
pruned with its whole subtree; the search is exact because the bound never
exceeds the true objective of any completion.

Unplaced services contribute a static floor: service ``j`` processes data
of size at least ``prod_{i != j, sigma_i < 1} sigma_i`` no matter where it
ends up, which bounds its ``Ccomp`` (and its one unavoidable outgoing
message) from below.  On heterogeneous platforms computation bounds divide
by the hosting (or fastest) server speed and communication bounds by the
fastest link, so pruning stays valid whether the mapping is pinned or left
to the placement optimiser.

Entry points: :func:`bb_minperiod` (forests — exact for MinPeriod by
Proposition 4), :func:`bb_minlatency` (DAGs — optimal latency plans need
not be forests, Proposition 13).  The planner registers them as the
``"branch-and-bound"`` solver, which is also the ``method="auto"`` exact
path (:data:`repro.planner.AUTO_EXHAUSTIVE_MAX`).

**Numeric tiers** (:class:`~repro.core.Exactness`): the bound algebra —
ancestor products, per-node terms, heap keys — runs in exact
``Fraction``s under ``EXACT`` and in native floats under ``CERTIFIED``
and ``FAST``.  Certified pruning is conservative: a state is discarded
only when its float bound exceeds the incumbent by more than
:data:`~repro.core.CERT_EPS` relative (``float_lb > incumbent *
(1 + eps)``), which the float error (~1e-13) can never fake, so the
exact optimum is never pruned; surviving complete graphs are re-scored
through the exact *objective*, keeping the returned optimum bit-for-bit
identical to the ``EXACT`` tier — at one to two orders of magnitude less
bound arithmetic.  Under ``FAST`` the caller supplies a float-tier
objective and the result is an uncertified (but typically optimal)
incumbent.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import (
    CERT_EPS,
    INPUT,
    OUTPUT,
    Application,
    CommModel,
    Exactness,
    ExecutionGraph,
    Mapping,
    Platform,
    certified_threshold,
)
from .evaluation import Effort, Objective

ONE = Fraction(1)

#: DAG-space branch and bound refuses applications larger than this (the
#: state space still grows super-exponentially; use ``space='forests'`` or
#: a heuristic beyond it).
MAX_BB_LATENCY_SERVICES = 7


@dataclass
class BBStats:
    """Search counters reported in ``PlanResult.stats.extras``.

    ``evaluated`` counts every graph scored through the objective —
    incumbent seeding included — so it compares honestly against the
    enumeration baseline's graph count.  ``expanded`` is the number of
    partial states popped and branched; ``pruned`` the number of generated
    states discarded because their lower bound already reached the
    incumbent.  ``limit_hit`` records that the search stopped on
    *node_limit* rather than by exhausting/pruning the state space (the
    result is then an uncertified upper bound).
    """

    expanded: int = 0
    pruned: int = 0
    evaluated: int = 0
    duplicates: int = 0
    incumbent_updates: int = 0
    limit_hit: bool = False

    def as_extras(self) -> Dict[str, int]:
        return {
            "expanded": self.expanded,
            "pruned": self.pruned,
            "evaluated": self.evaluated,
            "duplicates": self.duplicates,
            "incumbent_updates": self.incumbent_updates,
        }


class _Scaling:
    """Per-node lower-bound divisors for a (platform, mapping) pair.

    Unit platforms (and ``platform=None``) divide by nothing — the bounds
    are bit-for-bit the paper's.  A pinned mapping divides each node's
    computation by its actual server speed; a free mapping divides by the
    fastest speed (the best any placement could do).  Communication bounds
    always divide by the fastest bandwidth reachable anywhere on the
    platform, which stays below every concrete transfer time.
    """

    __slots__ = ("comm_div", "_speed", "_default_speed")

    def __init__(
        self,
        app: Application,
        platform: Optional[Platform],
        mapping: Optional[Mapping],
    ) -> None:
        if platform is None or platform.is_unit:
            self.comm_div = ONE
            self._speed: Dict[str, Fraction] = {}
            self._default_speed = ONE
            return
        # Uncontended pair bandwidths only: on a contended topology the
        # effective bandwidth of any pair under any flow pattern is at
        # most its uncontended value, so the max over these stays an
        # optimistic divisor and the bound remains admissible.  Skip
        # world-to-world pairs — no message crosses them (strict lookup).
        bandwidths = [platform.default_bandwidth]
        for u in list(platform.names) + [INPUT, OUTPUT]:
            for v in list(platform.names) + [INPUT, OUTPUT]:
                if u != v and not (u in (INPUT, OUTPUT) and v in (INPUT, OUTPUT)):
                    bandwidths.append(platform.bandwidth(u, v))
        self.comm_div = max(bandwidths)
        max_speed = max(s.speed for s in platform.servers)
        if mapping is not None:
            self._speed = {
                name: platform.speed(mapping.server(name)) for name in app.names
            }
        else:
            self._speed = {}
        self._default_speed = max_speed

    def speed(self, name: str) -> Fraction:
        return self._speed.get(name, self._default_speed)


def _float_cuts(value: Fraction, eps: float) -> Tuple[float, float]:
    """``(cut, low_cut)`` float thresholds around an exact incumbent.

    An incumbent too large for a float degenerates to ``(inf, -inf)`` —
    every bound then lands "in the band", so a certified search arbitrates
    everything exactly (slow but still exact) and a fast search returns
    its incumbent.
    """
    try:
        f = float(value)
    except OverflowError:
        return float("inf"), float("-inf")
    return certified_threshold(f, eps), f * (1.0 - eps)


def _min_products(app: Application) -> Dict[str, Fraction]:
    """``minprod[j]``: the smallest possible ancestor-selectivity product.

    Whatever the final graph, the ancestors of ``j`` are a subset of the
    other services, so the product of their selectivities is at least the
    product of every *filter* selectivity among them.
    """
    filters = [(s.name, s.selectivity) for s in app.services if s.selectivity < 1]
    total = ONE
    for _, sigma in filters:
        total *= sigma
    out: Dict[str, Fraction] = {}
    for s in app.services:
        prod = total
        if s.selectivity < 1:
            prod /= s.selectivity
        out[s.name] = prod
    return out


def _period_floors(
    app: Application,
    model: CommModel,
    scaling: _Scaling,
    minprod: Dict[str, Fraction],
) -> Dict[str, Fraction]:
    """Static per-service lower bound on ``Cexec`` over *all* plans."""
    floors: Dict[str, Fraction] = {}
    for s in app.services:
        cin = min(ONE, minprod[s.name]) / scaling.comm_div
        ccomp = minprod[s.name] * s.cost / scaling.speed(s.name)
        cout = minprod[s.name] * s.selectivity / scaling.comm_div
        if model.overlaps_compute:
            floors[s.name] = max(cin, ccomp, cout)
        else:
            floors[s.name] = cin + ccomp + cout
    return floors


def _latency_floors(
    app: Application,
    scaling: _Scaling,
    minprod: Dict[str, Fraction],
) -> Dict[str, Fraction]:
    """Static per-service latency floor: in-message + compute + out-message."""
    floors: Dict[str, Fraction] = {}
    for s in app.services:
        floors[s.name] = (
            min(ONE, minprod[s.name]) / scaling.comm_div
            + minprod[s.name] * s.cost / scaling.speed(s.name)
            + minprod[s.name] * s.selectivity / scaling.comm_div
        )
    return floors


def _seed_incumbent(
    app: Application,
    objective: Objective,
    *,
    kind: str,
    model: CommModel,
    platform: Optional[Platform],
    mapping: Optional[Mapping],
    exactness: Exactness = Exactness.EXACT,
) -> Tuple[Fraction, ExecutionGraph]:
    """Greedy + reparenting local search: the starting incumbent.

    The closer the incumbent sits to the optimum, the harder the bound
    prunes — in the common case local search already *is* optimal and the
    search reduces to a proof of optimality.  Under OVERLAP the local
    search scores candidates through incremental deltas (the bound is the
    objective at every effort there); the final graph is always re-scored
    through *objective* so the incumbent value matches the search's own
    scoring exactly.
    """
    from .greedy import greedy_forest
    from .incremental import period_delta
    from .local_search import local_search_forest

    _, seed_graph = greedy_forest(app, objective)
    delta = None
    if kind == "period" and model.overlaps_compute:
        delta = period_delta(
            seed_graph, model, Effort.HEURISTIC, platform, mapping,
            exactness=exactness,
        )
    _, graph = local_search_forest(seed_graph, objective, delta=delta)
    return objective(graph), graph


# ---------------------------------------------------------------------------
# MinPeriod over forests
# ---------------------------------------------------------------------------

class _ForestState:
    """A partial forest: parent index per placed service (revived lazily).

    ``parents[i]`` is ``UNPLACED``, ``ROOT``, or the index of the parent
    (which is itself placed).  The key — the tuple itself — is canonical:
    two insertion orders reaching the same partial forest share it.
    """

    UNPLACED = -2
    ROOT = -1


def bb_minperiod(
    app: Application,
    objective: Objective,
    *,
    model: CommModel = CommModel.OVERLAP,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    incumbent: Optional[Tuple[Fraction, ExecutionGraph]] = None,
    node_limit: Optional[int] = None,
    deadline: Optional[float] = None,
    leaf_batch=None,
    exactness: Exactness = Exactness.EXACT,
    eps: float = CERT_EPS,
) -> Tuple[Fraction, ExecutionGraph, BBStats]:
    """Exact MinPeriod over forests by best-first branch and bound.

    *objective* scores complete forests (route it through the planner's
    memo cache); the result optimises exactly the same quantity as
    ``exhaustive_minperiod`` / the ``"exhaustive"`` solver at the matching
    effort.  Proposition 4 guarantees the forest space suffices for
    MinPeriod without precedence constraints.

    *node_limit* caps the number of expanded states; when hit, the current
    incumbent is returned (still an upper bound, no longer certified
    optimal — ``stats.expanded`` reaching the limit flags it).  *deadline*
    (seconds of wall clock) stops the search the same way — the anytime
    contract: the incumbent is always a valid plan, ``stats.limit_hit``
    records whether optimality was proved.

    *leaf_batch* (a :class:`~repro.core.ForestBatch` covering the searched
    objective, see
    :func:`~repro.optimize.evaluation.make_forest_period_batch`; only
    consulted under the ``CERTIFIED`` tier) defers each expansion's
    complete-forest children into one batched float pricing and
    exact-scores only those inside the running incumbent's certified band.
    The returned optimum is bit-for-bit unchanged; ``stats`` counters may
    differ from the default path (fewer evaluations), which is why the
    gate is opt-in.

    *exactness* picks the numeric tier for the bound arithmetic (the
    module docstring spells out the certification contract): under
    ``CERTIFIED`` the bounds run in floats, states are pruned only beyond
    the *eps* relative guard, and the returned optimum is bit-for-bit the
    ``EXACT`` tier's as long as *objective* evaluates exactly; ``FAST``
    expects a float-tier objective and returns an uncertified incumbent.

    Example::

        >>> from repro import CommModel, make_application
        >>> from repro.optimize import make_period_objective
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> value, graph, stats = bb_minperiod(
        ...     app, make_period_objective(CommModel.OVERLAP))
        >>> value, sorted(graph.edges)
        (Fraction(4, 1), [('A', 'B')])
    """
    if app.precedence:
        raise ValueError("forest branch and bound assumes no precedence constraints")
    exactness = Exactness.coerce(exactness)
    names = list(app.names)
    n = len(names)
    index = {name: i for i, name in enumerate(names)}
    scaling = _Scaling(app, platform, mapping)
    minprod = _min_products(app)
    floors = _period_floors(app, model, scaling, minprod)
    while True:
        use_float = exactness.uses_float
        conv = float if use_float else (lambda value: value)
        try:
            one = conv(ONE)
            sigma = [conv(app.selectivity(name)) for name in names]
            cost = [conv(app.cost(name)) for name in names]
            speed = [conv(scaling.speed(name)) for name in names]
            b_div = conv(scaling.comm_div)
            floor_list = [conv(floors[name]) for name in names]
            break
        except OverflowError:
            # Instance quantities beyond float range: the fast tier cannot
            # represent them — degrade to the (always-correct) exact tier.
            exactness = Exactness.EXACT
    overlap = model.overlaps_compute
    stats = BBStats()
    deadline_at = None if deadline is None else time.monotonic() + deadline

    def scored(graph: ExecutionGraph) -> Fraction:
        stats.evaluated += 1
        return objective(graph)

    def graph_of(parents: Tuple[int, ...]) -> ExecutionGraph:
        return ExecutionGraph.from_parents(
            app,
            {
                names[i]: (names[p] if p >= 0 else None)
                for i, p in enumerate(parents)
                if p != _ForestState.UNPLACED
            },
        )

    if incumbent is None:
        incumbent = _seed_incumbent(
            app, scored, kind="period", model=model,
            platform=platform, mapping=mapping, exactness=exactness,
        )
    best_value, best_graph = incumbent
    if not best_graph.is_forest:
        raise ValueError("the MinPeriod incumbent must be a forest")

    # Float-tier pruning thresholds around the incumbent: a state whose
    # float bound exceeds ``cut`` is provably no better than the incumbent
    # (the eps guard swallows the float error).  Under CERTIFIED a state
    # inside the ``[low_cut, cut]`` near-tie band is arbitrated in exact
    # arithmetic — so the prune *set* is bit-for-bit the exact tier's —
    # and one below ``low_cut`` provably admits an improvement.  Under
    # FAST (uncertified by contract) ties prune aggressively at
    # ``low_cut``, with no exact arithmetic anywhere.
    certified = exactness is Exactness.CERTIFIED
    use_leaf_batch = certified and leaf_batch is not None
    if use_float:
        cut, low_cut = _float_cuts(best_value, eps)
    else:
        cut = low_cut = best_value

    # Per-node partial term: cin is the parent's out-size (== the node's
    # ancestor product) or the unit input message for roots; cout counts
    # the current children plus the one unavoidable output message.
    def make_term(sig, cst, spd, bdv, unit):
        def term(anc, is_root: bool, children: int, i: int):
            cin = (unit if is_root else anc) / bdv
            ccomp = anc * cst[i] / spd[i]
            cout = max(children, 1) * anc * sig[i] / bdv
            if overlap:
                return max(cin, ccomp, cout)
            return cin + ccomp + cout
        return term

    term = make_term(sigma, cost, speed, b_div, one)
    if certified:
        # Exact twins of every converted array, for near-tie arbitration.
        sigma_x = [app.selectivity(name) for name in names]
        cost_x = [app.cost(name) for name in names]
        speed_x = [scaling.speed(name) for name in names]
        term_x = make_term(sigma_x, cost_x, speed_x, scaling.comm_div, ONE)
        floors_x = [floors[name] for name in names]
        root_bound_x = max(floors_x) if floors_x else Fraction(0)

    root_bound = max(floor_list) if floor_list else conv(Fraction(0))
    start: Tuple[int, ...] = tuple([_ForestState.UNPLACED] * n)
    heap: List[Tuple] = []
    counter = itertools.count()
    gen = 0  # incumbent generation: bumps on every incumbent improvement
    # The root is pushed un-arbitrated (generation -1), so its pop re-checks
    # the band — the "floors certify the incumbent at the root" case.
    heapq.heappush(heap, (root_bound, 0, next(counter), start, -1))
    seen = {start}

    while heap:
        bound, placed_rank, _, parents, state_gen = heapq.heappop(heap)
        if certified:
            worse = bound > cut
        elif use_float:
            worse = bound >= low_cut  # FAST: ties prune uncertified
        else:
            worse = bound >= cut
        if worse:
            break  # every remaining state is at least as bad — optimal
        if node_limit is not None and stats.expanded >= node_limit:
            stats.limit_hit = True
            break
        if deadline_at is not None and time.monotonic() >= deadline_at:
            stats.limit_hit = True
            break

        placed = [i for i, p in enumerate(parents) if p != _ForestState.UNPLACED]
        unplaced = [i for i, p in enumerate(parents) if p == _ForestState.UNPLACED]
        # Revive the ancestor products and child counts of the partial forest.
        anc: Dict[int, object] = {}
        children: Dict[int, int] = {i: 0 for i in placed}

        def anc_of(i: int):
            found = anc.get(i)
            if found is None:
                p = parents[i]
                found = one if p == _ForestState.ROOT else anc_of(p) * sigma[p]
                anc[i] = found
            return found

        for i in placed:
            anc_of(i)
            if parents[i] >= 0:
                children[parents[i]] += 1

        if certified:
            # Lazy exact revival of this state's bound — only touched when
            # a float bound lands in the near-tie band.  A state's
            # accumulated bound equals max(static root bound, the placed
            # nodes' *current* terms): terms only ever grow as children
            # are attached, so the historical max collapses to the
            # current one.
            exact_state: List[Optional[Fraction]] = [None]
            exact_anc: Dict[int, Fraction] = {}

            def exact_anc_of(i: int) -> Fraction:
                found = exact_anc.get(i)
                if found is None:
                    p = parents[i]
                    found = (
                        ONE if p == _ForestState.ROOT
                        else exact_anc_of(p) * sigma_x[p]
                    )
                    exact_anc[i] = found
                return found

            def exact_bound() -> Fraction:
                found = exact_state[0]
                if found is None:
                    found = root_bound_x
                    for i in placed:
                        t = term_x(
                            exact_anc_of(i),
                            parents[i] == _ForestState.ROOT,
                            children[i],
                            i,
                        )
                        if t > found:
                            found = t
                    exact_state[0] = found
                return found

            # A state pushed under the current incumbent was already exactly
            # arbitrated at generation time; only a since-improved incumbent
            # warrants re-checking the near-tie band at pop time.
            if (
                state_gen != gen
                and bound >= low_cut
                and exact_bound() >= best_value
            ):
                stats.pruned += 1  # exact arbitration: a true (near-)tie
                continue
        stats.expanded += 1
        # The incumbent generation this state's bound was screened under;
        # children inherit it, so a mid-expansion incumbent improvement
        # forces their own pop-time re-arbitration (the inherited bound
        # component was only verified against the pre-improvement value).
        verified_gen = gen
        leaf_keys: List[Tuple[int, ...]] = []

        for u in unplaced:
            for p in [-1] + placed:
                if p == _ForestState.ROOT:
                    anc_u = one
                    new_term = term(anc_u, True, 0, u)
                    parent_term = None
                else:
                    anc_u = anc[p] * sigma[p]
                    new_term = term(anc_u, False, 0, u)
                    parent_term = term(
                        anc[p], parents[p] == _ForestState.ROOT, children[p] + 1, p
                    )
                child_bound = bound if new_term <= bound else new_term
                if parent_term is not None and parent_term > child_bound:
                    child_bound = parent_term
                if use_float and not certified:
                    if child_bound >= low_cut:  # FAST: uncertified pruning
                        stats.pruned += 1
                        continue
                elif certified:
                    if child_bound > cut:
                        stats.pruned += 1
                        continue
                    if child_bound >= low_cut:
                        # Near-tie band: arbitrate in exact arithmetic so the
                        # prune set matches the exact tier bit-for-bit.  The
                        # expanded state's own exact bound is already known
                        # to be below the incumbent, so only the two terms
                        # the move changes need exact evaluation.
                        if p == _ForestState.ROOT:
                            if term_x(ONE, True, 0, u) >= best_value:
                                stats.pruned += 1
                                continue
                        else:
                            anc_px = exact_anc_of(p)
                            if (
                                term_x(anc_px * sigma_x[p], False, 0, u)
                                >= best_value
                                or term_x(
                                    anc_px, parents[p] == _ForestState.ROOT,
                                    children[p] + 1, p,
                                )
                                >= best_value
                            ):
                                stats.pruned += 1
                                continue
                elif child_bound >= cut:
                    stats.pruned += 1
                    continue
                child = list(parents)
                child[u] = p if p >= 0 else _ForestState.ROOT
                child_key = tuple(child)
                if len(placed) + 1 == n:
                    # Complete forest: score it for real (exact tier under
                    # EXACT/CERTIFIED — only float-safe survivors reach here).
                    if child_key in seen:
                        stats.duplicates += 1
                        continue
                    seen.add(child_key)
                    if use_leaf_batch:
                        # Defer: the whole layer is priced in one batched
                        # call after this expansion (same acceptance order,
                        # so the incumbent sequence is unchanged).
                        leaf_keys.append(child_key)
                        continue
                    graph = graph_of(child_key)
                    value = scored(graph)
                    if value < best_value:
                        best_value, best_graph = value, graph
                        gen += 1
                        if use_float:
                            cut, low_cut = _float_cuts(best_value, eps)
                        else:
                            cut = low_cut = best_value
                        stats.incumbent_updates += 1
                    continue
                if child_key in seen:
                    stats.duplicates += 1
                    continue
                seen.add(child_key)
                heapq.heappush(
                    heap,
                    (child_bound, n - len(placed) - 1, next(counter), child_key,
                     verified_gen),
                )

        if leaf_keys:
            # Certified batched leaf gate: complete rows are already valid
            # forests, so only the float prices matter.  Survivors are
            # exact-scored in generation order under the *running* cut —
            # the acceptance predicate (exact value < running best) is the
            # scalar path's, so the final optimum is bit-for-bit identical.
            import numpy as np

            rows = np.array(leaf_keys, dtype=np.int64)
            _valid, fast = leaf_batch.periods(rows)
            for k_i, child_key in enumerate(leaf_keys):
                if fast[k_i] > cut:
                    continue  # provably no better than the incumbent
                graph = graph_of(child_key)
                value = scored(graph)
                if value < best_value:
                    best_value, best_graph = value, graph
                    gen += 1
                    cut, low_cut = _float_cuts(best_value, eps)
                    stats.incumbent_updates += 1

    return best_value, best_graph, stats


# ---------------------------------------------------------------------------
# MinLatency over DAGs
# ---------------------------------------------------------------------------

def bb_minlatency(
    app: Application,
    objective: Objective,
    *,
    model: CommModel = CommModel.OVERLAP,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    incumbent: Optional[Tuple[Fraction, ExecutionGraph]] = None,
    node_limit: Optional[int] = None,
    deadline: Optional[float] = None,
    max_services: int = MAX_BB_LATENCY_SERVICES,
    exactness: Exactness = Exactness.EXACT,
    eps: float = CERT_EPS,
) -> Tuple[Fraction, ExecutionGraph, BBStats]:
    """Exact MinLatency over DAGs by best-first branch and bound.

    States append one service at a time with predecessors chosen among the
    already-placed services, so every placed node's critical-path finish
    time is final; the bound adds each node's unavoidable output message
    and the static floors of the unplaced services.  Optimal latency plans
    need not be forests (Proposition 13), hence the DAG space.

    *exactness*/*eps* pick the numeric tier of the bound arithmetic with
    the same certification contract as :func:`bb_minperiod`; *deadline*
    (wall-clock seconds) stops the search like *node_limit*, leaving the
    incumbent as an anytime upper bound with ``stats.limit_hit`` set.

    Example::

        >>> from repro import CommModel, make_application
        >>> from repro.optimize import make_latency_objective
        >>> app = make_application([("A", 1, "1/4"), ("B", 8, 1)])
        >>> value, graph, stats = bb_minlatency(
        ...     app, make_latency_objective(CommModel.OVERLAP))
        >>> value, sorted(graph.edges)
        (Fraction(9, 2), [('A', 'B')])
    """
    if app.precedence:
        raise ValueError("DAG branch and bound does not support precedence yet")
    names = list(app.names)
    n = len(names)
    if n > max_services:
        raise ValueError(
            f"DAG branch and bound is unreasonable for n={n} > {max_services}; "
            f"use the forest-restricted search or a heuristic"
        )
    exactness = Exactness.coerce(exactness)
    scaling = _Scaling(app, platform, mapping)
    minprod = _min_products(app)
    floors = _latency_floors(app, scaling, minprod)
    while True:
        use_float = exactness.uses_float
        conv = float if use_float else (lambda value: value)
        try:
            one = conv(ONE)
            sigma = [conv(app.selectivity(name)) for name in names]
            cost = [conv(app.cost(name)) for name in names]
            speed = [conv(scaling.speed(name)) for name in names]
            b_div = conv(scaling.comm_div)
            floor_list = [conv(floors[name]) for name in names]
            break
        except OverflowError:
            exactness = Exactness.EXACT  # beyond float range (see bb_minperiod)
    stats = BBStats()
    deadline_at = None if deadline is None else time.monotonic() + deadline

    def scored(graph: ExecutionGraph) -> Fraction:
        stats.evaluated += 1
        return objective(graph)

    if incumbent is None:
        incumbent = _seed_incumbent(
            app, scored, kind="latency", model=model,
            platform=platform, mapping=mapping, exactness=exactness,
        )
    best_value, best_graph = incumbent

    # Near-tie band thresholds — see bb_minperiod for the contract.
    certified = exactness is Exactness.CERTIFIED
    if use_float:
        cut, low_cut = _float_cuts(best_value, eps)
    else:
        cut = low_cut = best_value
    if certified:
        sigma_x = [app.selectivity(name) for name in names]
        cost_x = [app.cost(name) for name in names]
        speed_x = [scaling.speed(name) for name in names]
        b_div_x = scaling.comm_div
        floors_x = [floors[name] for name in names]
        root_bound_x = max(floors_x) if floors_x else Fraction(0)

    # State: (frozenset of placed indices, frozenset of (pred, succ) edges).
    State = Tuple[frozenset, frozenset]
    root_bound = max(floor_list) if floor_list else conv(Fraction(0))
    start: State = (frozenset(), frozenset())
    heap: List[Tuple] = []
    counter = itertools.count()
    gen = 0  # incumbent generation (see bb_minperiod)
    heapq.heappush(heap, (root_bound, n, next(counter), start, -1))
    seen = {start}

    while heap:
        bound, _, _, (placed, edges), state_gen = heapq.heappop(heap)
        if certified:
            worse = bound > cut
        elif use_float:
            worse = bound >= low_cut  # FAST: ties prune uncertified
        else:
            worse = bound >= cut
        if worse:
            break
        if node_limit is not None and stats.expanded >= node_limit:
            stats.limit_hit = True
            break
        if deadline_at is not None and time.monotonic() >= deadline_at:
            stats.limit_hit = True
            break

        order = sorted(placed)
        preds: Dict[int, List[int]] = {i: [] for i in order}
        for a, b in edges:
            preds[b].append(a)
        # Critical-path revival: ancestors of placed nodes are final.
        anc_set: Dict[int, frozenset] = {}
        anc_prod: Dict[int, object] = {}
        finish: Dict[int, object] = {}
        done: set = set()
        pending = [i for i in order]
        while pending:
            i = pending.pop(0)
            if any(p not in done for p in preds[i]):
                pending.append(i)
                continue
            acc = frozenset().union(*[anc_set[p] | {p} for p in preds[i]]) \
                if preds[i] else frozenset()
            anc_set[i] = acc
            prod = one
            for j in acc:
                prod *= sigma[j]
            anc_prod[i] = prod
            if preds[i]:
                start_t = max(
                    finish[p] + anc_prod[p] * sigma[p] / b_div for p in preds[i]
                )
            else:
                start_t = one / b_div
            finish[i] = start_t + prod * cost[i] / speed[i]
            done.add(i)

        if certified:
            # Lazy exact revival for near-tie arbitration: the state's
            # bound is max(static root bound, finish + out-message of each
            # placed node), every component final once the node is placed.
            exact_cache: Dict[str, object] = {}

            def exact_revive():
                found = exact_cache.get("finish")
                if found is None:
                    anc_prod_x: Dict[int, Fraction] = {}
                    finish_x: Dict[int, Fraction] = {}
                    for i in order:  # anc_set is complete: reuse its sets
                        prod_x = ONE
                        for j in anc_set[i]:
                            prod_x *= sigma_x[j]
                        anc_prod_x[i] = prod_x
                    exact_cache["anc"] = anc_prod_x
                    finish_pending = [i for i in order]
                    done_x: set = set()
                    while finish_pending:
                        i = finish_pending.pop(0)
                        if any(p not in done_x for p in preds[i]):
                            finish_pending.append(i)
                            continue
                        if preds[i]:
                            start_x = max(
                                finish_x[p] + anc_prod_x[p] * sigma_x[p] / b_div_x
                                for p in preds[i]
                            )
                        else:
                            start_x = ONE / b_div_x
                        finish_x[i] = start_x + anc_prod_x[i] * cost_x[i] / speed_x[i]
                        done_x.add(i)
                    exact_cache["finish"] = finish_x
                    found = finish_x
                return exact_cache["anc"], exact_cache["finish"]

            def exact_bound() -> Fraction:
                found = exact_cache.get("bound")
                if found is None:
                    anc_prod_x, finish_x = exact_revive()
                    found = root_bound_x
                    for i in order:
                        t = finish_x[i] + anc_prod_x[i] * sigma_x[i] / b_div_x
                        if t > found:
                            found = t
                    exact_cache["bound"] = found
                return found

            if (
                state_gen != gen
                and bound >= low_cut
                and exact_bound() >= best_value
            ):
                stats.pruned += 1
                continue
        stats.expanded += 1
        verified_gen = gen  # see bb_minperiod: children re-check if stale

        unplaced = [i for i in range(n) if i not in placed]
        placed_list = list(order)
        k = len(placed_list)
        for u in unplaced:
            for mask in range(1 << k):
                chosen = [placed_list[j] for j in range(k) if mask >> j & 1]
                acc = frozenset().union(
                    *[anc_set[p] | {p} for p in chosen]
                ) if chosen else frozenset()
                prod = one
                for j in acc:
                    prod *= sigma[j]
                if chosen:
                    start_t = max(
                        finish[p] + anc_prod[p] * sigma[p] / b_div for p in chosen
                    )
                else:
                    start_t = one / b_div
                finish_u = start_t + prod * cost[u] / speed[u]
                new_term = finish_u + prod * sigma[u] / b_div
                child_bound = bound if new_term <= bound else new_term
                if use_float and not certified:
                    if child_bound >= low_cut:  # FAST: uncertified pruning
                        stats.pruned += 1
                        continue
                elif certified:
                    if child_bound > cut:
                        stats.pruned += 1
                        continue
                    if child_bound >= low_cut:
                        # Near-tie band: exact arbitration (see bb_minperiod).
                        # The expanded state's exact bound is below the
                        # incumbent, so only the appended node's term matters.
                        anc_prod_x, finish_x = exact_revive()
                        prod_x = ONE
                        for j in acc:
                            prod_x *= sigma_x[j]
                        if chosen:
                            start_x = max(
                                finish_x[p] + anc_prod_x[p] * sigma_x[p] / b_div_x
                                for p in chosen
                            )
                        else:
                            start_x = ONE / b_div_x
                        new_term_x = (
                            start_x
                            + prod_x * cost_x[u] / speed_x[u]
                            + prod_x * sigma_x[u] / b_div_x
                        )
                        if new_term_x >= best_value:
                            stats.pruned += 1
                            continue
                elif child_bound >= cut:
                    stats.pruned += 1
                    continue
                child: State = (
                    placed | {u},
                    edges | {(p, u) for p in chosen},
                )
                if child in seen:
                    stats.duplicates += 1
                    continue
                seen.add(child)
                if len(placed) + 1 == n:
                    graph = ExecutionGraph(
                        app,
                        [(names[a], names[b]) for a, b in child[1]],
                        check_precedence=False,
                    )
                    value = scored(graph)
                    if value < best_value:
                        best_value, best_graph = value, graph
                        gen += 1
                        if use_float:
                            cut, low_cut = _float_cuts(best_value, eps)
                        else:
                            cut = low_cut = best_value
                        stats.incumbent_updates += 1
                    continue
                heapq.heappush(
                    heap,
                    (child_bound, n - len(placed) - 1, next(counter), child,
                     verified_gen),
                )

    return best_value, best_graph, stats


__all__ = [
    "BBStats",
    "MAX_BB_LATENCY_SERVICES",
    "bb_minlatency",
    "bb_minperiod",
]
