"""Full MinPeriod / MinLatency optimisation: exact search and heuristics."""

from .branch_and_bound import (
    BBStats,
    bb_minlatency,
    bb_minperiod,
)
from .chains import (
    brute_force_chain_latency,
    brute_force_chain_period,
    chain_latency,
    chain_period,
    greedy_chain_latency_order,
    greedy_chain_period_order,
    minlatency_chain,
    minperiod_chain,
)
from .evaluation import (
    Effort,
    latency_objective,
    make_latency_objective,
    make_period_objective,
    period_objective,
)
from .exhaustive import (
    exhaustive_minlatency,
    exhaustive_minperiod,
    iter_dags,
    iter_forests,
)
from .greedy import greedy_forest, greedy_minlatency, greedy_minperiod
from .incremental import (
    IncrementalForestPeriod,
    IncrementalMappingCosts,
    IncrementalSharedCosts,
    period_delta,
)
from .local_search import (
    local_search_forest,
    local_search_minlatency,
    local_search_minperiod,
    placement_local_search,
    shared_placement_local_search,
)
from .placement import (
    clear_placement_memo,
    greedy_mapping,
    greedy_shared_mapping,
    iter_mappings,
    iter_shared_mappings,
    mapping_space_size,
    optimize_mapping,
    optimize_shared_mapping,
    placement_memo_size,
    shared_space_size,
)
from .nocomm import (
    nocomm_latency,
    nocomm_optimal_latency_chain,
    nocomm_optimal_period_plan,
    nocomm_period,
)

__all__ = [
    "BBStats",
    "Effort",
    "IncrementalForestPeriod",
    "IncrementalMappingCosts",
    "IncrementalSharedCosts",
    "bb_minlatency",
    "bb_minperiod",
    "brute_force_chain_latency",
    "brute_force_chain_period",
    "chain_latency",
    "chain_period",
    "clear_placement_memo",
    "exhaustive_minlatency",
    "exhaustive_minperiod",
    "greedy_chain_latency_order",
    "greedy_chain_period_order",
    "greedy_forest",
    "greedy_mapping",
    "greedy_shared_mapping",
    "greedy_minlatency",
    "greedy_minperiod",
    "iter_dags",
    "iter_forests",
    "iter_mappings",
    "iter_shared_mappings",
    "latency_objective",
    "local_search_forest",
    "local_search_minlatency",
    "local_search_minperiod",
    "make_latency_objective",
    "make_period_objective",
    "mapping_space_size",
    "minlatency_chain",
    "minperiod_chain",
    "optimize_mapping",
    "optimize_shared_mapping",
    "period_delta",
    "placement_local_search",
    "placement_memo_size",
    "shared_placement_local_search",
    "shared_space_size",
    "nocomm_latency",
    "nocomm_optimal_latency_chain",
    "nocomm_optimal_period_plan",
    "nocomm_period",
    "period_objective",
]
