"""Chain-restricted MinPeriod and MinLatency (Propositions 8 and 16).

When the execution graph is forced to be a single linear chain, both
objectives become polynomial for all three models:

* **Period** (Prop 8): with ``c'_k = 1 + c_k + sigma_k`` (one-port models)
  or ``c'_k = max(1, c_k, sigma_k)`` (OVERLAP), place the services of
  selectivity < 1 by increasing ``c'_k``, followed by the services of
  selectivity >= 1 by increasing ``sigma_k / c'_k``.
* **Latency** (Prop 16): order all services by decreasing
  ``(1 - sigma_k) / (1 + c_k)``.

Both orders arise from adjacent-exchange arguments; the test-suite checks
them against brute force over all permutations on random instances.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

from ..core import Application, CommModel, ExecutionGraph

ONE = Fraction(1)


def chain_period(app: Application, order: Sequence[str], model: CommModel) -> Fraction:
    """Exact optimal period of the chain visiting *order* under *model*.

    On a chain the one-port lower bound ``max_k P_k (1 + c_k + sigma_k)``
    is achievable (no synchronisation conflicts: every cross-server cycle
    of the event graph is dominated by a single-server cycle), and the
    OVERLAP bound is always achievable (Theorem 1).

    Example::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> chain_period(app, ["A", "B"], CommModel.INORDER)   # max(7/2, 3)
        Fraction(7, 2)
        >>> chain_period(app, ["A", "B"], CommModel.OVERLAP)   # max(2, 2)
        Fraction(2, 1)
    """
    prefix = ONE
    best = Fraction(0)
    for name in order:
        c = app.cost(name)
        s = app.selectivity(name)
        if model.overlaps_compute:
            local = prefix * max(ONE, c, s)
        else:
            local = prefix * (ONE + c + s)
        if local > best:
            best = local
        prefix *= s
    return best


def chain_latency(app: Application, order: Sequence[str]) -> Fraction:
    """Exact latency of the chain visiting *order* (same for all models).

    Example::

        >>> from repro import make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> chain_latency(app, ["A", "B"])   # 1+2, then (1+4)/2, then 1/2
        Fraction(6, 1)
    """
    prefix = ONE
    total = Fraction(0)
    for name in order:
        total += prefix * (ONE + app.cost(name))
        prefix *= app.selectivity(name)
    return total + prefix  # final output communication


def greedy_chain_period_order(app: Application, model: CommModel) -> List[str]:
    """The Proposition-8 greedy order.

    Filters by increasing ``c'_k``, then expanders by increasing
    ``sigma_k / c'_k``.  Example::

        >>> from repro import CommModel, make_application
        >>> app = make_application(
        ...     [("big", 9, "1/2"), ("small", 1, "1/2"), ("exp", 1, 2)])
        >>> greedy_chain_period_order(app, CommModel.OVERLAP)
        ['small', 'big', 'exp']
    """

    def cprime(name: str) -> Fraction:
        c, s = app.cost(name), app.selectivity(name)
        if model.overlaps_compute:
            return max(ONE, c, s)
        return ONE + c + s

    filters = sorted(
        (s.name for s in app.services if s.selectivity < 1),
        key=lambda n: (cprime(n), n),
    )
    expanders = sorted(
        (s.name for s in app.services if s.selectivity >= 1),
        key=lambda n: (app.selectivity(n) / cprime(n), n),
    )
    return filters + expanders


def greedy_chain_latency_order(app: Application) -> List[str]:
    """The Proposition-16 greedy order: decreasing ``(1 - sigma)/(1 + c)``.

    Example::

        >>> from repro import make_application
        >>> app = make_application([("slow", 9, "1/2"), ("fast", 1, "1/2")])
        >>> greedy_chain_latency_order(app)
        ['fast', 'slow']
    """
    return sorted(
        (s.name for s in app.services),
        key=lambda n: (
            -(ONE - app.selectivity(n)) / (ONE + app.cost(n)),
            n,
        ),
    )


def minperiod_chain(
    app: Application, model: CommModel
) -> Tuple[Fraction, ExecutionGraph]:
    """Optimal chain plan for the period (greedy, Proposition 8).

    Returns ``(value, graph)``; the planner facade exposes this as
    ``solve(app, method="chain")``.  Example::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> value, graph = minperiod_chain(app, CommModel.OVERLAP)
        >>> value, graph.is_chain
        (Fraction(2, 1), True)
    """
    if app.precedence:
        raise ValueError("chain optimisation assumes no precedence constraints")
    order = greedy_chain_period_order(app, model)
    return chain_period(app, order, model), ExecutionGraph.chain(app, order)


def minlatency_chain(app: Application) -> Tuple[Fraction, ExecutionGraph]:
    """Optimal chain plan for the latency (greedy, Proposition 16).

    Example::

        >>> from repro import make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> minlatency_chain(app)[0]
        Fraction(6, 1)
    """
    if app.precedence:
        raise ValueError("chain optimisation assumes no precedence constraints")
    order = greedy_chain_latency_order(app)
    return chain_latency(app, order), ExecutionGraph.chain(app, order)


def brute_force_chain_period(
    app: Application, model: CommModel
) -> Tuple[Fraction, Tuple[str, ...]]:
    """Reference: try every permutation (tests only).

    Example::

        >>> from repro import CommModel, make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> brute_force_chain_period(app, CommModel.OVERLAP)[0]
        Fraction(2, 1)
    """
    best = None
    best_order: Tuple[str, ...] = ()
    for perm in itertools.permutations(app.names):
        val = chain_period(app, perm, model)
        if best is None or val < best:
            best, best_order = val, perm
    assert best is not None
    return best, best_order


def brute_force_chain_latency(
    app: Application,
) -> Tuple[Fraction, Tuple[str, ...]]:
    """Reference: try every permutation (tests only).

    Example::

        >>> from repro import make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> brute_force_chain_latency(app)[0]
        Fraction(6, 1)
    """
    best = None
    best_order: Tuple[str, ...] = ()
    for perm in itertools.permutations(app.names):
        val = chain_latency(app, perm)
        if best is None or val < best:
            best, best_order = val, perm
    assert best is not None
    return best, best_order


__all__ = [
    "brute_force_chain_latency",
    "brute_force_chain_period",
    "chain_latency",
    "chain_period",
    "greedy_chain_latency_order",
    "greedy_chain_period_order",
    "minlatency_chain",
    "minperiod_chain",
]
