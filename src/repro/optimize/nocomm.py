"""The communication-free baseline of Srivastava et al. [1] (paper's [1, 2]).

Without communication costs and on homogeneous servers, MinPeriod is
polynomial: some optimal plan chains all services of selectivity < 1
(by increasing cost) and attaches every service of selectivity >= 1 as an
independent leaf after the whole chain.  Appendix B.1 shows this structure
stops being optimal the moment communications are charged — this module
provides the baseline so the benchmarks can measure that effect.
"""

from __future__ import annotations

import functools
from fractions import Fraction
from typing import List, Tuple

from ..core import Application, CostModel, ExecutionGraph

ONE = Fraction(1)


def nocomm_period(graph: ExecutionGraph) -> Fraction:
    """Period of *graph* when communications are free: ``max_k Ccomp(k)``.

    Example::

        >>> from repro import ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> nocomm_period(ExecutionGraph.chain(app, ["A", "B"]))
        Fraction(4, 1)
    """
    costs = CostModel(graph)
    return max(costs.ccomp(n) for n in graph.nodes)


def nocomm_latency(graph: ExecutionGraph) -> Fraction:
    """Latency of *graph* when communications are free (critical path).

    Example::

        >>> from repro import ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> nocomm_latency(ExecutionGraph.chain(app, ["A", "B"]))
        Fraction(5, 1)
    """
    costs = CostModel(graph)
    finish = {}
    for node in graph.topological_order:
        start = max(
            (finish[p] for p in graph.predecessors(node)), default=Fraction(0)
        )
        finish[node] = start + costs.ccomp(node)
    return max(finish.values())


def nocomm_optimal_period_plan(app: Application) -> Tuple[Fraction, ExecutionGraph]:
    """The [1]-style optimal plan ignoring communications.

    Filters (selectivity < 1) are chained by increasing cost; every other
    service hangs off the end of the chain.  Returns the *communication-free*
    period together with the graph (which can then be re-evaluated under
    any communication model; the planner does exactly that as
    ``solve(app, method="nocomm")``).

    Example::

        >>> from repro import make_application
        >>> app = make_application(
        ...     [("f1", 2, "1/2"), ("f2", 1, "1/2"), ("x", 8, 1)])
        >>> value, graph = nocomm_optimal_period_plan(app)
        >>> value, sorted(graph.edges)
        (Fraction(2, 1), [('f1', 'x'), ('f2', 'f1')])
    """
    if app.precedence:
        raise ValueError("the baseline assumes no precedence constraints")
    filters = sorted(
        (s.name for s in app.services if s.selectivity < 1),
        key=lambda n: (app.cost(n), n),
    )
    others = [s.name for s in app.services if s.selectivity >= 1]
    edges: List[Tuple[str, str]] = list(zip(filters, filters[1:]))
    if filters:
        tail = filters[-1]
        edges.extend((tail, o) for o in others)
    graph = ExecutionGraph(app, edges)
    return nocomm_period(graph), graph


def _latency_cmp(app: Application):
    def cmp(i: str, j: str) -> int:
        # i before j iff c_i (1 - sigma_j) <= c_j (1 - sigma_i)
        lhs = app.cost(i) * (ONE - app.selectivity(j))
        rhs = app.cost(j) * (ONE - app.selectivity(i))
        if lhs < rhs:
            return -1
        if lhs > rhs:
            return 1
        return -1 if i < j else 1

    return cmp


def nocomm_optimal_latency_chain(app: Application) -> Tuple[Fraction, ExecutionGraph]:
    """Optimal *chain* for the communication-free latency ``sum_k P_k c_k``.

    Adjacent exchange gives the classical ratio rule ``c_i (1 - sigma_j)
    <= c_j (1 - sigma_i)`` (the ``c/(1 - sigma)`` rule of [1]).

    Example::

        >>> from repro import make_application
        >>> app = make_application([("slow", 9, "1/2"), ("fast", 1, "1/2")])
        >>> value, graph = nocomm_optimal_latency_chain(app)
        >>> value, sorted(graph.edges)
        (Fraction(11, 2), [('fast', 'slow')])
    """
    if app.precedence:
        raise ValueError("the baseline assumes no precedence constraints")
    order = sorted(app.names, key=functools.cmp_to_key(_latency_cmp(app)))
    graph = ExecutionGraph.chain(app, order)
    return nocomm_latency(graph), graph


__all__ = [
    "nocomm_latency",
    "nocomm_optimal_latency_chain",
    "nocomm_optimal_period_plan",
    "nocomm_period",
]
