"""Delta evaluation for the searches' hot paths (exact-Fraction parity).

The reparenting local search and the placement local search both score
hundreds of near-identical candidates per pass, and the baseline path
rebuilds an :class:`~repro.core.ExecutionGraph` plus a full
:class:`~repro.core.CostModel` for every one of them.  The Section-2.1
algebra makes that unnecessary:

* **Reparenting** a service ``v`` (moving its subtree under a new parent)
  rescales the ancestor-selectivity product of every node in ``v``'s
  subtree by a single factor ``f = P_new(v) / P_old(v)`` — so the
  subtree's ``Cin``/``Ccomp``/``Cout`` all scale by ``f`` — and only the
  old and new parents' ``Cout`` (one message removed / added) plus ``v``'s
  own ``Cin`` need recomputation.  :class:`IncrementalForestPeriod`
  maintains exactly those quantities.
* **Reassigning or swapping servers** on a fixed graph leaves every data
  size untouched; only the moved services' ``Ccomp`` (new speed) and the
  communication times of their incident edges (new links) change.
  :class:`IncrementalMappingCosts` recomputes just the touched services.

Both evaluators compute the same value as a fresh
:meth:`CostModel.period_lower_bound` — bit-for-bit, in exact
:class:`~fractions.Fraction` arithmetic (property-tested against full
recomputation).  That bound *is* the period objective for OVERLAP
(Theorem 1, on any platform) and for ``Effort.BOUND`` under the one-port
models, which is when the searches engage the delta path; other
configurations keep the full evaluation.

**Two numeric tiers.**  The evaluators are numeric-generic: every input
quantity passes through the class's ``_num`` hook once at construction,
after which all arithmetic stays in that tier.  The base classes keep the
identity hook (exact ``Fraction``s); the ``Float*`` twins
(:class:`FloatForestPeriod`, :class:`FloatMappingCosts`,
:class:`FloatSharedCosts`) convert to native floats, turning every delta
into a handful of float multiplies — one to two orders of magnitude
faster.  The ``Certified*`` wrappers pair an exact evaluator with its
float twin: candidates are scored on the float tier and only the ones
within the :data:`~repro.core.CERT_EPS` band of the current value are
re-scored exactly, so the accept/reject decisions — and hence the whole
search trajectory — stay **bit-for-bit identical** to the exact tier.

    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
    >>> inc = IncrementalForestPeriod(
    ...     ExecutionGraph.empty(app), model=CommModel.OVERLAP)
    >>> inc.value()
    Fraction(8, 1)
    >>> inc.score_reparent("B", "A")     # trial only — nothing committed
    Fraction(4, 1)
    >>> inc.apply_reparent("B", "A")
    >>> inc.value(), sorted(inc.graph().edges)
    (Fraction(4, 1), [('A', 'B')])
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core import (
    CERT_EPS,
    INPUT,
    OUTPUT,
    CommModel,
    CostModel,
    Exactness,
    ExecutionGraph,
    FloatCosts,
    GraphArrays,
    Mapping,
    Platform,
    certified_threshold,
)

ONE = Fraction(1)

#: A quantity in either numeric tier.
Num = Union[Fraction, float]


def _require_supported(
    platform: Optional[Platform], mapping: Optional[Mapping]
) -> Tuple[Optional[Platform], Optional[Mapping]]:
    """Unit platforms collapse to the paper's normalised model."""
    if mapping is not None and not mapping.is_injective:
        raise ValueError(
            "incremental reparenting assumes an injective mapping; use "
            "IncrementalSharedCosts for shared-server (concurrent) mappings"
        )
    if platform is None or platform.is_unit:
        return None, None
    if platform.has_contention:
        raise ValueError(
            "incremental evaluation does not model link contention: one "
            "move changes the flow counts, hence every co-routed edge's "
            "effective bandwidth; use FullPlacementCosts / a full "
            "CostModel recompute on contended topologies"
        )
    if mapping is None:
        raise ValueError(
            "incremental evaluation on a non-unit platform needs a pinned "
            "mapping (a free mapping re-optimises the placement per graph)"
        )
    return platform, mapping


class IncrementalForestPeriod:
    """Mutable ``Cin``/``Ccomp``/``Cout`` state of a forest, with deltas.

    Parameters mirror :class:`~repro.core.CostModel`: the value maintained
    is ``max_k Cexec(k)`` where ``Cexec`` is ``max(Cin, Ccomp, Cout)``
    under OVERLAP and the sum under the one-port models — i.e. exactly
    ``CostModel(graph, platform, mapping).period_lower_bound(model)``.

    ``score_reparent`` prices a candidate move without committing (``None``
    when the move would create a cycle); ``apply_reparent`` commits one.
    """

    #: Numeric-tier hook: every selectivity, cost, speed and bandwidth is
    #: converted through this exactly once.  The base class keeps exact
    #: ``Fraction``s; :class:`FloatForestPeriod` swaps in ``float``.
    _num = staticmethod(lambda value: value)

    def __init__(
        self,
        graph: ExecutionGraph,
        *,
        model: CommModel = CommModel.OVERLAP,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
    ) -> None:
        if not graph.is_forest:
            raise ValueError("incremental reparenting requires a forest")
        self.app = graph.application
        if self.app.precedence:
            raise ValueError("incremental reparenting assumes no precedence")
        self.model = model
        self.platform, self.mapping = _require_supported(platform, mapping)
        num = self._num
        self._one: Num = num(ONE)
        self._zero: Num = num(Fraction(0))
        self._sigma: Dict[str, Num] = {
            n: num(self.app.selectivity(n)) for n in self.app.names
        }
        self._costv: Dict[str, Num] = {
            n: num(self.app.cost(n)) for n in self.app.names
        }
        self._bw_cache: Dict[Tuple[str, str], Num] = {}
        self._speed_cache: Dict[str, Num] = {}
        self.parents: Dict[str, Optional[str]] = {}
        self.children: Dict[str, Set[str]] = {n: set() for n in self.app.names}
        for node in graph.nodes:
            preds = graph.predecessors(node)
            parent = preds[0] if preds else None
            self.parents[node] = parent
            if parent is not None:
                self.children[parent].add(node)
        self._anc: Dict[str, Num] = {}
        self._cin: Dict[str, Num] = {}
        self._ccomp: Dict[str, Num] = {}
        self._cout: Dict[str, Num] = {}
        for node in graph.topological_order:
            self._recompute(node)

    # -- platform helpers --------------------------------------------------
    def _bw(self, src: str, dst: str) -> Num:
        if self.platform is None:
            return self._one
        found = self._bw_cache.get((src, dst))
        if found is not None:
            return found
        endpoints = []
        for end in (src, dst):
            if end in (INPUT, OUTPUT):
                endpoints.append(end)
            else:
                endpoints.append(self.mapping.server(end))  # type: ignore[union-attr]
        value = self._num(self.platform.bandwidth(endpoints[0], endpoints[1]))
        self._bw_cache[(src, dst)] = value
        return value

    def _speed(self, node: str) -> Num:
        if self.platform is None:
            return self._one
        found = self._speed_cache.get(node)
        if found is None:
            found = self._speed_cache[node] = self._num(
                self.platform.speed(self.mapping.server(node))  # type: ignore[union-attr]
            )
        return found

    # -- per-node quantities ----------------------------------------------
    def _outsize(self, node: str) -> Num:
        return self._anc[node] * self._sigma[node]

    def _cin_of(self, node: str, parent: Optional[str], anc: Num) -> Num:
        if parent is None:
            return self._one / self._bw(INPUT, node)
        return anc / self._bw(parent, node)

    def _cout_of(
        self, node: str, anc: Num, children: Iterable[str]
    ) -> Num:
        outsize = anc * self._sigma[node]
        kids = list(children)
        if not kids:
            return outsize / self._bw(node, OUTPUT)
        return sum(
            (outsize / self._bw(node, child) for child in kids), self._zero
        )

    def _recompute(self, node: str) -> None:
        parent = self.parents[node]
        anc = self._one if parent is None else self._outsize(parent)
        self._anc[node] = anc
        self._cin[node] = self._cin_of(node, parent, anc)
        self._ccomp[node] = anc * self._costv[node] / self._speed(node)
        self._cout[node] = self._cout_of(node, anc, self.children[node])

    def _cexec(self, cin: Num, ccomp: Num, cout: Num) -> Num:
        if self.model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    # -- public API --------------------------------------------------------
    def value(self) -> Num:
        """``max_k Cexec(k)`` of the current forest."""
        return max(
            self._cexec(self._cin[n], self._ccomp[n], self._cout[n])
            for n in self.app.names
        )

    def subtree(self, node: str) -> List[str]:
        """*node* plus all its descendants (the set a reparent rescales)."""
        out = [node]
        stack = [node]
        while stack:
            for child in self.children[stack.pop()]:
                out.append(child)
                stack.append(child)
        return out

    def _trial(
        self, node: str, new_parent: Optional[str]
    ) -> Optional[Dict[str, Tuple[Num, Num, Num]]]:
        """(cin, ccomp, cout) overrides for the move, or ``None`` on a cycle."""
        old_parent = self.parents[node]
        if new_parent == old_parent or new_parent == node:
            return None
        sub = self.subtree(node)
        if new_parent is not None and new_parent in sub:
            return None  # the new parent descends from node: cycle
        overrides: Dict[str, Tuple[Num, Num, Num]] = {}
        new_anc = self._one if new_parent is None else self._outsize(new_parent)
        factor = new_anc / self._anc[node]  # selectivities are > 0
        for m in sub:
            if m == node:
                cin = self._cin_of(node, new_parent, new_anc)
            else:
                cin = self._cin[m] * factor
            overrides[m] = (
                cin, self._ccomp[m] * factor, self._cout[m] * factor
            )
        if old_parent is not None:
            kids = self.children[old_parent] - {node}
            overrides[old_parent] = (
                self._cin[old_parent],
                self._ccomp[old_parent],
                self._cout_of(old_parent, self._anc[old_parent], kids),
            )
        if new_parent is not None:
            kids = self.children[new_parent] | {node}
            overrides[new_parent] = (
                self._cin[new_parent],
                self._ccomp[new_parent],
                self._cout_of(new_parent, self._anc[new_parent], kids),
            )
        return overrides

    def score_reparent(self, node: str, new_parent: Optional[str]) -> Optional[Num]:
        """The period bound after moving *node* under *new_parent*.

        ``None`` means the move is invalid (cycle or no-op).  Costs
        ``O(|subtree| + n)``; nothing is committed.
        """
        overrides = self._trial(node, new_parent)
        if overrides is None:
            return None
        best = None
        for m in self.app.names:
            cin, ccomp, cout = overrides.get(
                m, (self._cin[m], self._ccomp[m], self._cout[m])
            )
            cexec = self._cexec(cin, ccomp, cout)
            if best is None or cexec > best:
                best = cexec
        assert best is not None
        return best

    def apply_reparent(self, node: str, new_parent: Optional[str]) -> None:
        """Commit a reparent previously priced by :meth:`score_reparent`."""
        overrides = self._trial(node, new_parent)
        if overrides is None:
            raise ValueError(
                f"reparenting {node!r} under {new_parent!r} is not a valid move"
            )
        old_parent = self.parents[node]
        if old_parent is not None:
            self.children[old_parent].discard(node)
        if new_parent is not None:
            self.children[new_parent].add(node)
        self.parents[node] = new_parent
        factor_base = self._anc[node]
        new_anc = self._one if new_parent is None else self._outsize(new_parent)
        factor = new_anc / factor_base
        for m in self.subtree(node):
            self._anc[m] *= factor
        for m, (cin, ccomp, cout) in overrides.items():
            self._cin[m], self._ccomp[m], self._cout[m] = cin, ccomp, cout

    def graph(self) -> ExecutionGraph:
        """The current forest as an :class:`~repro.core.ExecutionGraph`."""
        return ExecutionGraph.from_parents(self.app, self.parents)

    def parent_row(self) -> Tuple[int, ...]:
        """The current forest as a parent-vector row: one index into
        ``app.names`` per service, ``-1`` marking a root — the encoding
        :class:`~repro.core.ForestBatch` rows and the branch-and-bound
        state keys share."""
        names = self.app.names
        index = {name: i for i, name in enumerate(names)}
        return tuple(
            -1 if self.parents[name] is None else index[self.parents[name]]
            for name in names
        )


class FloatForestPeriod(IncrementalForestPeriod):
    """Float twin of :class:`IncrementalForestPeriod` (the fast tier).

    Same moves, same API, native-float arithmetic throughout — values
    agree with the exact evaluator to ~1e-13 relative (property-tested at
    1e-9).  Pair it with the exact class through
    :class:`CertifiedForestPeriod` when the search result must stay
    bit-for-bit exact.

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> fast = FloatForestPeriod(
        ...     ExecutionGraph.empty(app), model=CommModel.OVERLAP)
        >>> fast.value(), fast.score_reparent("B", "A")
        (8.0, 4.0)
    """

    _num = staticmethod(float)


class CertifiedForestPeriod:
    """Exact + float forest evaluators behind one certified interface.

    Candidate reparents are priced on the float tier; only candidates
    whose float value lands inside the :data:`~repro.core.CERT_EPS` band
    of the current value are re-priced exactly.  Because the float error
    is orders of magnitude below the band, every move the exact evaluator
    would accept gets an exact score here too — the search trajectory is
    bit-for-bit the exact one, at float cost for the (vast) majority of
    rejected candidates.  Drop-in wherever an
    :class:`IncrementalForestPeriod` is accepted.
    """

    __slots__ = ("exact", "fast", "eps", "_value", "_cut")

    def __init__(
        self,
        graph: ExecutionGraph,
        *,
        model: CommModel = CommModel.OVERLAP,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        eps: float = CERT_EPS,
    ) -> None:
        self.exact = IncrementalForestPeriod(
            graph, model=model, platform=platform, mapping=mapping
        )
        self.fast = FloatForestPeriod(
            graph, model=model, platform=platform, mapping=mapping
        )
        self.eps = eps
        self._refresh()

    def _refresh(self) -> None:
        self._value = self.exact.value()
        self._cut = certified_threshold(float(self._value), self.eps)

    def value(self) -> Fraction:
        return self.exact.value()

    def score_reparent(self, node: str, new_parent: Optional[str]) -> Optional[Num]:
        trial = self.fast.score_reparent(node, new_parent)
        if trial is None:
            return None
        if trial <= self._cut:
            return self.exact.score_reparent(node, new_parent)
        # Provably worse than the current value: the float score is safe
        # to return (it exceeds the exact current value too).
        return trial

    def apply_reparent(self, node: str, new_parent: Optional[str]) -> None:
        self.exact.apply_reparent(node, new_parent)
        self.fast.apply_reparent(node, new_parent)
        self._refresh()

    @property
    def parents(self) -> Dict[str, Optional[str]]:
        return self.exact.parents

    def subtree(self, node: str) -> List[str]:
        return self.exact.subtree(node)

    def graph(self) -> ExecutionGraph:
        return self.exact.graph()

    def parent_row(self) -> Tuple[int, ...]:
        return self.exact.parent_row()


def period_delta(
    graph: ExecutionGraph,
    model: CommModel,
    effort,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    exactness: Exactness = Exactness.EXACT,
) -> Optional["IncrementalForestPeriod"]:
    """An incremental forest evaluator when it provably computes the
    period objective for this configuration, else ``None``.

    The maintained quantity is the Section-2.1 bound, which *is* the
    objective for OVERLAP (Theorem 1, any platform — at every effort) and
    for the bound effort under the one-port models.  A non-unit platform
    needs a pinned mapping (a free mapping re-runs the placement optimiser
    per graph, which a structural delta cannot reproduce).  This is the
    eligibility rule shared by the local-search solver and the
    branch-and-bound incumbent seeding.

    *exactness* picks the numeric tier: ``EXACT`` returns the classic
    :class:`IncrementalForestPeriod`, ``CERTIFIED`` the
    :class:`CertifiedForestPeriod` pair (bit-for-bit identical decisions,
    float-priced rejections), ``FAST`` the :class:`FloatForestPeriod`
    twin (float values throughout — re-score the final graph exactly).
    """
    from .evaluation import Effort

    if model is not CommModel.OVERLAP and effort is not Effort.BOUND:
        return None
    if platform is not None and platform.has_contention:
        # One reparent changes the flow pattern, hence the effective
        # bandwidth of every co-routed edge — the subtree-rescale delta
        # is invalid.  Callers fall back to full recomputation.
        return None
    if platform is not None and not platform.is_unit and mapping is None:
        return None
    if mapping is not None and not mapping.is_injective:
        return None
    if not graph.is_forest or graph.application.precedence:
        return None
    exactness = Exactness.coerce(exactness)
    try:
        if exactness is Exactness.FAST:
            return FloatForestPeriod(
                graph, model=model, platform=platform, mapping=mapping
            )
        if exactness is Exactness.CERTIFIED:
            return CertifiedForestPeriod(  # type: ignore[return-value]
                graph, model=model, platform=platform, mapping=mapping
            )
    except OverflowError:
        pass  # beyond float range: the exact tier below is always correct
    return IncrementalForestPeriod(
        graph, model=model, platform=platform, mapping=mapping
    )


class IncrementalSharedCosts:
    """Delta evaluation of shared-server (non-injective) mappings.

    The concurrent-applications regime maps several services — possibly
    from different applications — onto one server.  The maintained value is
    the aggregated steady-state bound
    ``max_u Cexec(u)`` of :meth:`CostModel.server_cexec
    <repro.core.CostModel.server_cexec>`: per server, ``Cin``/``Ccomp``/
    ``Cout`` *sum* over co-located services (intra-server edges cost zero
    communication), combined by ``max`` under OVERLAP and by ``+`` under
    the one-port models — i.e. exactly ``CostModel(graph, platform,
    mapping).period_lower_bound(model)`` for the current shared mapping.

    Optional *weights* scale each service's three quantities (the
    concurrent planner passes ``1 / period_target`` of the owning
    application, turning the value into the max per-server *utilisation*).

    Moving one service touches only that service's triple, its graph
    neighbours' triples (their links to it change), and the per-server sums
    of the affected servers — so a reassign/swap is priced in
    ``O(degree)`` instead of a full recompute (exact-Fraction parity,
    property-tested).

        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel
        >>> app = make_application([("A", 2, 1), ("B", 3, 1)])
        >>> inc = IncrementalSharedCosts(
        ...     ExecutionGraph.empty(app), Platform.homogeneous(2),
        ...     Mapping.shared({"A": "S1", "B": "S1"}))
        >>> inc.value(), inc.score_reassign("B", "S2")
        (Fraction(5, 1), Fraction(3, 1))
    """

    #: Numeric-tier hook (see :class:`IncrementalForestPeriod`).
    _num = staticmethod(lambda value: value)

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
        weights: Optional[Dict[str, Fraction]] = None,
    ) -> None:
        mapping.validate_on(graph.nodes, platform)
        if platform.has_contention:
            raise ValueError(
                "IncrementalSharedCosts assumes static link bandwidths; "
                "contended topologies need FullPlacementCosts (one move "
                "changes every co-routed edge's effective bandwidth)"
            )
        self.graph = graph
        self.platform = platform
        self.model = model
        num = self._num
        self._one: Num = num(ONE)
        self._zero: Num = num(Fraction(0))
        self.weights: Dict[str, Num] = (
            {k: num(v) for k, v in weights.items()} if weights else {}
        )
        self._bw_cache: Dict[Tuple[str, str], Num] = {}
        self._speed_cache: Dict[str, Num] = {}
        self.assignment: Dict[str, str] = {
            svc: mapping.server(svc) for svc in graph.nodes
        }
        app = graph.application
        self._outsize: Dict[str, Num] = {}
        self._work: Dict[str, Num] = {}
        sigma = {n: num(app.selectivity(n)) for n in app.names}
        costv = {n: num(app.cost(n)) for n in app.names}
        for node in graph.topological_order:
            prod = self._one
            for j in graph.ancestors(node):
                prod *= sigma[j]
            self._outsize[node] = prod * sigma[node]
            self._work[node] = prod * costv[node]
        self._triple: Dict[str, Tuple[Num, Num, Num]] = {}
        self._sums: Dict[str, List[Num]] = {}
        for node in graph.nodes:
            self._triple[node] = self._node_triple(node, self.assignment)
        self._rebuild_sums()

    # -- internals ---------------------------------------------------------
    def _bw(self, src: str, dst: str) -> Num:
        found = self._bw_cache.get((src, dst))
        if found is None:
            found = self._bw_cache[(src, dst)] = self._num(
                self.platform.bandwidth(src, dst)
            )
        return found

    def _sp(self, server: str) -> Num:
        found = self._speed_cache.get(server)
        if found is None:
            found = self._speed_cache[server] = self._num(
                self.platform.speed(server)
            )
        return found

    def _node_triple(
        self, node: str, assignment: Dict[str, str]
    ) -> Tuple[Num, Num, Num]:
        """Weighted (Cin, Ccomp, Cout) of *node* under *assignment*."""
        graph = self.graph
        server = assignment[node]
        preds = graph.predecessors(node)
        if preds:
            cin = sum(
                (
                    self._outsize[p] / self._bw(assignment[p], server)
                    for p in preds
                    if assignment[p] != server
                ),
                self._zero,
            )
        else:
            cin = self._one / self._bw(INPUT, server)
        ccomp = self._work[node] / self._sp(server)
        succs = graph.successors(node)
        if succs:
            cout = sum(
                (
                    self._outsize[node] / self._bw(server, assignment[s])
                    for s in succs
                    if assignment[s] != server
                ),
                self._zero,
            )
        else:
            cout = self._outsize[node] / self._bw(server, OUTPUT)
        w = self.weights.get(node)
        if w is not None and w != 1:
            return (cin * w, ccomp * w, cout * w)
        return (cin, ccomp, cout)

    def _rebuild_sums(self) -> None:
        sums: Dict[str, List[Num]] = {}
        for node, (cin, ccomp, cout) in self._triple.items():
            acc = sums.setdefault(
                self.assignment[node], [self._zero, self._zero, self._zero]
            )
            acc[0] += cin
            acc[1] += ccomp
            acc[2] += cout
        self._sums = sums

    def _affected(self, moved: Iterable[str]) -> Set[str]:
        out: Set[str] = set()
        for svc in moved:
            out.add(svc)
            out.update(self.graph.predecessors(svc))
            out.update(self.graph.successors(svc))
        return out

    def _combine(self, sums: Sequence[Num]) -> Num:
        if self.model.overlaps_compute:
            return max(sums)
        return sums[0] + sums[1] + sums[2]

    def _trial_sums(
        self, trial: Dict[str, str], moved: Iterable[str]
    ) -> Dict[str, List[Num]]:
        """Per-server sums after the move (only affected servers copied)."""
        sums = dict(self._sums)
        affected = self._affected(moved)
        touched = {self.assignment[m] for m in affected}
        touched |= {trial[m] for m in affected}
        for server in touched:
            sums[server] = list(
                sums.get(server, (self._zero, self._zero, self._zero))
            )
        for m in affected:
            old = self._triple[m]
            acc = sums[self.assignment[m]]
            acc[0] -= old[0]
            acc[1] -= old[1]
            acc[2] -= old[2]
        for m in affected:
            new = self._node_triple(m, trial)
            acc = sums[trial[m]]
            acc[0] += new[0]
            acc[1] += new[1]
            acc[2] += new[2]
        return sums

    def _value_of(self, sums: Dict[str, List[Num]], trial: Dict[str, str]) -> Num:
        used = set(trial.values())
        return max(self._combine(sums[u]) for u in used)

    # -- public API --------------------------------------------------------
    def value(self) -> Num:
        """``max_u Cexec(u)`` (weighted) of the current shared mapping."""
        return max(self._combine(acc) for acc in self._sums.values())

    def mapping(self) -> Mapping:
        return Mapping.shared(self.assignment)

    def score_reassign(self, service: str, server: str) -> Num:
        """Price moving *service* onto *server* (shared — any server)."""
        trial = dict(self.assignment)
        trial[service] = server
        return self._value_of(self._trial_sums(trial, [service]), trial)

    def apply_reassign(self, service: str, server: str) -> None:
        trial = dict(self.assignment)
        trial[service] = server
        self._commit(trial, [service])

    def score_swap(self, a: str, b: str) -> Num:
        """Price exchanging the servers of services *a* and *b*."""
        trial = dict(self.assignment)
        trial[a], trial[b] = trial[b], trial[a]
        return self._value_of(self._trial_sums(trial, [a, b]), trial)

    def apply_swap(self, a: str, b: str) -> None:
        trial = dict(self.assignment)
        trial[a], trial[b] = trial[b], trial[a]
        self._commit(trial, [a, b])

    def _commit(self, trial: Dict[str, str], moved: Iterable[str]) -> None:
        affected = self._affected(moved)
        sums = self._trial_sums(trial, moved)
        for m in affected:
            self._triple[m] = self._node_triple(m, trial)
        self.assignment = trial
        # Drop emptied servers so value() never reads a stale zero row.
        used = set(trial.values())
        self._sums = {u: acc for u, acc in sums.items() if u in used}


class IncrementalMappingCosts(IncrementalSharedCosts):
    """Delta evaluation of server reassignments/swaps, injective mappings.

    The paper's one-service-per-server regime as a strict specialisation
    of :class:`IncrementalSharedCosts`: with an injective mapping every
    per-server sum is a single service's triple, intra-server zeroing
    never fires, and the maintained value is the paper's
    ``max_k Cexec(k)`` — i.e. ``CostModel(graph, platform,
    mapping).period_lower_bound(model)``.  The injective-only constructor
    keeps the placement local search honest (its reassign moves target
    idle servers, so the assignment stays one-to-one).

        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel
        >>> app = make_application([("A", 1, 1), ("B", 9, 1)])
        >>> platform = Platform.of(speeds=[1, 1, 3])
        >>> inc = IncrementalMappingCosts(
        ...     ExecutionGraph.empty(app), platform,
        ...     Mapping({"A": "S1", "B": "S2"}), model=CommModel.OVERLAP)
        >>> inc.value(), inc.score_reassign("B", "S3")
        (Fraction(9, 1), Fraction(3, 1))
    """

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
    ) -> None:
        if not mapping.is_injective:
            raise ValueError(
                "IncrementalMappingCosts assumes an injective mapping; use "
                "IncrementalSharedCosts for shared-server mappings"
            )
        super().__init__(graph, platform, mapping, model=model)

    def mapping(self) -> Mapping:
        return Mapping(self.assignment)


class FloatSharedCosts(IncrementalSharedCosts):
    """Float twin of :class:`IncrementalSharedCosts` (the fast tier)."""

    _num = staticmethod(float)


class FloatMappingCosts(IncrementalMappingCosts):
    """Float twin of :class:`IncrementalMappingCosts` (the fast tier)."""

    _num = staticmethod(float)


class CertifiedPlacementCosts:
    """Exact + float placement evaluators behind one certified interface.

    Same protocol as :class:`CertifiedForestPeriod`, for the reassignment/
    swap moves of the placement searches: float-tier pricing, exact
    re-pricing inside the :data:`~repro.core.CERT_EPS` band, committed
    moves applied to both tiers.  Wraps the injective pair by default;
    pass ``shared=True`` for the shared-server (concurrent) pair.
    """

    __slots__ = ("exact", "fast", "eps", "_value", "_cut")

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
        weights: Optional[Dict[str, Fraction]] = None,
        shared: bool = False,
        eps: float = CERT_EPS,
    ) -> None:
        if shared:
            self.exact = IncrementalSharedCosts(
                graph, platform, mapping, model=model, weights=weights
            )
            self.fast: IncrementalSharedCosts = FloatSharedCosts(
                graph, platform, mapping, model=model, weights=weights
            )
        else:
            if weights:
                raise ValueError("weights only apply to shared placements")
            self.exact = IncrementalMappingCosts(
                graph, platform, mapping, model=model
            )
            self.fast = FloatMappingCosts(graph, platform, mapping, model=model)
        self.eps = eps
        self._refresh()

    def _refresh(self) -> None:
        self._value = self.exact.value()
        self._cut = certified_threshold(float(self._value), self.eps)

    @property
    def assignment(self) -> Dict[str, str]:
        return self.exact.assignment

    def value(self) -> Fraction:
        return self.exact.value()

    def mapping(self) -> Mapping:
        return self.exact.mapping()

    def score_reassign(self, service: str, server: str) -> Num:
        trial = self.fast.score_reassign(service, server)
        if trial <= self._cut:
            return self.exact.score_reassign(service, server)
        return trial

    def apply_reassign(self, service: str, server: str) -> None:
        self.exact.apply_reassign(service, server)
        self.fast.apply_reassign(service, server)
        self._refresh()

    def score_swap(self, a: str, b: str) -> Num:
        trial = self.fast.score_swap(a, b)
        if trial <= self._cut:
            return self.exact.score_swap(a, b)
        return trial

    def apply_swap(self, a: str, b: str) -> None:
        self.exact.apply_swap(a, b)
        self.fast.apply_swap(a, b)
        self._refresh()


def exact_placement_value(
    graph: ExecutionGraph,
    platform: Optional[Platform],
    mapping: Mapping,
    *,
    model: CommModel = CommModel.OVERLAP,
    weights: Optional[Dict[str, Fraction]] = None,
    shared: bool = False,
) -> Fraction:
    """Exact (Fraction) placement objective of one concrete mapping.

    The value the incremental evaluators maintain, computed from scratch
    through :class:`~repro.core.CostModel` — which prices contended
    topologies correctly (effective bandwidths under the mapping's flow
    pattern).  ``shared``/*weights* switch to the per-server weighted
    aggregation of the concurrent regime; otherwise this is
    ``CostModel(...).period_lower_bound(model)`` verbatim.
    """
    costs = CostModel(graph, platform, mapping)
    if not shared and not weights:
        return costs.period_lower_bound(model)
    zero = Fraction(0)
    sums: Dict[str, List[Fraction]] = {}
    for node in graph.nodes:
        acc = sums.setdefault(mapping.server(node), [zero, zero, zero])
        w = weights.get(node, ONE) if weights else ONE
        acc[0] += w * costs.cin(node)
        acc[1] += w * costs.ccomp(node)
        acc[2] += w * costs.cout(node)
    if model.overlaps_compute:
        return max(max(acc) for acc in sums.values())
    return max(acc[0] + acc[1] + acc[2] for acc in sums.values())


class FullPlacementCosts:
    """Full-recompute placement evaluator for contended topologies.

    On a contended topology one reassign changes the flow counts on every
    link its edges share — and with them the effective bandwidth of every
    co-routed edge — so the ``O(degree)`` deltas of
    :class:`IncrementalSharedCosts` are invalid.  This evaluator speaks
    the same protocol (``value``/``score_*``/``apply_*``/``assignment``/
    ``mapping``) but re-prices each candidate mapping from scratch:
    the float tier (:class:`~repro.core.FloatCosts`, sharing one
    :class:`~repro.core.GraphArrays`) scores candidates, and the
    certified tier re-prices exactly inside the
    :data:`~repro.core.CERT_EPS` band, keeping accept/reject decisions —
    and the returned value — bit-for-bit the all-``Fraction`` ones.
    """

    __slots__ = (
        "graph", "platform", "model", "weights", "shared", "exactness",
        "eps", "assignment", "_arrays", "_allow_shared", "_value", "_cut",
    )

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
        weights: Optional[Dict[str, Fraction]] = None,
        shared: bool = False,
        exactness: Exactness = Exactness.CERTIFIED,
        eps: float = CERT_EPS,
    ) -> None:
        mapping.validate_on(graph.nodes, platform)
        self.graph = graph
        self.platform = platform
        self.model = model
        self.weights = dict(weights) if weights else None
        self.shared = shared or bool(weights)
        self._allow_shared = shared
        self.exactness = Exactness.coerce(exactness)
        self.eps = eps
        self._arrays = GraphArrays(graph)
        self.assignment: Dict[str, str] = {
            svc: mapping.server(svc) for svc in graph.nodes
        }
        self._refresh()

    # -- pricing -----------------------------------------------------------
    def _mapping_of(self, assignment: Dict[str, str]) -> Mapping:
        return Mapping(assignment, shared=self._allow_shared)

    def _float_value(self, mapping: Mapping) -> float:
        fast = FloatCosts(
            self.graph, self.platform, mapping,
            arrays=self._arrays, weights=self.weights,
        )
        return fast.period_lower_bound(self.model)

    def _exact_value(self, mapping: Mapping) -> Fraction:
        return exact_placement_value(
            self.graph, self.platform, mapping,
            model=self.model, weights=self.weights, shared=self.shared,
        )

    def _score(self, mapping: Mapping) -> Num:
        if self.exactness is not Exactness.EXACT:
            try:
                trial = self._float_value(mapping)
            except OverflowError:
                trial = None
            if trial is not None and (
                self.exactness is Exactness.FAST or trial > self._cut
            ):
                return trial
        return self._exact_value(mapping)

    def _refresh(self) -> None:
        current = self._mapping_of(self.assignment)
        if self.exactness is Exactness.FAST:
            try:
                self._value: Num = self._float_value(current)
            except OverflowError:
                self._value = self._exact_value(current)
        else:
            self._value = self._exact_value(current)
        try:
            self._cut = certified_threshold(float(self._value), self.eps)
        except OverflowError:
            self._cut = float("inf")  # arbitrate everything exactly

    # -- public API (the incremental evaluators' protocol) ------------------
    def value(self) -> Num:
        return self._value

    def mapping(self) -> Mapping:
        return self._mapping_of(self.assignment)

    def score_reassign(self, service: str, server: str) -> Num:
        trial = dict(self.assignment)
        trial[service] = server
        return self._score(self._mapping_of(trial))

    def apply_reassign(self, service: str, server: str) -> None:
        self.assignment = dict(self.assignment)
        self.assignment[service] = server
        self._refresh()

    def score_swap(self, a: str, b: str) -> Num:
        trial = dict(self.assignment)
        trial[a], trial[b] = trial[b], trial[a]
        return self._score(self._mapping_of(trial))

    def apply_swap(self, a: str, b: str) -> None:
        self.assignment = dict(self.assignment)
        self.assignment[a], self.assignment[b] = (
            self.assignment[b], self.assignment[a]
        )
        self._refresh()


def placement_evaluator(
    graph: ExecutionGraph,
    platform: Platform,
    mapping: Mapping,
    *,
    model: CommModel = CommModel.OVERLAP,
    weights: Optional[Dict[str, Fraction]] = None,
    shared: bool = False,
    exactness: Exactness = Exactness.EXACT,
):
    """The placement delta evaluator matching one exactness tier.

    ``EXACT`` builds the classic Fraction evaluator, ``CERTIFIED`` the
    paired :class:`CertifiedPlacementCosts` (bit-for-bit identical search
    decisions), ``FAST`` the float twin (re-score the winner exactly).
    Contended topologies always dispatch to :class:`FullPlacementCosts`
    (same protocol, full recompute per candidate) — the incremental
    deltas are invalid there.
    """
    exactness = Exactness.coerce(exactness)
    if platform.has_contention:
        return FullPlacementCosts(
            graph, platform, mapping, model=model, weights=weights,
            shared=shared, exactness=exactness,
        )
    try:
        if exactness is Exactness.CERTIFIED:
            return CertifiedPlacementCosts(
                graph, platform, mapping, model=model, weights=weights,
                shared=shared,
            )
        if exactness is Exactness.FAST:
            if shared:
                return FloatSharedCosts(
                    graph, platform, mapping, model=model, weights=weights
                )
            return FloatMappingCosts(graph, platform, mapping, model=model)
    except OverflowError:
        pass  # beyond float range: the exact tier below is always correct
    if shared:
        return IncrementalSharedCosts(
            graph, platform, mapping, model=model, weights=weights
        )
    return IncrementalMappingCosts(graph, platform, mapping, model=model)


__all__ = [
    "CertifiedForestPeriod",
    "CertifiedPlacementCosts",
    "FloatForestPeriod",
    "FloatMappingCosts",
    "FloatSharedCosts",
    "FullPlacementCosts",
    "IncrementalForestPeriod",
    "IncrementalMappingCosts",
    "IncrementalSharedCosts",
    "exact_placement_value",
    "period_delta",
    "placement_evaluator",
]
