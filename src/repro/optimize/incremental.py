"""Delta evaluation for the searches' hot paths (exact-Fraction parity).

The reparenting local search and the placement local search both score
hundreds of near-identical candidates per pass, and the baseline path
rebuilds an :class:`~repro.core.ExecutionGraph` plus a full
:class:`~repro.core.CostModel` for every one of them.  The Section-2.1
algebra makes that unnecessary:

* **Reparenting** a service ``v`` (moving its subtree under a new parent)
  rescales the ancestor-selectivity product of every node in ``v``'s
  subtree by a single factor ``f = P_new(v) / P_old(v)`` — so the
  subtree's ``Cin``/``Ccomp``/``Cout`` all scale by ``f`` — and only the
  old and new parents' ``Cout`` (one message removed / added) plus ``v``'s
  own ``Cin`` need recomputation.  :class:`IncrementalForestPeriod`
  maintains exactly those quantities.
* **Reassigning or swapping servers** on a fixed graph leaves every data
  size untouched; only the moved services' ``Ccomp`` (new speed) and the
  communication times of their incident edges (new links) change.
  :class:`IncrementalMappingCosts` recomputes just the touched services.

Both evaluators compute the same value as a fresh
:meth:`CostModel.period_lower_bound` — bit-for-bit, in exact
:class:`~fractions.Fraction` arithmetic (property-tested against full
recomputation).  That bound *is* the period objective for OVERLAP
(Theorem 1, on any platform) and for ``Effort.BOUND`` under the one-port
models, which is when the searches engage the delta path; other
configurations keep the full evaluation.

    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
    >>> inc = IncrementalForestPeriod(
    ...     ExecutionGraph.empty(app), model=CommModel.OVERLAP)
    >>> inc.value()
    Fraction(8, 1)
    >>> inc.score_reparent("B", "A")     # trial only — nothing committed
    Fraction(4, 1)
    >>> inc.apply_reparent("B", "A")
    >>> inc.value(), sorted(inc.graph().edges)
    (Fraction(4, 1), [('A', 'B')])
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import (
    INPUT,
    OUTPUT,
    CommModel,
    ExecutionGraph,
    Mapping,
    Platform,
)

ONE = Fraction(1)


def _require_supported(
    platform: Optional[Platform], mapping: Optional[Mapping]
) -> Tuple[Optional[Platform], Optional[Mapping]]:
    """Unit platforms collapse to the paper's normalised model."""
    if platform is None or platform.is_unit:
        return None, None
    if mapping is None:
        raise ValueError(
            "incremental evaluation on a non-unit platform needs a pinned "
            "mapping (a free mapping re-optimises the placement per graph)"
        )
    return platform, mapping


class IncrementalForestPeriod:
    """Mutable ``Cin``/``Ccomp``/``Cout`` state of a forest, with deltas.

    Parameters mirror :class:`~repro.core.CostModel`: the value maintained
    is ``max_k Cexec(k)`` where ``Cexec`` is ``max(Cin, Ccomp, Cout)``
    under OVERLAP and the sum under the one-port models — i.e. exactly
    ``CostModel(graph, platform, mapping).period_lower_bound(model)``.

    ``score_reparent`` prices a candidate move without committing (``None``
    when the move would create a cycle); ``apply_reparent`` commits one.
    """

    def __init__(
        self,
        graph: ExecutionGraph,
        *,
        model: CommModel = CommModel.OVERLAP,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
    ) -> None:
        if not graph.is_forest:
            raise ValueError("incremental reparenting requires a forest")
        self.app = graph.application
        if self.app.precedence:
            raise ValueError("incremental reparenting assumes no precedence")
        self.model = model
        self.platform, self.mapping = _require_supported(platform, mapping)
        self.parents: Dict[str, Optional[str]] = {}
        self.children: Dict[str, Set[str]] = {n: set() for n in self.app.names}
        for node in graph.nodes:
            preds = graph.predecessors(node)
            parent = preds[0] if preds else None
            self.parents[node] = parent
            if parent is not None:
                self.children[parent].add(node)
        self._anc: Dict[str, Fraction] = {}
        self._cin: Dict[str, Fraction] = {}
        self._ccomp: Dict[str, Fraction] = {}
        self._cout: Dict[str, Fraction] = {}
        for node in graph.topological_order:
            self._recompute(node)

    # -- platform helpers --------------------------------------------------
    def _bw(self, src: str, dst: str) -> Fraction:
        if self.platform is None:
            return ONE
        endpoints = []
        for end in (src, dst):
            if end in (INPUT, OUTPUT):
                endpoints.append(end)
            else:
                endpoints.append(self.mapping.server(end))  # type: ignore[union-attr]
        return self.platform.bandwidth(endpoints[0], endpoints[1])

    def _speed(self, node: str) -> Fraction:
        if self.platform is None:
            return ONE
        return self.platform.speed(self.mapping.server(node))  # type: ignore[union-attr]

    # -- per-node quantities ----------------------------------------------
    def _outsize(self, node: str) -> Fraction:
        return self._anc[node] * self.app.selectivity(node)

    def _cin_of(self, node: str, parent: Optional[str], anc: Fraction) -> Fraction:
        if parent is None:
            return ONE / self._bw(INPUT, node)
        return anc / self._bw(parent, node)

    def _cout_of(
        self, node: str, anc: Fraction, children: Iterable[str]
    ) -> Fraction:
        outsize = anc * self.app.selectivity(node)
        kids = list(children)
        if not kids:
            return outsize / self._bw(node, OUTPUT)
        return sum(
            (outsize / self._bw(node, child) for child in kids), Fraction(0)
        )

    def _recompute(self, node: str) -> None:
        parent = self.parents[node]
        anc = ONE if parent is None else self._outsize(parent)
        self._anc[node] = anc
        self._cin[node] = self._cin_of(node, parent, anc)
        self._ccomp[node] = anc * self.app.cost(node) / self._speed(node)
        self._cout[node] = self._cout_of(node, anc, self.children[node])

    def _cexec(self, cin: Fraction, ccomp: Fraction, cout: Fraction) -> Fraction:
        if self.model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    # -- public API --------------------------------------------------------
    def value(self) -> Fraction:
        """``max_k Cexec(k)`` of the current forest."""
        return max(
            self._cexec(self._cin[n], self._ccomp[n], self._cout[n])
            for n in self.app.names
        )

    def subtree(self, node: str) -> List[str]:
        """*node* plus all its descendants (the set a reparent rescales)."""
        out = [node]
        stack = [node]
        while stack:
            for child in self.children[stack.pop()]:
                out.append(child)
                stack.append(child)
        return out

    def _trial(
        self, node: str, new_parent: Optional[str]
    ) -> Optional[Dict[str, Tuple[Fraction, Fraction, Fraction]]]:
        """(cin, ccomp, cout) overrides for the move, or ``None`` on a cycle."""
        old_parent = self.parents[node]
        if new_parent == old_parent or new_parent == node:
            return None
        sub = self.subtree(node)
        if new_parent is not None and new_parent in sub:
            return None  # the new parent descends from node: cycle
        overrides: Dict[str, Tuple[Fraction, Fraction, Fraction]] = {}
        new_anc = ONE if new_parent is None else self._outsize(new_parent)
        factor = new_anc / self._anc[node]  # selectivities are > 0
        for m in sub:
            if m == node:
                cin = self._cin_of(node, new_parent, new_anc)
            else:
                cin = self._cin[m] * factor
            overrides[m] = (
                cin, self._ccomp[m] * factor, self._cout[m] * factor
            )
        if old_parent is not None:
            kids = self.children[old_parent] - {node}
            overrides[old_parent] = (
                self._cin[old_parent],
                self._ccomp[old_parent],
                self._cout_of(old_parent, self._anc[old_parent], kids),
            )
        if new_parent is not None:
            kids = self.children[new_parent] | {node}
            overrides[new_parent] = (
                self._cin[new_parent],
                self._ccomp[new_parent],
                self._cout_of(new_parent, self._anc[new_parent], kids),
            )
        return overrides

    def score_reparent(self, node: str, new_parent: Optional[str]) -> Optional[Fraction]:
        """The period bound after moving *node* under *new_parent*.

        ``None`` means the move is invalid (cycle or no-op).  Costs
        ``O(|subtree| + n)``; nothing is committed.
        """
        overrides = self._trial(node, new_parent)
        if overrides is None:
            return None
        best = None
        for m in self.app.names:
            cin, ccomp, cout = overrides.get(
                m, (self._cin[m], self._ccomp[m], self._cout[m])
            )
            cexec = self._cexec(cin, ccomp, cout)
            if best is None or cexec > best:
                best = cexec
        assert best is not None
        return best

    def apply_reparent(self, node: str, new_parent: Optional[str]) -> None:
        """Commit a reparent previously priced by :meth:`score_reparent`."""
        overrides = self._trial(node, new_parent)
        if overrides is None:
            raise ValueError(
                f"reparenting {node!r} under {new_parent!r} is not a valid move"
            )
        old_parent = self.parents[node]
        if old_parent is not None:
            self.children[old_parent].discard(node)
        if new_parent is not None:
            self.children[new_parent].add(node)
        self.parents[node] = new_parent
        factor_base = self._anc[node]
        new_anc = ONE if new_parent is None else self._outsize(new_parent)
        factor = new_anc / factor_base
        for m in self.subtree(node):
            self._anc[m] *= factor
        for m, (cin, ccomp, cout) in overrides.items():
            self._cin[m], self._ccomp[m], self._cout[m] = cin, ccomp, cout

    def graph(self) -> ExecutionGraph:
        """The current forest as an :class:`~repro.core.ExecutionGraph`."""
        return ExecutionGraph.from_parents(self.app, self.parents)


def period_delta(
    graph: ExecutionGraph,
    model: CommModel,
    effort,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional["IncrementalForestPeriod"]:
    """An :class:`IncrementalForestPeriod` when it provably computes the
    period objective for this configuration, else ``None``.

    The maintained quantity is the Section-2.1 bound, which *is* the
    objective for OVERLAP (Theorem 1, any platform — at every effort) and
    for the bound effort under the one-port models.  A non-unit platform
    needs a pinned mapping (a free mapping re-runs the placement optimiser
    per graph, which a structural delta cannot reproduce).  This is the
    eligibility rule shared by the local-search solver and the
    branch-and-bound incumbent seeding.
    """
    from .evaluation import Effort

    if model is not CommModel.OVERLAP and effort is not Effort.BOUND:
        return None
    if platform is not None and not platform.is_unit and mapping is None:
        return None
    if not graph.is_forest or graph.application.precedence:
        return None
    return IncrementalForestPeriod(
        graph, model=model, platform=platform, mapping=mapping
    )


class IncrementalMappingCosts:
    """Delta evaluation of server reassignments/swaps on a fixed graph.

    Data sizes are structure-only, so changing the mapping never touches
    ancestor products — only the moved services' ``Ccomp`` (server speed)
    and the transfer times of their incident messages (link bandwidths).
    The maintained value is ``CostModel(graph, platform,
    mapping).period_lower_bound(model)`` for the current mapping.

        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel
        >>> app = make_application([("A", 1, 1), ("B", 9, 1)])
        >>> platform = Platform.of(speeds=[1, 1, 3])
        >>> inc = IncrementalMappingCosts(
        ...     ExecutionGraph.empty(app), platform,
        ...     Mapping({"A": "S1", "B": "S2"}), model=CommModel.OVERLAP)
        >>> inc.value(), inc.score_reassign("B", "S3")
        (Fraction(9, 1), Fraction(3, 1))
    """

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
    ) -> None:
        mapping.validate_on(graph.nodes, platform)
        self.graph = graph
        self.platform = platform
        self.model = model
        self.assignment: Dict[str, str] = {
            svc: mapping.server(svc) for svc in graph.nodes
        }
        app = graph.application
        self._anc: Dict[str, Fraction] = {}
        self._outsize: Dict[str, Fraction] = {}
        for node in graph.topological_order:
            prod = ONE
            for j in graph.ancestors(node):
                prod *= app.selectivity(j)
            self._anc[node] = prod
            self._outsize[node] = prod * app.selectivity(node)
        self._cexec: Dict[str, Fraction] = {
            node: self._node_cexec(node, self.assignment) for node in graph.nodes
        }

    def _node_cexec(self, node: str, assignment: Dict[str, str]) -> Fraction:
        graph, platform = self.graph, self.platform
        server = assignment[node]
        preds = graph.predecessors(node)
        if preds:
            cin = sum(
                (
                    self._outsize[p] / platform.bandwidth(assignment[p], server)
                    for p in preds
                ),
                Fraction(0),
            )
        else:
            cin = ONE / platform.bandwidth(INPUT, server)
        ccomp = (
            self._anc[node] * graph.application.cost(node) / platform.speed(server)
        )
        succs = graph.successors(node)
        if succs:
            cout = sum(
                (
                    self._outsize[node] / platform.bandwidth(server, assignment[s])
                    for s in succs
                ),
                Fraction(0),
            )
        else:
            cout = self._outsize[node] / platform.bandwidth(server, OUTPUT)
        if self.model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    def _affected(self, services: Iterable[str]) -> Set[str]:
        out: Set[str] = set()
        for svc in services:
            out.add(svc)
            out.update(self.graph.predecessors(svc))
            out.update(self.graph.successors(svc))
        return out

    def _score(self, trial: Dict[str, str], moved: Iterable[str]) -> Fraction:
        overrides = {
            m: self._node_cexec(m, trial) for m in self._affected(moved)
        }
        return max(
            overrides.get(node, self._cexec[node]) for node in self.graph.nodes
        )

    def _commit(self, trial: Dict[str, str], moved: Iterable[str]) -> None:
        affected = self._affected(moved)
        self.assignment = trial
        for m in affected:
            self._cexec[m] = self._node_cexec(m, trial)

    # -- public API --------------------------------------------------------
    def value(self) -> Fraction:
        """The period bound of the current assignment."""
        return max(self._cexec.values())

    def mapping(self) -> Mapping:
        return Mapping(self.assignment)

    def score_reassign(self, service: str, server: str) -> Fraction:
        """Price moving *service* onto the (idle) *server*."""
        trial = dict(self.assignment)
        trial[service] = server
        return self._score(trial, [service])

    def apply_reassign(self, service: str, server: str) -> None:
        trial = dict(self.assignment)
        trial[service] = server
        self._commit(trial, [service])

    def score_swap(self, a: str, b: str) -> Fraction:
        """Price exchanging the servers of services *a* and *b*."""
        trial = dict(self.assignment)
        trial[a], trial[b] = trial[b], trial[a]
        return self._score(trial, [a, b])

    def apply_swap(self, a: str, b: str) -> None:
        trial = dict(self.assignment)
        trial[a], trial[b] = trial[b], trial[a]
        self._commit(trial, [a, b])


__all__ = ["IncrementalForestPeriod", "IncrementalMappingCosts", "period_delta"]
