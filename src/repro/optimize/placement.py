"""Service-to-server placement search for heterogeneous platforms.

On the paper's normalised platform every one-to-one assignment of services
to servers is equivalent, so the mapping problem disappears.  With server
speeds and link bandwidths it matters a great deal: putting the expensive
service on the fast server, or keeping a chatty edge off a slow link, can
change both the optimal value *and* the optimal execution graph.  This
module optimises the assignment for a fixed graph:

* :func:`iter_mappings` / :func:`mapping_space_size` — the injective
  assignment space (``P(m, n)`` for ``n`` services on ``m`` servers);
* :func:`greedy_mapping` — heaviest computational work onto the fastest
  server (a communication-blind but strong seed);
* :func:`optimize_mapping` — exhaustive enumeration when the space is
  small, greedy seed plus reassignment/swap local search
  (:func:`~repro.optimize.local_search.placement_local_search`) beyond.

Graph searches compose with this transparently: the planner's objectives
call :func:`optimize_mapping` per candidate graph when the mapping is left
free, turning every solver into a graph × server-assignment search.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from fractions import Fraction
from typing import Iterator, Optional, Sequence, Tuple

from ..core import (
    CommModel,
    CostModel,
    Exactness,
    ExecutionGraph,
    FloatCosts,
    GraphArrays,
    Mapping,
    Platform,
)

#: Enumerate all assignments when the space is at most this large.
DEFAULT_EXHAUSTIVE_LIMIT = 720

#: Enumerate all *shared* assignments (``m ** n``) up to this size.
SHARED_EXHAUSTIVE_LIMIT = 512

ONE_WEIGHT = Fraction(1)

#: Memo of ``optimize_mapping`` outcomes — the planner resolves the winning
#: mapping after the cached objective already computed the value, and this
#: table turns that second resolution into a lookup instead of re-running
#: the whole placement search.
_MEMO_MAX_ENTRIES = 50_000
_memo: "OrderedDict[tuple, Tuple[Fraction, Mapping]]" = OrderedDict()


def clear_placement_memo() -> None:
    """Drop every memoized :func:`optimize_mapping` outcome.

    :func:`repro.planner.clear_default_cache` calls this too, so resetting
    the planner between benchmark runs or tests also resets the placement
    memo — previously the module-level table survived and could serve
    stale placements (and misleading hit counts) across runs.
    """
    _memo.clear()


def placement_memo_size() -> int:
    """Number of memoized placement outcomes (for tests and diagnostics)."""
    return len(_memo)


def mapping_space_size(n_services: int, n_servers: int) -> int:
    """Number of injective assignments: ``m * (m-1) * ... * (m-n+1)``."""
    if n_services > n_servers:
        return 0
    size = 1
    for k in range(n_servers, n_servers - n_services, -1):
        size *= k
    return size


def iter_mappings(services: Sequence[str], platform: Platform) -> Iterator[Mapping]:
    """All injective assignments of *services* onto the platform's servers."""
    services = tuple(services)
    for combo in itertools.permutations(platform.names, len(services)):
        yield Mapping(dict(zip(services, combo)))


def greedy_mapping(graph: ExecutionGraph, platform: Platform) -> Mapping:
    """Heaviest computational work onto the fastest server.

    Work is the platform-independent ``P_k * c_k`` (the data volume the
    service processes per data set); servers are taken by decreasing speed,
    ties broken by platform order so the result is deterministic.
    """
    platform.require_capacity(len(graph.nodes))
    sizes = CostModel(graph)  # unit platform: exposes the raw work volumes
    services = sorted(
        graph.nodes,
        key=lambda n: (-(sizes.ancestor_selectivity(n) * graph.application.cost(n)), n),
    )
    servers = sorted(
        platform.servers, key=lambda s: (-s.speed, platform.names.index(s.name))
    )
    return Mapping({svc: srv.name for svc, srv in zip(services, servers)})


def _fast_mapping_value(
    graph: ExecutionGraph,
    kind: str,
    model: CommModel,
    effort,
    platform: Platform,
    *,
    weights=None,
    shared: bool = False,
):
    """A per-mapping float scorer, or ``None`` when no kernel applies.

    The kernel covers exactly the configurations whose per-mapping
    objective is a :class:`~repro.core.CostModel` bound (the placement
    analogue of the per-graph rule in
    :func:`repro.optimize.evaluation.make_fast_period_objective`): the
    period bound for OVERLAP or the bound effort, the latency bound for
    non-forests at the bound effort — and *shared* placements always,
    whose (optionally *weights*-scaled) aggregated load is the bound by
    construction.  Forest latency is Algorithm-1 territory.  The flat
    arrays are compiled only once the gate passes and shared by every
    mapping the returned scorer prices; a per-mapping ``None`` (float
    overflow) tells the caller to score exactly.
    """
    from .evaluation import Effort

    if shared or kind == "period":
        covered = (
            shared or model is CommModel.OVERLAP or effort is Effort.BOUND
        )
        latency = False
    else:
        covered = effort is Effort.BOUND and not graph.is_forest
        latency = True
    if not covered:
        return None
    try:
        arrays = GraphArrays(graph)
    except OverflowError:
        return None  # beyond float range: exact tier only

    def scorer(mapping: Mapping):
        try:
            fast = FloatCosts(
                graph, platform, mapping, arrays=arrays, weights=weights
            )
            if latency:
                return fast.latency_lower_bound()
            return fast.period_lower_bound(model)
        except OverflowError:
            return None

    return scorer


def _make_mapping_batch(
    graph: ExecutionGraph,
    kind: str,
    model: CommModel,
    effort,
    platform: Platform,
    *,
    weights=None,
    shared: bool = False,
):
    """A :class:`~repro.core.MappingBatch` for this configuration, or ``None``.

    The batched twin of :func:`_fast_mapping_value`: covered in exactly
    the same configurations, with per-row values bit-for-bit the scalar
    scorer's; ``None`` where the scalar gate would not apply (or numpy is
    missing, or the instance overflows float range).
    """
    from .evaluation import Effort

    if shared or kind == "period":
        covered = shared or model is CommModel.OVERLAP or effort is Effort.BOUND
        batch_kind = "period"
    else:
        covered = effort is Effort.BOUND and not graph.is_forest
        batch_kind = "latency"
    if not covered:
        return None
    try:
        from ..core.batched import MappingBatch
    except ImportError:  # pragma: no cover - numpy-free environments
        return None
    try:
        return MappingBatch(
            graph, platform, kind=batch_kind, model=model,
            shared=shared, weights=weights,
        )
    except OverflowError:
        return None  # beyond float range: exact tier only


def _scan_mappings_batched(
    candidates, batch, exact_score, *, fast_tier: bool = False
):
    """The certified (or FAST) placement scan, float-gated in bulk.

    *candidates* is the full enumeration (materialised — placement spaces
    on the exhaustive branch are a few hundred rows); one numpy call
    prices every row, then survivors are exact-scored in enumeration order
    under the running :func:`~repro.core.certified_threshold` cut exactly
    like :func:`~repro.optimize.exhaustive.scan_best`.  ``fast_tier=True``
    skips exact scoring entirely and returns the first float minimum's
    image — :func:`_fast_scan` semantics.
    """
    import numpy as np

    from ..core import certified_threshold

    mappings = list(candidates)
    rows = np.stack([batch.encode(m) for m in mappings])
    fast = batch.values(rows)
    if fast_tier:
        best = int(np.argmin(fast))  # argmin keeps the first minimum
        return Fraction(float(fast[best])), mappings[best]
    best_val = None
    best_mapping = None
    cut = None
    for k, mapping in enumerate(mappings):
        if cut is not None and fast[k] > cut:
            continue  # provably no better than the incumbent
        val = exact_score(mapping)
        if best_val is None or val < best_val:
            best_val, best_mapping = val, mapping
            try:
                cut = certified_threshold(float(best_val))
            except OverflowError:
                cut = None  # beyond float range: exact scoring only
    assert best_val is not None and best_mapping is not None
    return best_val, best_mapping


def _fast_scan(candidates, fast_score, exact_score):
    """FAST-tier scan: float scores, exact fallback per ``None``, first
    strict minimum wins; the winner's value is the float image."""
    best = None
    best_candidate = None
    for candidate in candidates:
        f = fast_score(candidate) if fast_score is not None else None
        if f is None:
            f = exact_score(candidate)  # no kernel / float overflow
        if best is None or f < best:
            best, best_candidate = f, candidate
    assert best is not None and best_candidate is not None
    return Fraction(best), best_candidate


def optimize_mapping(
    graph: ExecutionGraph,
    kind: str,
    model: CommModel,
    effort,
    platform: Platform,
    *,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    max_moves: int = 200,
    exactness: Exactness = Exactness.EXACT,
    strategy: str = "auto",
) -> Tuple[Fraction, Mapping]:
    """Best ``(value, mapping)`` of *graph* on *platform* for one objective.

    Enumerates every injective assignment while the space has at most
    *exhaustive_limit* elements (exact); otherwise starts from a seed and
    runs the first-improvement reassignment/swap local search.  *kind* is
    ``"period"`` or ``"latency"``; *model*/*effort* are forwarded to the
    per-mapping objective.

    *strategy* picks the local-search seeding: ``"flat"`` descends once
    from the classic work-onto-speed :func:`greedy_mapping`;
    ``"hierarchical"`` *races* two descents — one from the
    topology-partitioned seed
    (:func:`repro.optimize.hierarchy.hierarchical_seed` — keep chatty
    edges inside a rack/row, respect group capacity) and one from the
    flat seed — and keeps the better result, so it is never worse than
    ``"flat"`` at a bounded constant factor in time; ``"auto"`` (the
    default) behaves as ``"hierarchical"`` exactly when the topology
    exposes more than one locality group.  The exhaustive branch is
    seed-free, so the strategy only matters past *exhaustive_limit*.

    *exactness* picks the numeric tier.  ``CERTIFIED`` scans candidates on
    the :class:`~repro.core.FloatCosts` kernel and re-scores only the ones
    inside the :data:`~repro.core.CERT_EPS` band of the running best in
    exact ``Fraction``s — the returned pair is bit-for-bit the ``EXACT``
    one.  ``FAST`` keeps everything on the float tier and returns the
    float image of the winner's value.

    Example (the fast server should host the expensive service)::

        >>> from repro import ExecutionGraph, Platform, make_application
        >>> from repro.core import CommModel
        >>> from repro.optimize.evaluation import Effort
        >>> app = make_application([("A", 1, 1), ("B", 9, 1)])
        >>> graph = ExecutionGraph.empty(app)
        >>> platform = Platform.of(speeds=[1, 3])
        >>> value, mapping = optimize_mapping(
        ...     graph, "period", CommModel.OVERLAP, Effort.HEURISTIC, platform)
        >>> value, mapping.server("B")
        (Fraction(3, 1), 'S2')
    """
    from .evaluation import Effort, latency_objective, period_objective
    from .incremental import placement_evaluator
    from .local_search import placement_local_search

    if kind not in ("period", "latency"):
        raise ValueError(f"kind must be 'period' or 'latency', got {kind!r}")
    if strategy not in ("auto", "flat", "hierarchical"):
        raise ValueError(
            f"strategy must be 'auto', 'flat' or 'hierarchical', got {strategy!r}"
        )
    exactness = Exactness.coerce(exactness)

    memo_key = (
        kind, model, effort, platform.key(), exhaustive_limit, max_moves,
        exactness.memo_tier, strategy, graph.application, graph.edges,
    )
    found = _memo.get(memo_key)
    if found is not None:
        _memo.move_to_end(memo_key)
        return found

    def score(mapping: Mapping) -> Fraction:
        if kind == "period":
            return period_objective(graph, model, effort, platform, mapping)
        return latency_objective(graph, model, effort, platform, mapping)

    platform.require_capacity(len(graph.nodes))
    space = mapping_space_size(len(graph.nodes), len(platform))
    if space <= exhaustive_limit:
        from .exhaustive import scan_best

        batch = (
            _make_mapping_batch(graph, kind, model, effort, platform)
            if exactness.uses_float
            else None
        )
        if batch is not None:
            # One numpy call prices the whole space; same gate decisions
            # (and FAST first-minimum rule) as the scalar paths below.
            outcome = _scan_mappings_batched(
                iter_mappings(graph.nodes, platform), batch, score,
                fast_tier=exactness is Exactness.FAST,
            )
        elif exactness is Exactness.FAST:
            fast_score = _fast_mapping_value(
                graph, kind, model, effort, platform
            )
            outcome = _fast_scan(
                iter_mappings(graph.nodes, platform), fast_score, score
            )
        else:
            fast_score = (
                _fast_mapping_value(graph, kind, model, effort, platform)
                if exactness.uses_float
                else None
            )
            # Plain scan (exact) or the certified float-gated scan —
            # scan_best is item-type-agnostic and encodes the gate,
            # cut-update and first-tie rules once for every caller.
            value, best_mapping, _ = scan_best(
                iter_mappings(graph.nodes, platform), score,
                fast_objective=fast_score,
            )
            outcome = (value, best_mapping)
    else:
        use_hierarchy = strategy == "hierarchical" or (
            strategy == "auto" and len(platform.topology.groups()) > 1
        )
        # The hierarchical strategy races the search from *both* seeds and
        # keeps the better result: the partitioned seed wins on locality,
        # the flat greedy on speed exploitation, and first-improvement
        # descent is basin-dependent enough that neither dominates.  The
        # flat leg makes "never worse than flat" a guarantee rather than a
        # tendency, at a bounded constant factor (two descents).
        seeds = []
        if use_hierarchy:
            from .hierarchy import hierarchical_seed

            seeds.append(hierarchical_seed(graph, platform))
        flat_seed = greedy_mapping(graph, platform)
        if not any(s.items() == flat_seed.items() for s in seeds):
            seeds.append(flat_seed)
        use_evaluator = kind == "period" and (
            model is CommModel.OVERLAP or effort is Effort.BOUND
        )
        batch = (
            _make_mapping_batch(graph, kind, model, effort, platform)
            if not use_evaluator and exactness.uses_float
            else None
        )
        outcome = None
        for seed in seeds:
            evaluator = None
            if use_evaluator:
                # The Section-2.1 bound *is* this objective (Theorem 1 for
                # OVERLAP; by definition for the bound effort), so moves
                # can be priced by recomputing only the touched servers'
                # costs — on the numeric tier the exactness knob picks.
                evaluator = placement_evaluator(
                    graph, platform, seed, model=model, exactness=exactness
                )
            value, mapping = placement_local_search(
                graph, score, seed, platform, max_moves=max_moves,
                evaluator=evaluator, batch=batch,
            )
            if exactness is Exactness.FAST and evaluator is not None:
                value = Fraction(value)
            if outcome is None or value < outcome[0]:
                outcome = (value, mapping)
    _memo[memo_key] = outcome
    if len(_memo) > _MEMO_MAX_ENTRIES:
        _memo.popitem(last=False)
    return outcome


# ---------------------------------------------------------------------------
# Shared-server placement (concurrent applications)
# ---------------------------------------------------------------------------

def shared_space_size(n_services: int, n_servers: int) -> int:
    """Number of (possibly many-to-one) assignments: ``m ** n``."""
    return n_servers ** n_services


def shared_search_method(
    n_services: int,
    n_servers: int,
    exhaustive_limit: int = SHARED_EXHAUSTIVE_LIMIT,
) -> str:
    """How :func:`optimize_shared_mapping` will solve this instance.

    The single source of truth for the exhaustive-vs-local-search
    dispatch, so result reporting can never drift from the search itself.
    """
    if shared_space_size(n_services, n_servers) <= exhaustive_limit:
        return "shared-exhaustive"
    return "shared-local-search"


def iter_shared_mappings(
    services: Sequence[str], platform: Platform
) -> Iterator[Mapping]:
    """All assignments of *services* to servers, sharing allowed."""
    services = tuple(services)
    for combo in itertools.product(platform.names, repeat=len(services)):
        yield Mapping.shared(dict(zip(services, combo)))


def greedy_shared_mapping(
    graph: ExecutionGraph,
    platform: Platform,
    *,
    weights=None,
    allowed=None,
) -> Mapping:
    """Bin-packing seed: heaviest (weighted) work onto the least-loaded server.

    Services are taken by decreasing platform-independent work volume
    ``P_k * c_k`` (scaled by *weights* when given — the concurrent
    planner's ``1 / period_target``); each goes to the server whose
    compute load after hosting it is smallest (speeds taken into account,
    ties broken by platform order).  Communication-blind — the local
    search repairs chatty cross-server edges — but a strong LPT-style
    seed for the aggregated load objective.

    *allowed* restricts the candidate servers (the dynamic layer's
    drained-server maintenance scenarios); ``None`` means every server.
    """
    sizes = CostModel(graph)  # unit platform: raw work volumes
    weights = weights or {}
    work = {
        n: sizes.ancestor_selectivity(n)
        * graph.application.cost(n)
        * weights.get(n, ONE_WEIGHT)
        for n in graph.nodes
    }
    services = sorted(graph.nodes, key=lambda n: (-work[n], n))
    order = {name: i for i, name in enumerate(platform.names)}
    candidates = (
        platform.names
        if allowed is None
        else tuple(n for n in platform.names if n in set(allowed))
    )
    if not candidates and services:
        raise ValueError("no allowed server to place services on")
    load = {name: Fraction(0) for name in candidates}
    assignment = {}
    for svc in services:
        best = min(
            candidates,
            key=lambda u: (load[u] + work[svc] / platform.speed(u), order[u]),
        )
        assignment[svc] = best
        load[best] += work[svc] / platform.speed(best)
    return Mapping.shared(assignment)


def optimize_shared_mapping(
    graph: ExecutionGraph,
    model: CommModel,
    platform: Platform,
    *,
    weights=None,
    exhaustive_limit: int = SHARED_EXHAUSTIVE_LIMIT,
    max_moves: int = 400,
    exactness: Exactness = Exactness.EXACT,
) -> Tuple[Fraction, Mapping]:
    """Best ``(value, shared mapping)`` for the aggregated load objective.

    The objective is ``max_u Cexec(u)`` over per-server aggregated
    ``Cin``/``Ccomp``/``Cout`` (weighted by *weights* when given) — the
    steady-state bound of the concurrent-applications regime, exact for
    OVERLAP.  Small spaces (``m ** n <= exhaustive_limit``) are enumerated
    exactly; larger ones start from :func:`greedy_shared_mapping` and run
    the reassignment/swap local search priced by
    :class:`~repro.optimize.incremental.IncrementalSharedCosts` deltas.

    *exactness* as in :func:`optimize_mapping`: ``CERTIFIED`` float-gates
    the scan/search with exact re-scoring inside the eps band (bit-for-bit
    the exact outcome), ``FAST`` stays on the float tier throughout.

    Example (three unit servers, four independent services — the heavy
    one gets a server to itself)::

        >>> from repro import ExecutionGraph, Platform, make_application
        >>> from repro.core import CommModel
        >>> app = make_application(
        ...     [("A", 6, 1), ("B", 2, 1), ("C", 2, 1), ("D", 2, 1)])
        >>> value, mapping = optimize_shared_mapping(
        ...     ExecutionGraph.empty(app), CommModel.OVERLAP,
        ...     Platform.homogeneous(3))
        >>> value, mapping.services_on(mapping.server("A"))
        (Fraction(6, 1), ('A',))
    """
    from .incremental import IncrementalSharedCosts, placement_evaluator
    from .local_search import shared_placement_local_search

    exactness = Exactness.coerce(exactness)
    weight_key = (
        tuple(sorted(weights.items())) if weights else None
    )
    memo_key = (
        "shared", model, weight_key, platform.key(), exhaustive_limit,
        max_moves, exactness.memo_tier, graph.application, graph.edges,
    )
    found = _memo.get(memo_key)
    if found is not None:
        _memo.move_to_end(memo_key)
        return found

    services = tuple(graph.nodes)
    if not services:
        # The empty system (every application evicted): the one shared
        # mapping is the empty one, loading no server at all.
        outcome = (Fraction(0), Mapping.shared({}))
        _memo[memo_key] = outcome
        return outcome
    method = shared_search_method(len(services), len(platform), exhaustive_limit)
    if method == "shared-exhaustive":
        from .exhaustive import scan_best

        if platform.has_contention:
            # The incremental evaluator refuses contended topologies (its
            # deltas assume static bandwidths); score each candidate from
            # scratch through the contention-aware exact model instead.
            from .incremental import exact_placement_value

            def exact_value(mapping):
                return exact_placement_value(
                    graph, platform, mapping, model=model,
                    weights=weights, shared=True,
                )
        else:
            def exact_value(mapping):
                return IncrementalSharedCosts(
                    graph, platform, mapping, model=model, weights=weights
                ).value()

        batch = (
            _make_mapping_batch(
                graph, "period", model, None, platform,
                weights=weights, shared=True,
            )
            if exactness.uses_float
            else None
        )
        if batch is not None:
            outcome = _scan_mappings_batched(
                iter_shared_mappings(services, platform), batch, exact_value,
                fast_tier=exactness is Exactness.FAST,
            )
        else:
            # The (weighted) aggregated load == the kernel's shared period
            # bound; the flat arrays amortise the mapping-independent work
            # across the whole enumeration.
            fast_value = (
                _fast_mapping_value(
                    graph, "period", model, None, platform,
                    weights=weights, shared=True,
                )
                if exactness.uses_float
                else None
            )
            if exactness is Exactness.FAST:
                outcome = _fast_scan(
                    iter_shared_mappings(services, platform), fast_value,
                    exact_value,
                )
            else:
                value, best_mapping, _ = scan_best(
                    iter_shared_mappings(services, platform), exact_value,
                    fast_objective=fast_value,
                )
                outcome = (value, best_mapping)
    else:
        seed = greedy_shared_mapping(graph, platform, weights=weights)
        evaluator = placement_evaluator(
            graph, platform, seed, model=model, weights=weights,
            shared=True, exactness=exactness,
        )
        value, mapping = shared_placement_local_search(
            graph, evaluator, platform, max_moves=max_moves
        )
        if exactness is Exactness.FAST:
            value = Fraction(value)
        outcome = (value, mapping)
    _memo[memo_key] = outcome
    if len(_memo) > _MEMO_MAX_ENTRIES:
        _memo.popitem(last=False)
    return outcome


__all__ = [
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "SHARED_EXHAUSTIVE_LIMIT",
    "clear_placement_memo",
    "greedy_mapping",
    "greedy_shared_mapping",
    "iter_mappings",
    "iter_shared_mappings",
    "mapping_space_size",
    "optimize_mapping",
    "optimize_shared_mapping",
    "placement_memo_size",
    "shared_search_method",
    "shared_space_size",
]
