"""Local searches: reparenting over forests, reassignment over placements.

:func:`local_search_forest` starts from any forest (e.g. the greedy
construction's output or the communication-free baseline) and repeatedly
moves one node under a different parent (or makes it a root) whenever that
strictly improves the objective.  :func:`placement_local_search` does the
analogous walk over service-to-server assignments on a heterogeneous
platform: move one service to an idle server, or swap two services.  Both
are first-improvement with a deterministic scan order and terminate
because the objective strictly decreases and the neighbourhood is finite.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from ..core import Application, CommModel, ExecutionGraph, Mapping, Platform
from .evaluation import (
    Effort,
    Objective,
    make_latency_objective,
    make_period_objective,
)


def _parents_of(graph: ExecutionGraph) -> Dict[str, Optional[str]]:
    parents: Dict[str, Optional[str]] = {}
    for node in graph.nodes:
        preds = graph.predecessors(node)
        if len(preds) > 1:
            raise ValueError("local search requires a forest execution graph")
        parents[node] = preds[0] if preds else None
    return parents


def local_search_forest(
    graph: ExecutionGraph,
    objective: Objective,
    *,
    max_moves: int = 200,
) -> Tuple[Fraction, ExecutionGraph]:
    """First-improvement reparenting search from *graph* (a forest).

    *objective* is any ``ExecutionGraph -> Fraction`` callable; pass a
    memoized one (``repro.planner.EvaluationCache.objective``) to avoid
    re-scoring graphs revisited across passes.  Example — starting from
    the empty forest, the search discovers the filter-first chain::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> from repro.optimize import make_period_objective
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> value, graph = local_search_forest(
        ...     ExecutionGraph.empty(app),
        ...     make_period_objective(CommModel.OVERLAP))
        >>> value, sorted(graph.edges)
        (Fraction(4, 1), [('A', 'B')])
    """
    app = graph.application
    if app.precedence:
        raise ValueError("local search assumes no precedence constraints")
    parents = _parents_of(graph)
    current = objective(graph)
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        for node in app.names:
            original = parents[node]
            for candidate in [None] + [p for p in app.names if p != node]:
                if candidate == original:
                    continue
                trial = dict(parents)
                trial[node] = candidate
                try:
                    trial_graph = ExecutionGraph.from_parents(app, trial)
                except Exception:
                    continue  # candidate creates a cycle
                val = objective(trial_graph)
                if val < current:
                    parents, current = trial, val
                    moves += 1
                    improved = True
                    break
            if improved:
                break
    return current, ExecutionGraph.from_parents(app, parents)


def local_search_minperiod(
    graph: ExecutionGraph,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
    max_moves: int = 200,
) -> Tuple[Fraction, ExecutionGraph]:
    """Reparenting local search on the period objective.

    Example::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> local_search_minperiod(
        ...     ExecutionGraph.empty(app), CommModel.OVERLAP)[0]
        Fraction(4, 1)
    """
    return local_search_forest(
        graph, make_period_objective(model, effort), max_moves=max_moves
    )


def local_search_minlatency(
    graph: ExecutionGraph,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
    max_moves: int = 200,
) -> Tuple[Fraction, ExecutionGraph]:
    """Reparenting local search on the latency objective.

    Example::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> local_search_minlatency(
        ...     ExecutionGraph.empty(app), CommModel.OVERLAP)[0]
        Fraction(7, 1)
    """
    return local_search_forest(
        graph, make_latency_objective(model, effort), max_moves=max_moves
    )


def placement_local_search(
    graph: ExecutionGraph,
    objective: Callable[[Mapping], Fraction],
    start: Mapping,
    platform: Platform,
    *,
    max_moves: int = 200,
) -> Tuple[Fraction, Mapping]:
    """First-improvement search over service-to-server assignments.

    Neighbour moves, scanned deterministically:

    * *reassign*: move one service to a server hosting nothing — in
      particular, a strictly faster idle server is always tried, and a
      strictly improving move is never rejected (first-improvement accepts
      every strict decrease);
    * *swap*: exchange the servers of two services.

    *objective* maps a :class:`~repro.core.Mapping` to the value being
    minimised (wire it to the memoized planner objective for free re-scores
    of revisited placements).

    Example (the heavy service walks onto the fast idle server)::

        >>> from fractions import Fraction
        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel, CostModel
        >>> app = make_application([("A", 1, 1), ("B", 9, 1)])
        >>> graph = ExecutionGraph.empty(app)
        >>> platform = Platform.of(speeds=[1, 1, 3])
        >>> objective = lambda m: CostModel(graph, platform, m).period_lower_bound(
        ...     CommModel.OVERLAP)
        >>> start = Mapping({"A": "S1", "B": "S2"})   # B on a slow server
        >>> value, best = placement_local_search(graph, objective, start, platform)
        >>> value, best.server("B")
        (Fraction(3, 1), 'S3')
    """
    start.validate_on(graph.nodes, platform)
    services = list(start.services())
    current_value = objective(start)
    current = start
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        used = set(current.used_servers())
        idle = [name for name in platform.names if name not in used]
        for service in services:
            for server in idle:
                trial = current.reassigned(service, server)
                value = objective(trial)
                if value < current_value:
                    current, current_value = trial, value
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        for i, a in enumerate(services):
            for b in services[i + 1 :]:
                trial = current.swapped(a, b)
                value = objective(trial)
                if value < current_value:
                    current, current_value = trial, value
                    moves += 1
                    improved = True
                    break
            if improved:
                break
    return current_value, current


__all__ = [
    "local_search_forest",
    "local_search_minlatency",
    "local_search_minperiod",
    "placement_local_search",
]
