"""Local searches: reparenting over forests, reassignment over placements.

:func:`local_search_forest` starts from any forest (e.g. the greedy
construction's output or the communication-free baseline) and repeatedly
moves one node under a different parent (or makes it a root) whenever that
strictly improves the objective.  :func:`placement_local_search` does the
analogous walk over service-to-server assignments on a heterogeneous
platform: move one service to an idle server, or swap two services.  Both
are first-improvement with a deterministic scan order and terminate
because the objective strictly decreases and the neighbourhood is finite.
The scan *resumes* after an accepted move instead of restarting at the
first service, so one full improvement pass costs one sweep of the
neighbourhood, not a quadratic number of partial re-sweeps.

Both searches accept a delta evaluator from
:mod:`repro.optimize.incremental` and then price each candidate move
without rebuilding a graph or a :class:`~repro.core.CostModel` — the hot
path of every heuristic solve.  The evaluators are exact (Fraction-level
parity with full recomputation), so the result is identical either way.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from ..core import (
    Application,
    CommModel,
    Exactness,
    ExecutionGraph,
    Mapping,
    Platform,
)
from ..core.graph import CycleError
from .evaluation import (
    Effort,
    Objective,
    make_latency_objective,
    make_period_objective,
)
from .incremental import (
    IncrementalForestPeriod,
    IncrementalMappingCosts,
    IncrementalSharedCosts,
    period_delta,
)


def _parents_of(graph: ExecutionGraph) -> Dict[str, Optional[str]]:
    parents: Dict[str, Optional[str]] = {}
    for node in graph.nodes:
        preds = graph.predecessors(node)
        if len(preds) > 1:
            raise ValueError("local search requires a forest execution graph")
        parents[node] = preds[0] if preds else None
    return parents


def _gate_reparents(batch, parents, node, candidates, current):
    """Which reparent *candidates* of *node* a certified gate can skip.

    Prices the whole candidate column in one batched call and marks every
    candidate that is provably not an improvement on *current* — cyclic
    rows (the scalar path's ``CycleError``) and rows whose float bound
    exceeds ``certified_threshold(current)``.  Skipping only those leaves
    the accepted-move sequence bit-for-bit the ungated one.  Returns
    ``None`` when the gate cannot run (float overflow on *current*).
    """
    import numpy as np

    from ..core import certified_threshold

    try:
        cut = certified_threshold(float(current))
    except OverflowError:
        return None  # beyond float range: score every candidate exactly
    names = batch.names
    index = {name: i for i, name in enumerate(names)}
    base = np.array(
        [-1 if parents[name] is None else index[parents[name]] for name in names],
        dtype=np.int64,
    )
    rows = np.repeat(base[None, :], len(candidates), axis=0)
    rows[:, index[node]] = [
        -1 if c is None else index[c] for c in candidates
    ]
    valid, fast = batch.periods(rows)
    return ~valid | (fast > cut)


def local_search_forest(
    graph: ExecutionGraph,
    objective: Objective,
    *,
    max_moves: int = 200,
    delta: Optional[IncrementalForestPeriod] = None,
    batch=None,
) -> Tuple[Fraction, ExecutionGraph]:
    """First-improvement reparenting search from *graph* (a forest).

    *objective* is any ``ExecutionGraph -> Fraction`` callable; pass a
    memoized one (``repro.planner.EvaluationCache.objective``) to avoid
    re-scoring graphs revisited across passes.  Passing *delta* (an
    :class:`~repro.optimize.incremental.IncrementalForestPeriod` built
    from *graph* for the matching objective) prices candidates in
    ``O(subtree)`` deltas instead — the objective is then only consulted
    by the caller for the final graph.  Passing *batch* (a
    :class:`~repro.core.ForestBatch` for the matching objective, see
    :func:`~repro.optimize.evaluation.make_forest_period_batch`) prices
    each node's whole candidate column in one numpy call and skips the
    candidates that provably cannot improve — the certified gate of
    :func:`~repro.optimize.exhaustive.scan_best` applied to the
    neighbourhood sweep, leaving the move sequence bit-for-bit identical.
    The scan resumes at the service *after* an accepted move and stops
    once a whole pass finds no improvement.  Example — starting from the
    empty forest, the search discovers the filter-first chain::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> from repro.optimize import make_period_objective
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> value, graph = local_search_forest(
        ...     ExecutionGraph.empty(app),
        ...     make_period_objective(CommModel.OVERLAP))
        >>> value, sorted(graph.edges)
        (Fraction(4, 1), [('A', 'B')])
    """
    app = graph.application
    if app.precedence:
        raise ValueError("local search assumes no precedence constraints")
    parents = _parents_of(graph)
    current = delta.value() if delta is not None else objective(graph)
    names = list(app.names)
    n = len(names)
    moves = 0
    position = 0
    stale = 0  # services scanned since the last accepted move
    while stale < n and moves < max_moves:
        node = names[position % n]
        position += 1
        original = parents[node]
        accepted = False
        candidates = [None] + [p for p in names if p != node]
        skip = None
        if batch is not None and delta is None:
            skip = _gate_reparents(batch, parents, node, candidates, current)
        for k, candidate in enumerate(candidates):
            if candidate == original:
                continue
            if skip is not None and skip[k]:
                continue  # cyclic, or provably no better than current
            if delta is not None:
                val = delta.score_reparent(node, candidate)
                if val is None:
                    continue  # candidate creates a cycle
            else:
                trial = dict(parents)
                trial[node] = candidate
                try:
                    trial_graph = ExecutionGraph.from_parents(app, trial)
                except CycleError:
                    continue  # candidate creates a cycle
                val = objective(trial_graph)
            if val < current:
                if delta is not None:
                    delta.apply_reparent(node, candidate)
                parents[node] = candidate
                current = val
                moves += 1
                accepted = True
                break
        stale = 0 if accepted else stale + 1
    return current, ExecutionGraph.from_parents(app, parents)


def local_search_minperiod(
    graph: ExecutionGraph,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
    max_moves: int = 200,
    exactness: Exactness = Exactness.EXACT,
) -> Tuple[Fraction, ExecutionGraph]:
    """Reparenting local search on the period objective.

    Uses delta evaluation automatically where it is exact (OVERLAP, or the
    one-port bound effort — :func:`repro.optimize.incremental.period_delta`);
    *exactness* picks the delta's numeric tier (``CERTIFIED`` keeps the
    trajectory and value bit-for-bit, pricing rejected moves in floats).
    Example::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> local_search_minperiod(
        ...     ExecutionGraph.empty(app), CommModel.OVERLAP)[0]
        Fraction(4, 1)
    """
    delta = period_delta(graph, model, effort, None, None, exactness=exactness)
    value, best = local_search_forest(
        graph, make_period_objective(model, effort), max_moves=max_moves,
        delta=delta,
    )
    if isinstance(value, float):
        value = Fraction(value)  # the FAST delta prices moves in floats
    return value, best


def local_search_minlatency(
    graph: ExecutionGraph,
    model: CommModel,
    *,
    effort: Effort = Effort.HEURISTIC,
    max_moves: int = 200,
) -> Tuple[Fraction, ExecutionGraph]:
    """Reparenting local search on the latency objective.

    Example::

        >>> from repro import CommModel, ExecutionGraph, make_application
        >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        >>> local_search_minlatency(
        ...     ExecutionGraph.empty(app), CommModel.OVERLAP)[0]
        Fraction(7, 1)
    """
    return local_search_forest(
        graph, make_latency_objective(model, effort), max_moves=max_moves
    )


def _scan_first_improvement(
    services,
    *,
    initial: Fraction,
    reassign_candidates,
    score_reassign,
    apply_reassign,
    swap_candidates,
    score_swap,
    apply_swap,
    max_moves: int,
) -> Fraction:
    """The first-improvement scan shared by both placement searches.

    Reassign moves are tried first (service-major, candidate servers from
    *reassign_candidates*), then swaps; every accepted move restarts the
    scan.  Only the candidate generators differ between the injective
    search (idle servers, all pairs) and the shared search (all servers,
    cross-server pairs).
    """
    current_value = initial
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        for service in services:
            for server in reassign_candidates(service):
                value = score_reassign(service, server)
                if value < current_value:
                    apply_reassign(service, server)
                    current_value = value
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        for a, b in swap_candidates():
            value = score_swap(a, b)
            if value < current_value:
                apply_swap(a, b)
                current_value = value
                moves += 1
                improved = True
                break
    return current_value


def placement_local_search(
    graph: ExecutionGraph,
    objective: Callable[[Mapping], Fraction],
    start: Mapping,
    platform: Platform,
    *,
    max_moves: int = 200,
    evaluator: Optional[IncrementalMappingCosts] = None,
    batch=None,
) -> Tuple[Fraction, Mapping]:
    """First-improvement search over service-to-server assignments.

    Neighbour moves, scanned deterministically:

    * *reassign*: move one service to a server hosting nothing — in
      particular, a strictly faster idle server is always tried, and a
      strictly improving move is never rejected (first-improvement accepts
      every strict decrease);
    * *swap*: exchange the servers of two services.

    *objective* maps a :class:`~repro.core.Mapping` to the value being
    minimised (wire it to the memoized planner objective for free re-scores
    of revisited placements).  Passing *evaluator* (an
    :class:`~repro.optimize.incremental.IncrementalMappingCosts` built
    from *start* for the matching objective) instead prices each move by
    recomputing only the touched servers' ``Cin``/``Ccomp``/``Cout``.
    Passing *batch* (a :class:`~repro.core.MappingBatch` for the matching
    objective; ignored when *evaluator* is given) bulk-prices each
    neighbourhood column on the float kernel and skips candidates whose
    bound exceeds the running value's
    :func:`~repro.core.certified_threshold` — the moves taken, and the
    returned pair, stay bit-for-bit the ungated ones.

    Example (the heavy service walks onto the fast idle server)::

        >>> from fractions import Fraction
        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel, CostModel
        >>> app = make_application([("A", 1, 1), ("B", 9, 1)])
        >>> graph = ExecutionGraph.empty(app)
        >>> platform = Platform.of(speeds=[1, 1, 3])
        >>> objective = lambda m: CostModel(graph, platform, m).period_lower_bound(
        ...     CommModel.OVERLAP)
        >>> start = Mapping({"A": "S1", "B": "S2"})   # B on a slow server
        >>> value, best = placement_local_search(graph, objective, start, platform)
        >>> value, best.server("B")
        (Fraction(3, 1), 'S3')
    """
    start.validate_on(graph.nodes, platform)
    services = list(start.services())
    state = {"mapping": start}
    initial = evaluator.value() if evaluator is not None else objective(start)
    gate: Optional[dict] = None
    if batch is not None and evaluator is None:
        # value: the scan's running best (promoted on apply); skip: the
        # bulk-priced verdicts of the most recent neighbourhood column.
        gate = {"value": initial, "last": None, "skip": {}}

    def _bulk_gate(variants) -> None:
        """Bulk-price candidate moves; record which are provably rejects.

        *variants* is ``[(key, mapping), ...]``.  Between pricing and the
        scan consuming the verdicts no move can be accepted (every accept
        restarts the scan), so the running value — and hence the cut — is
        stable; skipped candidates are exactly those the ungated scan
        would score and reject.
        """
        import numpy as np

        from ..core import certified_threshold

        assert gate is not None
        gate["skip"] = {}
        try:
            cut = certified_threshold(float(gate["value"]))
        except OverflowError:
            return  # beyond float range: score every candidate exactly
        rows = np.stack([batch.encode(m) for _key, m in variants])
        fast = batch.values(rows)
        gate["skip"] = {
            key: bool(fast[k] > cut) for k, (key, _m) in enumerate(variants)
        }

    def idle_servers(service: str):
        used = set(state["mapping"].used_servers())
        names = [name for name in platform.names if name not in used]
        if gate is not None and names:
            _bulk_gate(
                [
                    ((service, server), state["mapping"].reassigned(service, server))
                    for server in names
                ]
            )
        return names

    def score_reassign(service: str, server: str) -> Fraction:
        if evaluator is not None:
            return evaluator.score_reassign(service, server)
        if gate is not None and gate["skip"].get((service, server)):
            return gate["value"]  # provably no better: reject without scoring
        val = objective(state["mapping"].reassigned(service, server))
        if gate is not None:
            gate["last"] = val
        return val

    def apply_reassign(service: str, server: str) -> None:
        if evaluator is not None:
            evaluator.apply_reassign(service, server)
        if gate is not None:
            gate["value"] = gate["last"]  # the accept just scored exactly
        state["mapping"] = state["mapping"].reassigned(service, server)

    def score_swap(a: str, b: str) -> Fraction:
        if evaluator is not None:
            return evaluator.score_swap(a, b)
        if gate is not None and gate["skip"].get(("swap", a, b)):
            return gate["value"]  # provably no better: reject without scoring
        val = objective(state["mapping"].swapped(a, b))
        if gate is not None:
            gate["last"] = val
        return val

    def apply_swap(a: str, b: str) -> None:
        if evaluator is not None:
            evaluator.apply_swap(a, b)
        if gate is not None:
            gate["value"] = gate["last"]
        state["mapping"] = state["mapping"].swapped(a, b)

    def all_pairs():
        pairs = [
            (a, b)
            for i, a in enumerate(services)
            for b in services[i + 1 :]
        ]
        if gate is not None and pairs:
            _bulk_gate(
                [
                    (("swap", a, b), state["mapping"].swapped(a, b))
                    for a, b in pairs
                ]
            )
        return pairs

    value = _scan_first_improvement(
        services,
        initial=initial,
        reassign_candidates=idle_servers,
        score_reassign=score_reassign,
        apply_reassign=apply_reassign,
        swap_candidates=all_pairs,
        score_swap=score_swap,
        apply_swap=apply_swap,
        max_moves=max_moves,
    )
    return value, state["mapping"]


def shared_placement_local_search(
    graph: ExecutionGraph,
    evaluator: IncrementalSharedCosts,
    platform: Platform,
    *,
    max_moves: int = 400,
) -> Tuple[Fraction, Mapping]:
    """First-improvement search over *shared* service-to-server assignments.

    The concurrent regime drops injectivity, so the neighbourhood widens:

    * *reassign*: move one service onto **any** other server — including
      one already hosting services (co-location zeroes the edge between
      co-located services, so packing chatty neighbours together can win);
    * *swap*: exchange the servers of two services on different servers.

    Every candidate is priced by the *evaluator*'s
    (:class:`~repro.optimize.incremental.IncrementalSharedCosts`)
    ``O(degree)`` deltas against the aggregated per-server load objective;
    committed moves mutate the evaluator, whose mapping is returned.

    Example (two chatty chain neighbours walk onto one server: splitting
    costs the size-4 transfer, co-locating zeroes it)::

        >>> from repro import ExecutionGraph, Mapping, Platform, make_application
        >>> from repro.core import CommModel
        >>> from repro.optimize.incremental import IncrementalSharedCosts
        >>> app = make_application([("A", 1, 4), ("B", "1/2", "1/4")])
        >>> graph = ExecutionGraph.chain(app, ["A", "B"])
        >>> platform = Platform.homogeneous(2)
        >>> start = Mapping.shared({"A": "S1", "B": "S2"})
        >>> ev = IncrementalSharedCosts(graph, platform, start)
        >>> value, best = shared_placement_local_search(graph, ev, platform)
        >>> value, best.server("A") == best.server("B")
        (Fraction(3, 1), True)
    """
    evaluator.mapping().validate_on(graph.nodes, platform)
    services = sorted(graph.nodes)

    def other_servers(service: str):
        home = evaluator.assignment[service]
        return [name for name in platform.names if name != home]

    def cross_server_pairs():
        # Swapping co-located services is a no-op in the shared space.
        return (
            (a, b)
            for i, a in enumerate(services)
            for b in services[i + 1 :]
            if evaluator.assignment[a] != evaluator.assignment[b]
        )

    value = _scan_first_improvement(
        services,
        initial=evaluator.value(),
        reassign_candidates=other_servers,
        score_reassign=evaluator.score_reassign,
        apply_reassign=evaluator.apply_reassign,
        swap_candidates=cross_server_pairs,
        score_swap=evaluator.score_swap,
        apply_swap=evaluator.apply_swap,
        max_moves=max_moves,
    )
    return value, evaluator.mapping()


__all__ = [
    "local_search_forest",
    "local_search_minlatency",
    "local_search_minperiod",
    "placement_local_search",
    "shared_placement_local_search",
]
