"""Hierarchical placement: partition the graph, map partitions to topology.

The process-mapping literature (Schulz & Woydt's hierarchical process
mapping; von Kirchbach et al.'s torus mapping) converges on the same
two-phase shape for structured platforms: first *partition* the
communication graph so chatty edges stay inside one partition, then *map*
partitions onto the platform's locality groups (racks, torus rows) so
cross-partition traffic crosses as few shared links as possible — and
refine with a local search.  On a contended topology this matters twice:
a cross-rack edge is both slower (route bottleneck) and *makes every
co-routed edge slower* (shared uplink capacity divides among flows).

This module supplies the seed; the refinement is the existing
reassignment/swap :func:`~repro.optimize.local_search.placement_local_search`
that :func:`~repro.optimize.placement.optimize_mapping` already drives
(strategy ``"hierarchical"``/``"auto"``).  Everything is deterministic:
services are taken by decreasing communication volume (ties: decreasing
work, then name), groups score by affinity to the services already placed
there, then by remaining speed capacity, then group order.

    >>> from repro import ExecutionGraph, Platform, make_application
    >>> from repro.core import TreeTopology
    >>> app = make_application(
    ...     [("A", 1, 2), ("B", 1, 1), ("C", 1, 2), ("D", 1, 1)])
    >>> graph = ExecutionGraph(app, [("A", "B"), ("C", "D")])
    >>> platform = Platform(
    ...     topology=TreeTopology(racks=2, servers_per_rack=2, up_bw="1/4"))
    >>> seed = hierarchical_seed(graph, platform)
    >>> seed.server("A")[:2] == seed.server("B")[:2]   # same rack
    True
    >>> seed.server("C")[:2] == seed.server("D")[:2]
    True
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from ..core import CostModel, ExecutionGraph, Mapping, Platform

ZERO = Fraction(0)


def _partition(
    graph: ExecutionGraph, platform: Platform
) -> List[Tuple[Tuple[str, ...], List[str]]]:
    """Greedy capacity-respecting partition of the graph over the groups.

    Returns ``[(member services, group server names), ...]`` per topology
    group.  Each group holds at most as many services as it has servers
    (the refined mapping stays injective); services join the group with
    the highest affinity — total size of messages exchanged with services
    already in the group — breaking ties toward the group with the most
    remaining speed capacity, then the earliest group.
    """
    sizes = CostModel(graph)  # unit model: platform-independent volumes
    app = graph.application
    work: Dict[str, Fraction] = {
        n: sizes.ancestor_selectivity(n) * app.cost(n) for n in graph.nodes
    }
    # Undirected communication weight per service pair (message sizes).
    edge_w: Dict[Tuple[str, str], Fraction] = {}
    volume: Dict[str, Fraction] = {n: ZERO for n in graph.nodes}
    for u, v in graph.edges:
        w = sizes.outsize(u)
        key = (u, v) if u < v else (v, u)
        edge_w[key] = edge_w.get(key, ZERO) + w
        volume[u] += w
        volume[v] += w

    groups = [
        (list(names), [platform.speed(s) for s in names])
        for _label, names in platform.topology.groups()
    ]
    members: List[List[str]] = [[] for _ in groups]
    speed_left: List[Fraction] = [sum(sp, ZERO) for _names, sp in groups]
    room: List[int] = [len(names) for names, _sp in groups]

    order = sorted(graph.nodes, key=lambda n: (-volume[n], -work[n], n))
    for svc in order:
        best = None
        best_rank = None
        for g in range(len(groups)):
            if room[g] == 0:
                continue
            affinity = ZERO
            for other in members[g]:
                key = (svc, other) if svc < other else (other, svc)
                affinity += edge_w.get(key, ZERO)
            rank = (affinity, speed_left[g], -g)
            if best_rank is None or rank > best_rank:
                best, best_rank = g, rank
        assert best is not None  # total capacity >= n (checked by caller)
        members[best].append(svc)
        room[best] -= 1
        # Charge the group the work it absorbed so load spreads out.
        speed_left[best] -= work[svc]
    return [
        (tuple(members[g]), list(groups[g][0])) for g in range(len(groups))
    ]


def hierarchical_seed(graph: ExecutionGraph, platform: Platform) -> Mapping:
    """Topology-aware injective seed mapping for the placement search.

    Phase 1 partitions the services over the topology's locality groups
    (chatty edges stay inside a group, group capacity respected); phase 2
    places each group's services work-heaviest-first onto its servers
    speed-fastest-first — the in-group analogue of
    :func:`~repro.optimize.placement.greedy_mapping`.  On a single-group
    (flat) topology this *is* the flat greedy mapping.
    """
    platform.require_capacity(len(graph.nodes))
    if len(platform.topology.groups()) <= 1:
        from .placement import greedy_mapping

        return greedy_mapping(graph, platform)
    sizes = CostModel(graph)
    app = graph.application
    order = {name: i for i, name in enumerate(platform.names)}
    assignment: Dict[str, str] = {}
    for services, servers in _partition(graph, platform):
        ranked = sorted(
            services,
            key=lambda n: (-(sizes.ancestor_selectivity(n) * app.cost(n)), n),
        )
        hosts = sorted(servers, key=lambda s: (-platform.speed(s), order[s]))
        for svc, host in zip(ranked, hosts):
            assignment[svc] = host
    return Mapping(assignment)


__all__ = ["hierarchical_seed"]
