"""Micro-batching: queue compatible requests briefly, solve them as one.

Distinct-but-compatible requests (same objective/model/method/exactness/
platform parameters, different workloads) that arrive within a short
*batch window* are flushed together as one group, which the server then
runs through a single ``solve_many``-style call — sharded over its
persistent worker-process pool when configured, or a serial loop against
the shared warm cache otherwise.  Batching trades a few milliseconds of
queueing latency for amortised dispatch: one executor hop and one cache
merge per *group*, not per request.

The batcher is generic: it knows nothing about solving.  The server
injects ``run_group(group, jobs) -> results`` and the batcher guarantees
ordering (results line up with the submitted jobs), flush-on-window,
flush-on-capacity (``max_batch``), and error fan-out (a failing group
run rejects every waiting future).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, List, Sequence, Tuple

RunGroup = Callable[[Hashable, Sequence[Any]], Awaitable[Sequence[Any]]]


class MicroBatcher:
    """Collect compatible jobs per *group* key; flush by window or size.

    Parameters
    ----------
    run_group:
        Async callable executing one flushed batch; must return one
        result per job, in job order.
    window:
        Seconds a group's first job waits for company before the flush
        (0 still batches: everything submitted in the same event-loop
        tick rides together).
    max_batch:
        Flush immediately once a group holds this many jobs.
    """

    def __init__(
        self, run_group: RunGroup, *, window: float = 0.005, max_batch: int = 16
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._run_group = run_group
        self.window = max(0.0, float(window))
        self.max_batch = int(max_batch)
        self._pending: Dict[Hashable, List[Tuple[Any, "asyncio.Future[Any]"]]] = {}
        self._timers: Dict[Hashable, "asyncio.Task[None]"] = {}
        self._running: "set[asyncio.Task[None]]" = set()
        #: Batches flushed / jobs they carried (``batched_jobs / batches``
        #: is the realised batch size).
        self.batches = 0
        self.batched_jobs = 0

    async def submit(self, group: Hashable, job: Any) -> Any:
        """Queue *job* under *group*; resolves when its batch has run."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        bucket = self._pending.setdefault(group, [])
        bucket.append((job, future))
        if len(bucket) >= self.max_batch:
            self._flush(group)
        elif len(bucket) == 1:
            self._timers[group] = loop.create_task(self._flush_later(group))
        return await future

    async def _flush_later(self, group: Hashable) -> None:
        try:
            await asyncio.sleep(self.window)
        except asyncio.CancelledError:
            return
        self._timers.pop(group, None)
        self._flush(group)

    def _flush(self, group: Hashable) -> None:
        timer = self._timers.pop(group, None)
        if timer is not None:
            timer.cancel()
        bucket = self._pending.pop(group, None)
        if not bucket:
            return
        task = asyncio.get_running_loop().create_task(
            self._run(group, bucket)
        )
        self._running.add(task)
        task.add_done_callback(self._running.discard)

    async def _run(
        self, group: Hashable, bucket: List[Tuple[Any, "asyncio.Future[Any]"]]
    ) -> None:
        jobs = [job for job, _ in bucket]
        self.batches += 1
        self.batched_jobs += len(jobs)
        try:
            results = await self._run_group(group, jobs)
            if len(results) != len(jobs):
                raise RuntimeError(
                    f"run_group returned {len(results)} results for "
                    f"{len(jobs)} jobs"
                )
        except Exception as exc:
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(bucket, results):
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush everything queued and wait for every batch to finish."""
        for group in list(self._pending):
            self._flush(group)
        while self._running:
            await asyncio.gather(*list(self._running), return_exceptions=True)


__all__ = ["MicroBatcher"]
