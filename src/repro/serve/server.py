"""The long-running planner daemon: ``python -m repro serve``.

An asyncio request loop over :mod:`repro.planner` that turns the
one-shot library call into a service for heavy repeated traffic:

* **JSON-lines front ends** — stdin/stdout and an optional TCP listener
  speak the same protocol (:mod:`repro.serve.protocol`); responses may
  arrive out of order, matched by ``id``.
* **In-flight coalescing** (:class:`~repro.serve.coalescer.Coalescer`) —
  N identical concurrent solve requests cost one underlying solve,
  keyed on the canonical :func:`~repro.planner.solve_key` fingerprint.
* **Micro-batching** (:class:`~repro.serve.batcher.MicroBatcher`) —
  compatible requests queued within the batch window ride one
  ``solve_many`` call, sharded over a persistent worker-process pool
  when ``workers > 0``.
* **Warm caches** — one process-wide
  :class:`~repro.planner.EvaluationCache` (objective values, shared by
  every solve and merged back from workers) plus a result cache of
  finished :class:`~repro.planner.PlanResult` payloads, both LRU+TTL
  bounded with hit/miss/eviction counters (``stats`` op).
* **Graceful shutdown** — the ``shutdown`` op (or stdin EOF) drains
  in-flight work, snapshots the warm evaluation cache to disk
  (``--snapshot``), answers ``"bye"`` and exits; the snapshot is
  reloaded on the next start so a restart doesn't begin cold.
* **Per-request deadlines** — a ``deadline`` parameter routes the solve
  through the anytime portfolio, so latency-sensitive clients always
  get the best plan found in time.
* **A live incumbent** — the ``replan`` op (:mod:`repro.dynamic`) holds
  one shared mapping in the daemon and mutates it event by event through
  warm-started bounded repair; requests are serialised on an asyncio
  lock so concurrent replans apply one at a time.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from ..planner.batch import _resolve_job, solve_many
from ..planner.cache import DEFAULT_MAX_ENTRIES, EvaluationCache, TTLCache
from ..planner.facade import solve
from .batcher import MicroBatcher
from .coalescer import Coalescer
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    SolveJob,
    encode_response,
    error_response,
    ok_response,
    parse_request,
    resolve_replan,
    resolve_solve,
)

Write = Callable[[Dict[str, Any]], None]


@dataclass
class ServeConfig:
    """Tunables of one :class:`PlannerServer` (CLI flags map 1:1)."""

    #: Worker processes for micro-batched groups (0 = solve in-process).
    workers: int = 0
    #: Seconds a request group waits for company before it is flushed.
    batch_window: float = 0.005
    #: Flush a group immediately at this many queued requests.
    max_batch: int = 16
    #: Evaluation-cache entry bound (None = unbounded).
    cache_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    #: Evaluation-cache per-entry TTL in seconds (None = no expiry).
    cache_ttl: Optional[float] = None
    #: Result-cache entry bound (finished PlanResult payloads).
    result_entries: Optional[int] = 4096
    #: Result-cache per-entry TTL in seconds (None = no expiry).
    result_ttl: Optional[float] = None
    #: Warm-cache snapshot file: loaded on start, written on shutdown.
    snapshot_path: Optional[str] = None


class PlannerServer:
    """One planner daemon: shared caches + coalescer + batcher + streams."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache = cache if cache is not None else EvaluationCache(
            max_entries=self.config.cache_entries, ttl=self.config.cache_ttl
        )
        self.results = TTLCache(
            max_entries=self.config.result_entries, ttl=self.config.result_ttl
        )
        self.coalescer = Coalescer()
        self.batcher = MicroBatcher(
            self._run_group,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
        )
        self.requests = 0
        self.errors = 0
        self.solves = 0
        self.replans = 0
        self.restored_entries = 0
        # The live replan incumbent (repro.dynamic); its lock is created
        # lazily inside the running loop for the same 3.9 reason as the
        # shutdown event below.
        self._dynamic = None
        self._dynamic_lock: Optional[asyncio.Lock] = None
        self._started = time.monotonic()
        self._tasks: "set[asyncio.Task[None]]" = set()
        # The shutdown event is created lazily inside the running loop:
        # on Python 3.9 an asyncio.Event constructed outside a loop binds
        # the wrong one and every later wait() fails.
        self._closing = False
        self._shutdown_event: Optional[asyncio.Event] = None
        self._snapshot_saved = False
        self._threads = ThreadPoolExecutor(
            max_workers=max(2, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._pool: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=self.config.workers)
            if self.config.workers > 0
            else None
        )
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        path = self.config.snapshot_path
        if path and os.path.exists(path):
            try:
                self.restored_entries = self.cache.load(path)
            except Exception as exc:  # a corrupt snapshot must not kill startup
                print(
                    f"serve: ignoring unreadable cache snapshot {path}: {exc}",
                    file=sys.stderr,
                )

    # -- request handling -------------------------------------------------

    async def handle_request(self, request) -> Dict[str, Any]:
        """One request in, one response dict out (never raises for
        client-input problems — those become one-line error responses).

        Accepts a parsed :class:`Request` or, for embedders and tests, a
        plain payload dict as it would appear on the wire."""
        self.requests += 1
        request_id = request.get("id") if isinstance(request, dict) else request.id
        try:
            if isinstance(request, dict):
                request = parse_request(json.dumps(request, default=str))
            if request.op == "ping":
                return ok_response(request.id, "pong")
            if request.op == "stats":
                return ok_response(request.id, self.stats())
            if request.op == "clear_cache":
                return ok_response(request.id, self._clear_caches())
            if request.op == "solve":
                return await self._handle_solve(request)
            if request.op == "replan":
                return await self._handle_replan(request)
            if request.op == "shutdown":
                # Reached only when called directly (tests / embedding);
                # the stream loops intercept shutdown to sequence the
                # drain before their own exit.
                return await self.shutdown(request.id)
            raise ProtocolError(f"unhandled op {request.op!r}")
        except (ProtocolError, ValueError, KeyError, NotImplementedError,
                ZeroDivisionError) as exc:
            self.errors += 1
            return error_response(request_id, str(exc))

    async def _handle_solve(self, request: Request) -> Dict[str, Any]:
        job = resolve_solve(request.params)
        started = time.perf_counter()
        cached = self.results.get(job.key)
        if cached is not None:
            return ok_response(
                request.id, cached, served="result-cache",
                wall_ms=round((time.perf_counter() - started) * 1000, 3),
            )

        async def run_one() -> Dict[str, Any]:
            return await self.batcher.submit(job.group, job)

        payload, coalesced = await self.coalescer.run(job.key, run_one)
        if not coalesced:
            self.results.put(job.key, payload)
        return ok_response(
            request.id, payload, served="coalesced" if coalesced else "solve",
            wall_ms=round((time.perf_counter() - started) * 1000, 3),
        )

    def _replan_lock(self) -> asyncio.Lock:
        if self._dynamic_lock is None:
            self._dynamic_lock = asyncio.Lock()
        return self._dynamic_lock

    async def _handle_replan(self, request: Request) -> Dict[str, Any]:
        """Apply one re-planning event to the daemon's live incumbent."""
        from ..dynamic import replan

        job = resolve_replan(request.params)
        started = time.perf_counter()
        async with self._replan_lock():
            state = self._dynamic
            if job.reset or state is None:
                if job.platform_spec is None:
                    raise ProtocolError(
                        "replan needs a 'platform' spec to initialise the "
                        "incumbent (send it on the first request or with "
                        "'reset': true)"
                    )
                state = _fresh_incumbent(job.platform_spec, job.model)
            elif job.platform_spec is not None:
                raise ProtocolError(
                    "a replan incumbent is already live; pass 'reset': "
                    "true to start over on a new platform"
                )
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._threads,
                lambda: replan(
                    state, job.event,
                    budget=job.budget, exactness=job.exactness,
                ),
            )
            self._dynamic = result.state
            self.replans += 1
        return ok_response(
            request.id, result.as_dict(), served="replan",
            wall_ms=round((time.perf_counter() - started) * 1000, 3),
        )

    async def _run_group(
        self, group: Hashable, jobs: Sequence[SolveJob]
    ) -> List[Dict[str, Any]]:
        """Execute one flushed batch off the event loop."""
        loop = asyncio.get_running_loop()
        payloads = await loop.run_in_executor(
            self._threads, self._solve_group, group, list(jobs)
        )
        self.solves += len(payloads)
        return payloads

    def _solve_group(
        self, group: Hashable, jobs: List[SolveJob]
    ) -> List[Dict[str, Any]]:
        """Worker-thread body: one ``solve_many`` shard-out when a worker
        pool is configured and the batch has fan-out, else a serial loop
        against the shared warm cache."""
        kwargs = dict(group)
        platform_spec = kwargs.pop("platform", None)
        if self._pool is not None and len(jobs) > 1:
            batch = solve_many(
                [job.spec for job in jobs],
                processes=min(self.config.workers, len(jobs)),
                cache=self.cache,
                pool=self._pool,
                platform=platform_spec,
                **kwargs,
            )
            results = batch.results
        else:
            results = []
            for job in jobs:
                problem, platform, mapping = _resolve_job(
                    job.spec, platform_spec, None
                )
                results.append(
                    solve(
                        problem,
                        platform=platform,
                        mapping=mapping,
                        cache=self.cache,
                        **kwargs,
                    )
                )
        return [r.as_dict(include_graph=False) for r in results]

    # -- ops ----------------------------------------------------------------

    def _clear_caches(self) -> Dict[str, Any]:
        from ..optimize.placement import clear_placement_memo

        dropped = {
            "evaluation_entries": len(self.cache),
            "result_entries": len(self.results),
        }
        self.cache.clear()
        self.results.clear()
        clear_placement_memo()
        return dropped

    def stats(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "solves": self.solves,
                "replans": self.replans,
                "coalesced": self.coalescer.coalesced,
                "in_flight": self.coalescer.in_flight,
                "batches": self.batcher.batches,
                "batched_jobs": self.batcher.batched_jobs,
                "workers": self.config.workers,
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "restored_entries": self.restored_entries,
            },
            "evaluation_cache": self.cache.stats().as_dict(),
            "result_cache": self.results.stats().as_dict(),
        }

    def save_snapshot(self) -> int:
        """Persist the warm evaluation cache (once per shutdown)."""
        path = self.config.snapshot_path
        if not path:
            return 0
        saved = self.cache.save(path)
        self._snapshot_saved = True
        return saved

    async def drain(self) -> None:
        """Wait for every accepted request to finish responding."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        await self.batcher.drain()
        await self.coalescer.drain()

    def _stop_event(self) -> asyncio.Event:
        if self._shutdown_event is None:
            self._shutdown_event = asyncio.Event()
            if self._closing:
                self._shutdown_event.set()
        return self._shutdown_event

    async def shutdown(self, request_id: Any = None) -> Dict[str, Any]:
        """Drain, snapshot, signal every stream loop to exit."""
        await self.drain()
        saved = self.save_snapshot()
        self._closing = True
        self._stop_event().set()
        return ok_response(request_id, "bye", saved_entries=saved)

    async def aclose(self) -> None:
        """Final cleanup (idempotent): drain, snapshot, stop executors."""
        await self.drain()
        if not self._snapshot_saved:
            self.save_snapshot()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        self._threads.shutdown(wait=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- stream front ends -------------------------------------------------

    def _spawn(self, request: Request, write: Write) -> None:
        async def respond() -> None:
            write(await self.handle_request(request))

        task = asyncio.get_running_loop().create_task(respond())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _accept_line(self, line: str, write: Write) -> Optional[Request]:
        """Parse and dispatch one request line; returns the request only
        for ``shutdown`` (the caller sequences the drain)."""
        line = line.strip()
        if not line:
            return None
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.requests += 1
            self.errors += 1
            write(error_response(None, str(exc)))
            return None
        if request.op == "shutdown":
            return request
        self._spawn(request, write)
        return None

    async def _shutdown_from_stream(
        self, request: Request, write: Write
    ) -> None:
        self.requests += 1
        write(await self.shutdown(request.id))

    async def run_stdio(
        self,
        *,
        stdin=None,
        stdout=None,
    ) -> None:
        """Serve JSON-lines over stdin/stdout until EOF or ``shutdown``.

        Lines are read by a daemon thread feeding an asyncio queue, so a
        ``shutdown`` arriving over TCP still lets the process exit even
        while stdin stays open.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()

        def feed() -> None:
            try:
                for line in stdin:
                    loop.call_soon_threadsafe(queue.put_nowait, line)
            except (ValueError, OSError):
                pass  # stream closed under us during shutdown
            loop.call_soon_threadsafe(queue.put_nowait, None)

        def write(response: Dict[str, Any]) -> None:
            stdout.write(encode_response(response) + "\n")
            stdout.flush()

        threading.Thread(target=feed, daemon=True, name="repro-stdin").start()
        stop = asyncio.ensure_future(self._stop_event().wait())
        try:
            while not self._closing:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, stop}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter not in done:
                    getter.cancel()
                    break
                line = getter.result()
                if line is None:  # EOF: drain and leave quietly
                    await self.drain()
                    break
                request = self._accept_line(line, write)
                if request is not None:
                    await self._shutdown_from_stream(request, write)
                    break
        finally:
            if not stop.done():
                stop.cancel()

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the TCP listener; returns the bound ``(host, port)``."""
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._tcp_server.sockets[0].getsockname()[:2]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        def write(response: Dict[str, Any]) -> None:
            writer.write((encode_response(response) + "\n").encode("utf-8"))

        stop = asyncio.ensure_future(self._stop_event().wait())
        try:
            while not self._closing:
                # Race the read against shutdown so a connection idling in
                # readline() can't keep the server from closing.
                getter = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {getter, stop}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter not in done:
                    getter.cancel()
                    break
                try:
                    raw = getter.result()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not raw:
                    break
                request = self._accept_line(raw.decode("utf-8"), write)
                if request is not None:
                    await self._shutdown_from_stream(request, write)
                    break
                await writer.drain()
        finally:
            if not stop.done():
                stop.cancel()
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives (TCP-only mode)."""
        await self._stop_event().wait()


def _fresh_incumbent(platform_spec: str, model: str):
    """The empty system on *platform_spec* — every replan stream's seed."""
    from ..concurrent import MultiApplication
    from ..core import Mapping
    from ..dynamic import DynamicState
    from ..planner.catalog import load_platform
    from ..planner.facade import _coerce_model

    return DynamicState(
        multi=MultiApplication([]),
        platform=load_platform(platform_spec),
        mapping=Mapping.shared({}),
        model=_coerce_model(model),
    )


async def serve_forever(
    config: Optional[ServeConfig] = None,
    *,
    stdio: bool = True,
    tcp: Optional[str] = None,
    announce: Callable[[str], None] = lambda msg: print(msg, file=sys.stderr),
) -> PlannerServer:
    """CLI entry body: run a :class:`PlannerServer` over the requested
    front ends until EOF/shutdown; returns the (closed) server."""
    server = PlannerServer(config)
    try:
        if tcp:
            host, _, port_text = tcp.rpartition(":")
            if not host or not port_text.isdigit():
                raise ValueError(
                    f"--tcp expects HOST:PORT (e.g. 127.0.0.1:7077), got {tcp!r}"
                )
            host, port = await server.start_tcp(host, int(port_text))
            announce(f"serve: listening on tcp://{host}:{port}")
        if server.restored_entries:
            announce(
                f"serve: restored {server.restored_entries} warm cache "
                f"entries from {server.config.snapshot_path}"
            )
        if stdio:
            await server.run_stdio()
        else:
            await server.wait_shutdown()
    finally:
        await server.aclose()
    return server


__all__ = ["PlannerServer", "ServeConfig", "serve_forever"]
