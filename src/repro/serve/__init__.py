"""Planner-as-a-service: the long-running ``python -m repro serve`` daemon.

The planner facade solves one problem per call; this package serves
planner traffic: an asyncio JSON-lines loop (stdio + TCP) that coalesces
identical in-flight requests (:mod:`~repro.serve.coalescer`),
micro-batches compatible ones through ``solve_many`` sharding
(:mod:`~repro.serve.batcher`), and keeps process-wide evaluation and
result caches warm across requests — LRU+TTL bounded, counter-
instrumented, snapshotted to disk across restarts
(:class:`~repro.planner.cache.TTLCache`).  See
:mod:`repro.serve.protocol` for the wire format and
:mod:`repro.serve.client` for ready-made test/load clients.
"""

from .batcher import MicroBatcher
from .client import StdioServeClient, TcpServeClient
from .coalescer import Coalescer
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    ReplanJob,
    Request,
    SolveJob,
    encode_response,
    error_response,
    ok_response,
    parse_request,
    resolve_replan,
    resolve_solve,
)
from .server import PlannerServer, ServeConfig, serve_forever

__all__ = [
    "Coalescer",
    "MicroBatcher",
    "OPS",
    "PROTOCOL_VERSION",
    "PlannerServer",
    "ProtocolError",
    "ReplanJob",
    "Request",
    "ServeConfig",
    "SolveJob",
    "StdioServeClient",
    "TcpServeClient",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "resolve_replan",
    "resolve_solve",
    "serve_forever",
]
