"""Small synchronous clients for the planner daemon (tests, smoke, bench).

Two transports, one interface: send a request dict, read a response dict.
Both support *pipelining* — send many requests before reading any
response — which is how a load generator gets the daemon's coalescer and
micro-batcher to see concurrent traffic.  Responses may arrive out of
order; match them by ``id``.

    >>> from repro.serve.client import StdioServeClient   # doctest: +SKIP
    >>> with StdioServeClient() as client:                # doctest: +SKIP
    ...     client.request({"op": "ping"})["result"]
    'pong'
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence


class _LineClient:
    """Shared JSON-lines plumbing over a (send, recv-line) pair."""

    def _send_line(self, line: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _recv_line(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def send(self, payload: Dict[str, Any]) -> None:
        """Fire one request without waiting (pipelining)."""
        self._send_line(json.dumps(payload, separators=(",", ":")) + "\n")

    def recv(self) -> Dict[str, Any]:
        """Read the next response line (order follows the server, not the
        client — match by ``id`` when pipelining)."""
        line = self._recv_line()
        if not line:
            raise ConnectionError("server closed the stream")
        return json.loads(line)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One synchronous round trip."""
        self.send(payload)
        return self.recv()

    def request_many(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Pipeline *payloads*, then collect one response each (any
        order on the wire; returned in arrival order)."""
        for payload in payloads:
            self.send(payload)
        return [self.recv() for _ in payloads]

    def shutdown(self) -> Dict[str, Any]:
        """Graceful stop: returns the daemon's ``"bye"`` response."""
        return self.request({"op": "shutdown"})

    # -- context management -------------------------------------------------

    def close(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __enter__(self) -> "_LineClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _serve_env() -> Dict[str, str]:
    """Subprocess environment with ``repro``'s source tree importable."""
    import repro

    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


class StdioServeClient(_LineClient):
    """Spawn ``python -m repro serve`` and talk JSON-lines over its pipes.

    *args* are extra CLI flags (e.g. ``["--workers", "2"]``).  Stderr is
    inherited so daemon announcements surface in test logs.
    """

    def __init__(
        self,
        args: Iterable[str] = (),
        *,
        python: str = sys.executable,
    ) -> None:
        self.process = subprocess.Popen(
            [python, "-m", "repro", "serve", *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=_serve_env(),
            text=True,
            bufsize=1,  # line buffered
        )

    def _send_line(self, line: str) -> None:
        assert self.process.stdin is not None
        self.process.stdin.write(line)
        self.process.stdin.flush()

    def _recv_line(self) -> str:
        assert self.process.stdout is not None
        return self.process.stdout.readline()

    def close(self, timeout: float = 30.0) -> int:
        """Close stdin (EOF => graceful exit) and reap; returns the exit
        code."""
        if self.process.stdin and not self.process.stdin.closed:
            self.process.stdin.close()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety net
            self.process.kill()
            return self.process.wait()


class TcpServeClient(_LineClient):
    """Talk to a running daemon's TCP front end."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def _send_line(self, line: str) -> None:
        self._file.write(line)
        self._file.flush()

    def _recv_line(self) -> str:
        return self._file.readline()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


__all__ = ["StdioServeClient", "TcpServeClient"]
