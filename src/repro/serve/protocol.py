"""The planner service's wire protocol: JSON-lines requests and responses.

One request per line, one response per line, in either direction of a
byte stream (the daemon speaks the same protocol over stdin/stdout and
TCP).  A request is a JSON object::

    {"id": 1, "op": "solve", "workload": "fig1", "objective": "period"}
    {"id": 2, "op": "stats"}
    {"id": 3, "op": "shutdown"}

``op`` selects the operation; ``id`` is an opaque client token echoed in
the response (clients pipeline requests and match responses by it —
responses may arrive out of order, since solves run concurrently).  A
response is ``{"id": ..., "ok": true, "result": ...}`` plus operation
metadata, or ``{"id": ..., "ok": false, "error": "one-line message"}``.

Operations
----------
``ping``
    Liveness check; returns ``"pong"``.
``solve``
    Solve one workload.  Parameters mirror the ``repro solve`` CLI:
    ``workload`` (spec string, required), ``objective``, ``model``,
    ``method``, ``effort``, ``platform`` (spec string), ``exactness``,
    ``deadline`` (seconds — routed to the anytime portfolio), and
    ``schedule`` (bool).  The response's ``result`` is the
    :meth:`~repro.planner.PlanResult.as_dict` payload and ``served``
    says how it was produced: ``"solve"`` (this request ran the solver),
    ``"coalesced"`` (an identical in-flight request's solve was shared),
    or ``"result-cache"`` (answered from the warm result cache).
``stats``
    Server counters plus :class:`~repro.planner.CacheStats` for the
    evaluation and result caches.
``replan``
    Mutate the daemon's live incumbent shared mapping through one
    re-planning event (:mod:`repro.dynamic`).  Parameters: ``event``
    (object with ``kind`` — admit/evict/load/drain/restore/noop — plus
    the trace-CSV fields ``app``/``workload``/``rho``/``servers``),
    ``budget`` (max voluntary migrations; omitted = unlimited),
    ``platform`` (spec string — required on the first request or with
    ``reset``, rejected while an incumbent is live), ``model``,
    ``exactness``, and ``reset`` (drop the incumbent, start from the
    empty system).  Omitting ``event`` is a no-op that reports the
    incumbent.  The response's ``result`` is the
    :meth:`~repro.dynamic.ReplanResult.as_dict` payload: the new
    incumbent summary plus move accounting.  Requests are serialised on
    the incumbent — concurrent replans apply one at a time.
``clear_cache``
    Empty both caches and the placement memo (used by load tests to
    measure cold mixes).
``shutdown``
    Graceful stop: drain in-flight work, snapshot the warm cache to
    disk, answer ``"bye"``, exit.

:func:`resolve_solve` validates a solve request into a :class:`SolveJob`
carrying the canonical :func:`~repro.planner.solve_key` fingerprint (the
coalescing/result-cache key) and the batching *group* — the solve
parameters minus the workload, so only requests that can ride one
``solve_many`` call batch together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from ..dynamic.events import Event
from ..planner.catalog import Workload, load_workload
from ..planner.facade import solve_key

#: Protocol revision, echoed by ``stats`` (bump on breaking changes).
PROTOCOL_VERSION = 1

#: Every operation the daemon understands.
OPS: Tuple[str, ...] = (
    "ping", "solve", "replan", "stats", "clear_cache", "shutdown",
)

#: Accepted keys of a ``solve`` request beyond ``id``/``op``.
SOLVE_PARAMS: Tuple[str, ...] = (
    "workload", "objective", "model", "method", "effort", "platform",
    "exactness", "deadline", "schedule", "robust",
)

#: Accepted keys of a ``replan`` request beyond ``id``/``op``.
REPLAN_PARAMS: Tuple[str, ...] = (
    "event", "budget", "platform", "model", "exactness", "reset",
)


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown op, bad parameters)."""


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    op: str
    id: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)


def parse_request(line: str) -> Request:
    """Parse one JSON line into a :class:`Request` (raises
    :class:`ProtocolError` with a one-line message on malformed input)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of: {', '.join(OPS)}"
        )
    params = {k: v for k, v in payload.items() if k not in ("id", "op")}
    return Request(op=op, id=payload.get("id"), params=params)


def ok_response(request_id: Any, result: Any, **meta: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result, **meta}


def error_response(request_id: Any, message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False, "error": str(message)}


def encode_response(response: Dict[str, Any]) -> str:
    """One compact JSON line (no embedded newlines), ready to write."""
    return json.dumps(response, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class SolveJob:
    """A validated solve request, ready for the coalescer and batcher.

    ``key`` is the :func:`~repro.planner.solve_key` fingerprint —
    content-based, so two requests for ``fig1`` with equal parameters
    share it while distinct platforms or exactness tiers never do.
    ``group`` is the parameter tuple *without* the workload: jobs in one
    group are compatible enough to ride a single ``solve_many`` call.
    """

    spec: str
    workload: Workload
    key: Hashable
    group: Tuple[Tuple[str, Any], ...]
    solve_kwargs: Dict[str, Any]
    platform_spec: Optional[str]


def resolve_solve(params: Mapping[str, Any]) -> SolveJob:
    """Validate ``solve`` parameters into a :class:`SolveJob`.

    Raises :class:`ProtocolError` on unknown keys and ``ValueError`` (via
    the catalog/facade coercions) on malformed specs — both surface as a
    one-line error response, never a dropped connection.
    """
    unknown = sorted(set(params) - set(SOLVE_PARAMS))
    if unknown:
        raise ProtocolError(
            f"unknown solve parameter(s) {unknown}; "
            f"accepted: {', '.join(SOLVE_PARAMS)}"
        )
    spec = params.get("workload")
    if not isinstance(spec, str) or not spec.strip():
        raise ProtocolError("solve requires a 'workload' spec string")
    spec = spec.strip()
    workload = load_workload(spec)

    platform_spec = params.get("platform")
    if platform_spec is not None and not isinstance(platform_spec, str):
        raise ProtocolError("'platform' must be a spec string")
    deadline = params.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"'deadline' must be a number of seconds, got {deadline!r}"
            ) from None
        if deadline < 0:
            raise ProtocolError(f"'deadline' must be >= 0, got {deadline}")
    robust = params.get("robust")
    if robust is not None and not isinstance(robust, str):
        # String specs only: the batching group tuple must stay hashable,
        # and a spec string round-trips through RobustSpec.parse anyway.
        raise ProtocolError(
            "'robust' must be a spec string such as "
            "'worst_case:eps=1/10,k=12', got "
            f"{type(robust).__name__}"
        )

    solve_kwargs: Dict[str, Any] = {
        "objective": str(params.get("objective", "period")),
        "model": str(params.get("model", "overlap")),
        "method": str(params.get("method", "auto")),
        "effort": params.get("effort"),
        "exactness": params.get("exactness"),
        "deadline": deadline,
        "schedule": bool(params.get("schedule", True)),
        "robust": robust,
    }

    # CLI semantics: an explicit platform wins and drops the workload's
    # pinned mapping; otherwise the bundled platform/mapping apply.
    if platform_spec is not None:
        platform, mapping = platform_spec, None
    else:
        platform, mapping = workload.platform, workload.mapping
    key = ("solve", solve_key(workload.problem, platform=platform,
                              mapping=mapping, **solve_kwargs))
    group = tuple(sorted(solve_kwargs.items(), key=lambda kv: kv[0]))
    group += (("platform", platform_spec),)
    return SolveJob(
        spec=spec,
        workload=workload,
        key=key,
        group=group,
        solve_kwargs=solve_kwargs,
        platform_spec=platform_spec,
    )


@dataclass(frozen=True)
class ReplanJob:
    """A validated replan request (the server holds the incumbent).

    ``event`` may be ``None`` — a status no-op against the live
    incumbent (or, with ``reset``, a bare re-initialisation).
    """

    event: Optional[Event]
    budget: Optional[int]
    platform_spec: Optional[str]
    model: str
    exactness: Optional[str]
    reset: bool


def resolve_replan(params: Mapping[str, Any]) -> ReplanJob:
    """Validate ``replan`` parameters into a :class:`ReplanJob`.

    Raises :class:`ProtocolError` on unknown keys or malformed scalars
    and ``ValueError`` (via :meth:`Event.from_dict`) on a bad event —
    both become one-line error responses.
    """
    unknown = sorted(set(params) - set(REPLAN_PARAMS))
    if unknown:
        raise ProtocolError(
            f"unknown replan parameter(s) {unknown}; "
            f"accepted: {', '.join(REPLAN_PARAMS)}"
        )
    raw_event = params.get("event")
    event = None
    if raw_event is not None:
        if not isinstance(raw_event, dict):
            raise ProtocolError(
                "'event' must be an object with a 'kind' field"
            )
        event = Event.from_dict(raw_event)
    budget = params.get("budget")
    if budget is not None:
        if isinstance(budget, bool) or not isinstance(budget, int):
            raise ProtocolError(f"'budget' must be an integer, got {budget!r}")
        if budget < 0:
            raise ProtocolError(f"'budget' must be >= 0, got {budget}")
    platform_spec = params.get("platform")
    if platform_spec is not None and not isinstance(platform_spec, str):
        raise ProtocolError("'platform' must be a spec string")
    exactness = params.get("exactness")
    if exactness is not None and not isinstance(exactness, str):
        raise ProtocolError("'exactness' must be a tier name string")
    return ReplanJob(
        event=event,
        budget=budget,
        platform_spec=platform_spec,
        model=str(params.get("model", "overlap")),
        exactness=exactness,
        reset=bool(params.get("reset", False)),
    )


__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REPLAN_PARAMS",
    "ReplanJob",
    "Request",
    "SOLVE_PARAMS",
    "SolveJob",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "resolve_replan",
    "resolve_solve",
]
