"""In-flight request coalescing: N identical concurrent solves cost one.

Production planner traffic repeats workload shapes; when several
identical requests are *simultaneously* in flight, only the first
(the *leader*) should pay for the solve — the rest (*followers*) await
the leader's future and share its result.  The :class:`Coalescer` keys
in-flight work on the canonical :func:`~repro.planner.solve_key`
fingerprint, so requests differing in any discriminating input (another
platform, another exactness tier, another deadline) never share a
future.

This is a distinct mechanism from the warm result cache: the cache
serves *finished* work, the coalescer de-duplicates *unfinished* work.
Together they make a duplicate-heavy mix cost ``O(distinct shapes)``
solves instead of ``O(requests)``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, Tuple


class Coalescer:
    """Share one in-flight awaitable per canonical request key.

    Single-event-loop discipline: all bookkeeping happens on the loop
    that runs :meth:`run`, so no lock is needed around ``_inflight``
    (the shared :class:`~repro.planner.EvaluationCache` the solves
    themselves touch carries its own lock).
    """

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, "asyncio.Future[Any]"] = {}
        #: Requests that started a solve (one per distinct in-flight key).
        self.leaders = 0
        #: Requests answered by awaiting another request's solve.
        self.coalesced = 0

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: Hashable, thunk: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Run *thunk* once per in-flight *key*; returns ``(result,
        coalesced)`` where *coalesced* says this caller shared a leader's
        work.  A leader's exception propagates to every follower (each
        raises it; the entry is removed so the next request retries)."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            # shield: one follower being cancelled must not cancel the
            # leader's future out from under the other followers.
            return await asyncio.shield(existing), True

        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        self.leaders += 1
        try:
            result = await thunk()
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved: no stray-exception log
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            del self._inflight[key]

    async def drain(self) -> None:
        """Wait until every in-flight solve has settled (for shutdown)."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )


__all__ = ["Coalescer"]
