"""repro — reproduction of "Mapping Filtering Streaming Applications With
Communication Costs" (Agrawal, Benoit, Dufossé, Robert; SPAA 2009).

The package models filtering streaming applications (services with costs
and selectivities), the paper's three communication models (OVERLAP,
INORDER, OUTORDER), plans (execution graph + cyclic operation list), the
polynomial orchestration/optimisation algorithms, executable NP-hardness
reductions, and the benchmark harness regenerating every worked example
and counter-example of the paper.

Quickstart — the planner facade is the front door (see
:mod:`repro.planner` and ``docs/api.md``)::

    >>> from repro import make_application, solve

    >>> app = make_application([("C1", 4, "1/2"), ("C2", 4, 1), ("C3", 1, 2)])

    Mapping: search over execution graphs for the best OVERLAP period.

    >>> result = solve(app, objective="period", model="overlap")
    >>> result.value, result.method
    (Fraction(4, 1), 'branch-and-bound')

    Orchestration: keep the chosen graph, schedule it under INORDER.

    >>> inorder = solve(result.graph, objective="period", model="inorder")
    >>> inorder.plan.is_valid()
    True

The same facade drives the CLI: ``python -m repro solve fig1 --model all``.
Low-level building blocks remain available in :mod:`repro.scheduling`
(orchestration of a fixed graph) and :mod:`repro.optimize` (search
strategies over graphs).
"""

from .core import (
    ALL_MODELS,
    Application,
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    Link,
    Mapping,
    OUTPUT,
    OperationList,
    Plan,
    Platform,
    Server,
    Service,
    as_fraction,
    comm_op,
    comp_op,
    make_application,
    validate,
)
from .planner import PlanResult, compare, solve

__version__ = "1.2.0"

__all__ = [
    "ALL_MODELS",
    "Application",
    "CommModel",
    "CostModel",
    "ExecutionGraph",
    "INPUT",
    "Link",
    "Mapping",
    "OUTPUT",
    "OperationList",
    "Plan",
    "PlanResult",
    "Platform",
    "Server",
    "Service",
    "__version__",
    "as_fraction",
    "comm_op",
    "comp_op",
    "compare",
    "make_application",
    "solve",
    "validate",
]
