"""repro — reproduction of "Mapping Filtering Streaming Applications With
Communication Costs" (Agrawal, Benoit, Dufossé, Robert; SPAA 2009).

The package models filtering streaming applications (services with costs
and selectivities), the paper's three communication models (OVERLAP,
INORDER, OUTORDER), plans (execution graph + cyclic operation list), the
polynomial orchestration/optimisation algorithms, executable NP-hardness
reductions, and the benchmark harness regenerating every worked example
and counter-example of the paper.

Quickstart::

    from repro import make_application, ExecutionGraph
    from repro.scheduling import schedule_period_overlap, inorder_schedule

    app = make_application([("C1", 4, 1), ("C2", 4, 1)])
    graph = ExecutionGraph.chain(app, ["C1", "C2"])
    plan = schedule_period_overlap(graph)
    print(plan.period, plan.latency)
"""

from .core import (
    ALL_MODELS,
    Application,
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    OUTPUT,
    OperationList,
    Plan,
    Service,
    as_fraction,
    comm_op,
    comp_op,
    make_application,
    validate,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS",
    "Application",
    "CommModel",
    "CostModel",
    "ExecutionGraph",
    "INPUT",
    "OUTPUT",
    "OperationList",
    "Plan",
    "Service",
    "__version__",
    "as_fraction",
    "comm_op",
    "comp_op",
    "make_application",
    "validate",
]
