"""Core data model: services, execution graphs, costs, operation lists.

This subpackage is a faithful executable rendition of Section 2 and
Appendix A of the paper.  Everything downstream (schedulers, optimisers,
reductions, benchmarks) is built on these types.
"""

from .batched import ForestBatch, MappingBatch, iter_forest_rows
from .constants import INPUT, OUTPUT
from .costs import CostModel, comm_edges
from .graph import CycleError, Edge, ExecutionGraph, PrecedenceError
from .models import ALL_MODELS, ONE_PORT_MODELS, CommModel
from .numeric import CERT_EPS, Exactness, FloatCosts, GraphArrays, certified_threshold
from .platform import (
    Link,
    Mapping,
    Platform,
    Server,
    link_flow_counts,
    platform_fingerprint,
)
from .topology import FlatTopology, Topology, TorusTopology, TreeTopology
from .uncertain import (
    UncertainValue,
    perturbed_application,
    perturbed_platform,
    quantile,
)
from .operation_list import (
    COMM,
    COMP,
    Operation,
    OperationList,
    comm_op,
    comp_op,
    is_comm,
    is_comp,
    modular_overlap,
    modular_residue,
    op_servers,
)
from .plan import Plan
from .service import Application, Numeric, Service, as_fraction, make_application
from .validation import (
    InvalidScheduleError,
    ValidationReport,
    assert_valid,
    validate,
)

__all__ = [
    "ALL_MODELS",
    "Application",
    "CERT_EPS",
    "COMM",
    "COMP",
    "CommModel",
    "CostModel",
    "CycleError",
    "Edge",
    "Exactness",
    "ExecutionGraph",
    "FlatTopology",
    "FloatCosts",
    "ForestBatch",
    "GraphArrays",
    "MappingBatch",
    "iter_forest_rows",
    "certified_threshold",
    "INPUT",
    "InvalidScheduleError",
    "Link",
    "Mapping",
    "Numeric",
    "ONE_PORT_MODELS",
    "OUTPUT",
    "Operation",
    "OperationList",
    "Plan",
    "Platform",
    "PrecedenceError",
    "Server",
    "Service",
    "Topology",
    "TorusTopology",
    "TreeTopology",
    "UncertainValue",
    "ValidationReport",
    "as_fraction",
    "assert_valid",
    "comm_edges",
    "comm_op",
    "comp_op",
    "is_comm",
    "is_comp",
    "link_flow_counts",
    "make_application",
    "modular_overlap",
    "modular_residue",
    "op_servers",
    "perturbed_application",
    "perturbed_platform",
    "platform_fingerprint",
    "quantile",
    "validate",
]
