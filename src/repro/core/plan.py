"""Plans: an execution graph together with an operation list (Section 2.1)."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from .graph import ExecutionGraph
from .models import CommModel
from .operation_list import OperationList
from .platform import Mapping, Platform
from .validation import ValidationReport, validate


@dataclass(frozen=True)
class Plan:
    """A complete solution ``PL = (EG, OL)`` for one communication model.

    ``platform``/``mapping`` record the platform the operation list was
    built for; ``None`` means the paper's normalised unit platform.
    Validation re-derives every duration from the same platform.
    """

    graph: ExecutionGraph
    operation_list: OperationList
    model: CommModel
    platform: Optional[Platform] = None
    mapping: Optional[Mapping] = None

    @property
    def period(self) -> Fraction:
        """The plan's period ``P = lambda``."""
        return self.operation_list.period

    @property
    def latency(self) -> Fraction:
        """The plan's latency (max end of a data-set-0 communication)."""
        return self.operation_list.latency

    def validate(self) -> ValidationReport:
        return validate(
            self.graph,
            self.operation_list,
            self.model,
            platform=self.platform,
            mapping=self.mapping,
        )

    def is_valid(self) -> bool:
        return self.validate().ok

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Plan(model={self.model}, period={self.period}, "
            f"latency={self.latency}, |E|={len(self.graph.edges)})"
        )


__all__ = ["Plan"]
