"""Batched candidate evaluation: one numpy row per candidate plan.

The float kernel of :mod:`repro.core.numeric` prices one candidate at a
time; the search spaces it gates are exponential — ``(n+1)^n`` forests,
``P(m, n)`` placements, ``m^n`` shared placements — so the per-candidate
Python overhead (graph construction, :class:`~repro.core.GraphArrays`
compilation, attribute dispatch) dominates the arithmetic.  This module
evaluates *matrices* of candidates instead:

* :class:`ForestBatch` — rows are **parent vectors** (entry ``j`` of a row
  is the parent index of service ``j``, ``-1`` for a root) over one
  application and an optional pinned platform/mapping.  One call prices
  every row's period lower bound and reports which rows are acyclic.
* :class:`MappingBatch` — rows are **assignment vectors** (entry ``j`` is
  the platform index of the server hosting service ``j``) for one fixed
  execution graph, injective or shared (with per-server aggregation and
  optional concurrent weights).  One call prices every row's period or
  latency bound.
* :func:`iter_forest_rows` — the full ``(n+1)^n`` parent-vector
  enumeration in chunks, in exactly
  :func:`repro.optimize.exhaustive.iter_forests` order.

**Bit-for-bit contract.**  Every value a batch returns is the *identical*
IEEE-754 double the scalar :class:`~repro.core.FloatCosts` computes for
the same candidate: the kernels replay the scalar fold orders operation
for operation (ancestor products in canonical name order, ``Cout`` sums in
lexicographic child order, shared per-server accumulation in ascending
service order).  The differential harness in
``tests/test_batched_numeric.py`` asserts this equality with ``==`` on
floats, so certified searches may swap the scalar gate for a batched one
without perturbing a single prune/keep decision — results stay bit-for-bit
the all-``Fraction`` ones.

    >>> import numpy as np
    >>> from repro import CommModel, make_application
    >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
    >>> batch = ForestBatch(app, CommModel.OVERLAP)
    >>> rows = np.array([[-1, -1], [-1, 0], [1, -1]])  # empty, A->B, B->A
    >>> valid, periods = batch.periods(rows)
    >>> valid.tolist(), periods.tolist()
    ([True, True, True], [8.0, 4.0, 8.0])
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .constants import INPUT, OUTPUT
from .graph import ExecutionGraph
from .models import CommModel
from .platform import Mapping, Platform
from .service import Application


def _edge_coef_matrix(
    names: Sequence[str],
    platform: Optional[Platform],
    mapping: Optional[Mapping],
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[int], bool]":
    """Pinned-mapping coefficient tables mirroring ``FloatCosts`` exactly.

    Returns ``(coef, input_coef, output_coef, speed_div, server_id, shared)``
    where ``coef[i, j]`` is the transfer-time coefficient of a potential
    edge ``i -> j`` (0.0 for co-located services under a shared mapping,
    1.0 on unit platforms, ``1/bandwidth`` otherwise), the input/output
    vectors cover the world edges, ``speed_div`` the per-node speed
    divisor and ``server_id`` a compact id per node (first-appearance
    order, every node ``-1`` when unmapped).
    """
    n = len(names)
    scaled = platform is not None and not platform.is_unit
    shared = mapping is not None and not mapping.is_injective
    if mapping is not None:
        server = [mapping.server(name) for name in names]
    else:
        server = list(names)

    if scaled:
        assert platform is not None
        speed_div = np.array(
            [float(platform.speed(server[i])) for i in range(n)]
        )
        coef = np.empty((n, n))
        # lenient: the full matrix includes self-pairs (diagonal, plus any
        # co-located pair under a shared mapping) that no edge ever reads.
        for i in range(n):
            for j in range(n):
                coef[i, j] = 1.0 / float(
                    platform.bandwidth(server[i], server[j], lenient=True)
                )
        input_coef = np.array(
            [1.0 / float(platform.bandwidth(INPUT, server[i])) for i in range(n)]
        )
        output_coef = np.array(
            [1.0 / float(platform.bandwidth(server[i], OUTPUT)) for i in range(n)]
        )
    else:
        speed_div = np.ones(n)
        coef = np.ones((n, n))
        input_coef = np.ones(n)
        output_coef = np.ones(n)
    if shared:
        for i in range(n):
            for j in range(n):
                if server[i] == server[j]:
                    coef[i, j] = 0.0
    if mapping is not None:
        sid: dict = {}
        server_id = [sid.setdefault(s, len(sid)) for s in server]
    else:
        server_id = [-1] * n
    return coef, input_coef, output_coef, speed_div, server_id, shared


class ForestBatch:
    """Vectorised period pricing of forest candidates (parent-vector rows).

    *app* fixes the services (canonical name order = column order);
    *platform*/*mapping* optionally pin a placement exactly as
    :class:`~repro.core.FloatCosts` accepts one (shared mappings aggregate
    per server).  Pass platform/mapping **already normalised** (unit
    platforms with injective mappings collapsed to ``None`` — see
    :func:`repro.optimize.evaluation.make_fast_period_objective`), which
    the evaluation-layer factory does for you.

    Construction converts the application's exact quantities to floats
    (raising :class:`OverflowError` beyond float range, like the scalar
    kernel); :meth:`periods` then prices any number of rows without
    touching a ``Fraction``.
    """

    def __init__(
        self,
        app: Application,
        model: CommModel,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
    ) -> None:
        self.app = app
        self.model = model
        self.platform = platform
        self.mapping = mapping
        names = list(app.names)
        self.names = names
        n = len(names)
        self.n = n
        self.sigma = np.array([float(app.selectivity(name)) for name in names])
        self.cost = np.array([float(app.cost(name)) for name in names])
        #: Columns in lexicographic name order — the order ``FloatCosts``
        #: folds each node's children in (edges are stored sorted).
        self.lex = sorted(range(n), key=names.__getitem__)
        (
            self.coef, self.input_coef, self.output_coef,
            self.speed_div, server_id, self.shared,
        ) = _edge_coef_matrix(names, platform, mapping)
        self.server_id = np.array(server_id)
        self.n_servers = int(self.server_id.max()) + 1 if mapping is not None else 0
        self.overlap = model.overlaps_compute
        # Contended topologies: each row is a different graph, hence a
        # different flow pattern over the pinned mapping.  ``usage_flat``
        # holds one 0/1 link-usage vector per potential (parent, child)
        # service pair (flattened ``p*n + c``; co-located pairs are all
        # zero — they are not flows) plus a zero sentinel row for roots;
        # :meth:`periods` gathers per-row counts from it and prices each
        # edge at ``max_l k_l / cap_l``, replaying the scalar kernel's
        # ``float(k) * (1/float(cap))`` expression bit-for-bit.
        caps = platform.link_capacities() if platform is not None else ()
        self.contended = (
            platform is not None
            and platform.has_contention
            and mapping is not None
            and len(caps) > 0
        )
        if self.contended:
            server = [mapping.server(name) for name in names]
            self.invcap = np.array([1.0 / float(c) for c in caps])
            usage = np.zeros((n * n + 1, len(caps)))
            for p in range(n):
                for c in range(n):
                    for lid in platform.route(server[p], server[c]):
                        usage[p * n + c, lid] = 1.0
            self.usage_flat = usage

    def ancestor_products(
        self, rows: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(valid, anc)`` for parent-vector *rows* (shape ``(R, n)``).

        ``valid[r]`` is ``False`` when row ``r``'s parent pointers contain
        a cycle (the rows :func:`~repro.optimize.exhaustive.iter_forests`
        filters out); ``anc[r, i]`` is the ancestor selectivity product of
        service ``i``, folded in canonical name order — bit-for-bit
        :attr:`repro.core.GraphArrays.anc`.
        """
        rows = np.asarray(rows)
        R, n = rows.shape
        if n != self.n:
            raise ValueError(f"expected {self.n} columns, got {n}")
        # Virtual root: pointer value n.  Walking n parent steps marks every
        # ancestor of every node; rows whose pointers haven't all reached
        # the root by then contain a cycle.
        ext = np.concatenate(
            [np.where(rows < 0, n, rows), np.full((R, 1), n, dtype=rows.dtype)],
            axis=1,
        )
        is_anc = np.zeros((R, n, n), dtype=bool)
        ptr = ext[:, :n].copy()
        for _ in range(n):
            live_r, live_i = np.nonzero(ptr < n)
            if live_r.size == 0:
                break
            is_anc[live_r, live_i, ptr[live_r, live_i]] = True
            ptr = np.take_along_axis(ext, ptr, axis=1)
        valid = (ptr == n).all(axis=1)
        anc = np.ones((R, n))
        sigma = self.sigma
        for j in range(n):  # canonical name order — the scalar fold order
            col = is_anc[:, :, j]
            if col.any():
                anc = np.where(col, anc * sigma[j], anc)
        return valid, anc

    def periods(self, rows: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """``(valid, period)`` per row — the scalar kernel's
        ``FloatCosts(graph, ...).period_lower_bound(model)`` bit-for-bit
        (period values of invalid rows are meaningless)."""
        rows = np.asarray(rows)
        valid, anc = self.ancestor_products(rows)
        R, n = rows.shape
        outsize = anc * self.sigma
        ccomp = (anc * self.cost) / self.speed_div

        r_idx = np.arange(R)
        parent = np.where(rows < 0, 0, rows)
        has_parent = rows >= 0
        col = np.arange(n)[None, :].repeat(R, axis=0)
        if self.contended:
            # Per-row flow counts: gather each edge's link-usage vector
            # (roots hit the zero sentinel), sum to k_l, price each edge
            # at the bottleneck ``max_l k_l / cap_l``.
            pid = np.where(has_parent, parent * n + col, n * n)
            urows = self.usage_flat[pid]                 # (R, n, L)
            lam = urows.sum(axis=1) * self.invcap[None, :]  # (R, L)
            edge_c = (urows * lam[:, None, :]).max(axis=2)  # (R, n)
        else:
            edge_c = self.coef[parent, col]
        # Cin: the single parent edge, or the world input message.
        cin = np.where(
            has_parent,
            outsize[r_idx[:, None], parent] * edge_c,
            self.input_coef[None, :],
        )
        # Cout: children folded in lexicographic name order (the stored
        # edge order the scalar kernel sums in), then the world output
        # message for childless services.
        cout = np.zeros((R, n))
        has_child = np.zeros((R, n), dtype=bool)
        for c in self.lex:
            p = rows[:, c]
            live = np.nonzero(p >= 0)[0]
            if live.size == 0:
                continue
            pl = p[live]
            cout[live, pl] += outsize[live, pl] * edge_c[live, c]
            has_child[live, pl] = True
        leaf = ~has_child
        cout[leaf] = (outsize * self.output_coef[None, :])[leaf]

        if self.shared:
            acc = np.zeros((3, R, self.n_servers))
            sid = self.server_id
            for i in range(n):  # ascending service order — the scalar fold
                acc[0, :, sid[i]] += cin[:, i]
                acc[1, :, sid[i]] += ccomp[:, i]
                acc[2, :, sid[i]] += cout[:, i]
            if self.overlap:
                per_server = np.maximum(np.maximum(acc[0], acc[1]), acc[2])
            else:
                per_server = (acc[0] + acc[1]) + acc[2]
            return valid, per_server.max(axis=1)
        if self.overlap:
            return valid, np.maximum(np.maximum(cin, ccomp), cout).max(axis=1)
        return valid, ((cin + ccomp) + cout).max(axis=1)

    def encode(self, graph: ExecutionGraph) -> np.ndarray:
        """The parent-vector row of a forest *graph* over this application."""
        row = np.full(self.n, -1, dtype=np.int64)
        index = {name: i for i, name in enumerate(self.names)}
        for i, name in enumerate(self.names):
            preds = graph.predecessors(name)
            if len(preds) > 1:
                raise ValueError("ForestBatch rows encode forests only")
            if preds:
                row[i] = index[preds[0]]
        return row

    def decode(self, row: Sequence[int]) -> ExecutionGraph:
        """The forest graph of one parent-vector row."""
        names = self.names
        return ExecutionGraph.from_parents(
            self.app,
            {
                names[i]: (names[int(p)] if p >= 0 else None)
                for i, p in enumerate(row)
            },
        )


class MappingBatch:
    """Vectorised placement pricing of one fixed graph (assignment rows).

    Rows index :attr:`Platform.names`; *kind* picks the priced bound
    (``"period"`` needs *model*, ``"latency"`` is model-independent);
    ``shared=True`` prices rows as shared placements (co-located edges
    zeroed, per-server aggregation, optional concurrent *weights* — which
    force aggregation exactly like the scalar kernel).  Values are
    bit-for-bit the per-row ``FloatCosts(graph, platform, mapping,
    weights=...)`` answers.
    """

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Platform,
        *,
        kind: str = "period",
        model: CommModel = CommModel.OVERLAP,
        shared: bool = False,
        weights=None,
        arrays=None,
    ) -> None:
        from .numeric import GraphArrays

        if kind not in ("period", "latency"):
            raise ValueError(f"kind must be 'period' or 'latency', got {kind!r}")
        self.graph = graph
        self.platform = platform
        self.kind = kind
        self.model = model
        self.shared = shared
        a = arrays if arrays is not None else GraphArrays(graph)
        self.arrays = a
        self.n = a.n
        self.m = len(platform)
        self.outsize = np.array(a.outsize)
        self.work = np.array(a.work)
        self.scaled = not platform.is_unit
        if self.scaled:
            self.speed = np.array([float(platform.speed(u)) for u in platform.names])
            self.bw_inv = np.empty((self.m, self.m))
            # lenient: the diagonal is never read (co-located edges are
            # zeroed or impossible), but the full matrix materialises it.
            for i, u in enumerate(platform.names):
                for j, v in enumerate(platform.names):
                    self.bw_inv[i, j] = 1.0 / float(
                        platform.bandwidth(u, v, lenient=True)
                    )
            self.bw_in = np.array(
                [1.0 / float(platform.bandwidth(INPUT, u)) for u in platform.names]
            )
            self.bw_out = np.array(
                [1.0 / float(platform.bandwidth(u, OUTPUT)) for u in platform.names]
            )
        if weights:
            self.weight: Optional[np.ndarray] = np.array(
                [float(weights.get(name, 1)) for name in a.names]
            )
        else:
            self.weight = None
        self.overlap = model.overlaps_compute
        self.server_index = {name: i for i, name in enumerate(platform.names)}
        # Contended topologies: the graph's edges are fixed but each row's
        # assignment induces a different flow pattern.  ``pair_usage``
        # holds one 0/1 link-usage vector per ordered server-index pair
        # (flattened ``si*m + sj``; same-server pairs are all zero);
        # :meth:`_flow_lambda` sums the usage of every cross-server edge
        # into per-row counts and the per-link ``k_l / cap_l`` columns the
        # per-edge bottleneck max reads — the scalar kernel's
        # ``float(k) * (1/float(cap))`` expression bit-for-bit.
        caps = platform.link_capacities()
        self.contended = platform.has_contention and len(caps) > 0
        if self.contended:
            self.invcap = np.array([1.0 / float(c) for c in caps])
            m = self.m
            usage = np.zeros((m * m, len(caps)))
            for i, u in enumerate(platform.names):
                for j, v in enumerate(platform.names):
                    for lid in platform.route(u, v):
                        usage[i * m + j, lid] = 1.0
            self.pair_usage = usage
            self.graph_edges = [
                (i, j) for i in range(self.n) for j in a.succs[i]
            ]

    def _flow_lambda(self, S: np.ndarray) -> Optional[np.ndarray]:
        """Per-row ``k_l / cap_l`` link columns under this batch's flows."""
        if not self.contended:
            return None
        counts = np.zeros((S.shape[0], self.pair_usage.shape[1]))
        m = self.m
        for i, j in self.graph_edges:
            counts += self.pair_usage[S[:, i] * m + S[:, j]]
        return counts * self.invcap[None, :]

    def _edge(
        self,
        S: np.ndarray,
        i: int,
        j: int,
        lam: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-row coefficient of the edge ``i -> j`` (service indices)."""
        if lam is not None:
            # Bottleneck over the route's links; same-server pairs have
            # all-zero usage, so the max is 0.0 — the shared-mapping
            # "co-located edges are free" rule falls out automatically.
            c = (self.pair_usage[S[:, i] * self.m + S[:, j]] * lam).max(axis=1)
            return c
        if self.scaled:
            c = self.bw_inv[S[:, i], S[:, j]]
        else:
            c = np.ones(S.shape[0])
        if self.shared:
            c = np.where(S[:, i] == S[:, j], 0.0, c)
        return c

    def _components(self, S: np.ndarray):
        """Per-row ``(cin, ccomp, cout)`` matrices, scalar fold orders."""
        a = self.arrays
        R = S.shape[0]
        n = self.n
        lam = self._flow_lambda(S)
        cin = np.empty((R, n))
        cout = np.empty((R, n))
        for i in range(n):
            preds = a.preds[i]
            if preds:
                acc = np.zeros(R)
                for p in preds:  # stored (lexicographic) edge order
                    acc += self.outsize[p] * self._edge(S, p, i, lam)
                cin[:, i] = acc
            else:
                cin[:, i] = self.bw_in[S[:, i]] if self.scaled else 1.0
            succs = a.succs[i]
            if succs:
                acc = np.zeros(R)
                for s in succs:
                    acc += self.outsize[i] * self._edge(S, i, s, lam)
                cout[:, i] = acc
            else:
                out_c = self.bw_out[S[:, i]] if self.scaled else 1.0
                cout[:, i] = self.outsize[i] * out_c
        speed_div = self.speed[S] if self.scaled else 1.0
        ccomp = self.work / speed_div if self.scaled else np.broadcast_to(
            self.work, (R, n)
        )
        return cin, ccomp, cout

    def values(self, rows: np.ndarray) -> np.ndarray:
        """Per-row bound values (period or latency, per *kind*)."""
        S = np.asarray(rows)
        if self.kind == "latency":
            return self._latencies(S)
        return self._periods(S)

    def _periods(self, S: np.ndarray) -> np.ndarray:
        cin, ccomp, cout = self._components(S)
        if self.shared:
            R = S.shape[0]
            acc = np.zeros((3, R, self.m))
            r_idx = np.arange(R)
            w = self.weight
            for i in range(self.n):  # ascending service order
                idx = S[:, i]
                wi = 1.0 if w is None else w[i]
                acc[0, r_idx, idx] += wi * cin[:, i]
                acc[1, r_idx, idx] += wi * ccomp[:, i]
                acc[2, r_idx, idx] += wi * cout[:, i]
            if self.overlap:
                per_server = np.maximum(np.maximum(acc[0], acc[1]), acc[2])
            else:
                per_server = (acc[0] + acc[1]) + acc[2]
            return per_server.max(axis=1)
        if self.overlap:
            return np.maximum(np.maximum(cin, ccomp), cout).max(axis=1)
        return ((cin + ccomp) + cout).max(axis=1)

    def _latencies(self, S: np.ndarray) -> np.ndarray:
        a = self.arrays
        cin, ccomp, cout = self._components(S)
        del cin, cout  # latency re-derives edge terms along the paths
        R = S.shape[0]
        lam = self._flow_lambda(S)
        finish = np.zeros((R, self.n))
        for i in a.topo:
            preds = a.preds[i]
            if preds:
                start = np.zeros(R)
                for p in preds:
                    t = finish[:, p] + self.outsize[p] * self._edge(S, p, i, lam)
                    start = np.maximum(start, t)
            else:
                start = self.bw_in[S[:, i]] if self.scaled else np.ones(R)
            finish[:, i] = start + ccomp[:, i]
        best = np.full(R, -np.inf)
        for i in range(self.n):
            if not a.succs[i]:
                out_c = self.bw_out[S[:, i]] if self.scaled else 1.0
                best = np.maximum(best, finish[:, i] + self.outsize[i] * out_c)
        return best

    def encode(self, mapping: Mapping) -> np.ndarray:
        """The assignment row of *mapping* for this graph's services."""
        return np.array(
            [self.server_index[mapping.server(name)] for name in self.arrays.names],
            dtype=np.int64,
        )


def iter_forest_rows(n: int, chunk: int = 512):
    """Yield ``(rows, base_index)`` chunks of the full parent-vector space.

    Rows enumerate the same ``n^n`` product as
    :func:`repro.optimize.exhaustive.iter_forests` — per child, choice 0
    is "root" and choices ``1..n-1`` the other services in canonical
    order, last child varying fastest — **including** the cyclic rows the
    scalar enumerator filters (callers mask them via
    :meth:`ForestBatch.periods`'s validity output, preserving candidate
    order and count exactly).
    """
    if n < 1:
        raise ValueError("need at least one service")
    # choice digit d of child c -> parent index (-1 = root)
    lookup = np.empty((n, n), dtype=np.int64)
    for c in range(n):
        lookup[c, 0] = -1
        for d in range(1, n):
            lookup[c, d] = d - 1 if d - 1 < c else d
    total = n ** n
    weights = [n ** (n - 1 - c) for c in range(n)]
    start = 0
    while start < total:
        stop = min(start + chunk, total)
        k = np.arange(start, stop, dtype=np.int64)
        rows = np.empty((stop - start, n), dtype=np.int64)
        for c in range(n):
            digits = (k // weights[c]) % n
            rows[:, c] = lookup[c, digits]
        yield rows, start
        start = stop


__all__ = ["ForestBatch", "MappingBatch", "iter_forest_rows"]
