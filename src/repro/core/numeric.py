"""Float fast-path cost kernel with exact certification (two-tier numerics).

Every quantity of :mod:`repro.core.costs` is an exact
:class:`~fractions.Fraction`, which keeps the reproduction bit-for-bit
faithful to the paper — and makes the search hot paths (branch-and-bound
node scoring, reparenting and placement local search, exhaustive scans) one
to two orders of magnitude slower than native floats.  This module is the
**fast tier** of a two-tier numeric engine:

* :class:`GraphArrays` compiles one execution graph into integer-indexed
  flat arrays — ancestor-selectivity products, output sizes, work volumes,
  predecessor/successor index lists — with no dict lookups or
  ``Fraction`` allocation past construction;
* :class:`FloatCosts` mirrors the :class:`~repro.core.CostModel` bound
  algebra (``Cin``/``Ccomp``/``Cout``, per-server aggregates,
  ``period_lower_bound``, ``latency_lower_bound``) in float arithmetic on
  those arrays, for any platform/mapping configuration (shared mappings
  included);
* :class:`Exactness` names the certification contract a caller picks, and
  :data:`CERT_EPS` is the conservative relative slack every *certified*
  float comparison must leave.

The **certification protocol**: searches rank, prune and accept/reject
candidates on the float tier, but a certified search may discard a
candidate only when its float lower bound exceeds the incumbent by more
than ``CERT_EPS`` *relative* — ``float_lb > incumbent * (1 + eps)`` — and
must re-score every surviving incumbent in exact ``Fraction``s.  Float
evaluation of the Section-2.1 algebra over ``n`` services accumulates at
most a few hundred ulps of relative error (``~1e-13``), so a slack of
``1e-9`` can never hide a true improvement: any candidate whose exact
value beats the exact incumbent also beats the float threshold, hence is
re-scored exactly and the returned optimum stays bit-for-bit the paper's.
See ``docs/performance.md`` for the full argument and measurements.

    >>> from repro import CommModel, ExecutionGraph, make_application
    >>> from repro.core import CostModel
    >>> app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
    >>> graph = ExecutionGraph.chain(app, ["A", "B"])
    >>> fast = FloatCosts(graph)
    >>> fast.period_lower_bound(CommModel.OVERLAP)
    4.0
    >>> float(CostModel(graph).period_lower_bound(CommModel.OVERLAP))
    4.0
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Union

from .constants import INPUT, OUTPUT
from .graph import ExecutionGraph
from .models import CommModel
from .platform import Mapping, Platform, link_flow_counts

#: Relative slack of every certified float comparison.  Float evaluation
#: of the cost algebra keeps ~1e-13 relative accuracy (a few hundred ulps
#: over the longest product chains we form), so 1e-9 leaves four orders of
#: magnitude of margin while still pruning everything that is not a
#: near-tie.  Near-ties inside the band fall back to exact arithmetic.
CERT_EPS = 1e-9


class Exactness(enum.Enum):
    """How much exactness a solve guarantees — the two-tier engine's knob.

    * ``EXACT`` — every comparison and every value in exact ``Fraction``
      arithmetic; the pre-fast-path behaviour, bit-for-bit.
    * ``CERTIFIED`` — rank/prune/scan on the float tier with the
      :data:`CERT_EPS` guard, re-score candidates that survive in exact
      ``Fraction``s.  Returned values are **bit-for-bit identical** to
      ``EXACT``; only the wall time changes.  The default everywhere.
    * ``FAST`` — float tier throughout; returned values are float images
      (exact binary ``Fraction(float)``) and optimality is *not*
      certified.  For scans and sweeps where speed beats the last ulp.
    """

    EXACT = "exact"
    CERTIFIED = "certified"
    FAST = "fast"

    @classmethod
    def coerce(cls, value: Union[str, "Exactness", None]) -> "Exactness":
        """Accept an :class:`Exactness`, its string value, or ``None``."""
        if value is None:
            return cls.CERTIFIED
        if isinstance(value, Exactness):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(e.value for e in cls)
            raise ValueError(
                f"unknown exactness {value!r}; expected one of: {names}"
            ) from None

    @property
    def uses_float(self) -> bool:
        """Does this mode run the float tier inside searches?"""
        return self is not Exactness.EXACT

    @property
    def memo_tier(self) -> str:
        """The cache/memo slot this tier's *values* belong to.

        ``CERTIFIED`` results are bit-for-bit the ``EXACT`` ones (the
        float tier only gates which candidates get exact scoring), so the
        two share the ``"exact"`` slot; ``FAST`` values are float images
        and must never be served to an exact or certified caller — they
        get their own slot.  The single source of truth for both the
        evaluation cache and the placement memo.
        """
        return "fast" if self is Exactness.FAST else "exact"


class GraphArrays:
    """Mapping-independent flat arrays of one execution graph.

    Node order is the application's canonical name order; every array is
    indexed by that integer position.  Platform-independent quantities —
    selectivities, costs, ancestor products, output sizes, work volumes —
    are computed once here so several :class:`FloatCosts` (one per
    candidate mapping, say) can share them.
    """

    __slots__ = (
        "graph", "names", "index", "n", "sigma", "cost",
        "preds", "succs", "topo", "anc", "outsize", "work",
    )

    def __init__(self, graph: ExecutionGraph) -> None:
        self.graph = graph
        names = list(graph.nodes)
        self.names = names
        index = {name: i for i, name in enumerate(names)}
        self.index = index
        self.n = len(names)
        app = graph.application
        self.sigma = [float(app.selectivity(name)) for name in names]
        self.cost = [float(app.cost(name)) for name in names]
        self.preds = [
            [index[p] for p in graph.predecessors(name)] for name in names
        ]
        self.succs = [
            [index[s] for s in graph.successors(name)] for name in names
        ]
        self.topo = [index[name] for name in graph.topological_order]
        anc = [1.0] * self.n
        for name in names:
            i = index[name]
            ancestors = graph.ancestors(name)
            prod = 1.0
            # Fold in canonical name order, not set-iteration order: the
            # product is then a deterministic float expression any batched
            # kernel can replay operation-for-operation (bit-for-bit).
            for j, other in enumerate(names):
                if other in ancestors:
                    prod *= self.sigma[j]
            anc[i] = prod
        self.anc = anc
        self.outsize = [anc[i] * self.sigma[i] for i in range(self.n)]
        self.work = [anc[i] * self.cost[i] for i in range(self.n)]


class FloatCosts:
    """Float mirror of :class:`~repro.core.CostModel` on flat arrays.

    Accepts the same ``(graph, platform, mapping)`` configurations as the
    exact model — unit platforms collapse to the paper's normalised
    arithmetic, shared (non-injective) mappings zero intra-server edges
    and aggregate per server.  Every query answers in native floats;
    relative agreement with the exact model is property-tested to 1e-9.

    Pass *arrays* (a :class:`GraphArrays` built from the same graph) to
    amortise the mapping-independent compilation across many mappings.
    *weights* (per-service scale factors, the concurrent planner's
    ``1 / period_target``) scale each service's three quantities in the
    shared per-server aggregation, mirroring
    :class:`repro.optimize.incremental.IncrementalSharedCosts`.
    """

    __slots__ = (
        "arrays", "platform", "mapping", "_shared",
        "_speed_div", "_in_coef", "_input_coef", "_out_coef", "_output_coef",
        "_server", "_cin", "_ccomp", "_cout", "_weight",
    )

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
        *,
        arrays: Optional[GraphArrays] = None,
        weights: Optional[Dict[str, object]] = None,
    ) -> None:
        a = arrays if arrays is not None else GraphArrays(graph)
        self.arrays = a
        if platform is None:
            mapping = None  # mirror CostModel: a mapping needs a platform
        elif mapping is None:
            mapping = Mapping.default(graph.nodes, platform)
        self.platform = platform
        self.mapping = mapping
        scaled = platform is not None and not platform.is_unit
        # Weighted queries always aggregate per server: a shared-space
        # candidate that happens to be injective must still be priced as
        # the weighted per-server load (the exact objective the concurrent
        # searches certify against), not the unweighted per-node maximum.
        shared = mapping is not None and (
            not mapping.is_injective or bool(weights)
        )
        self._shared = shared

        n = a.n
        if mapping is not None:
            server: List[Optional[str]] = [mapping.server(name) for name in a.names]
        else:
            server = [None] * n
        self._server = server

        if scaled:
            assert platform is not None
            speed_cache: Dict[str, float] = {}
            bw_cache: Dict[tuple, float] = {}

            def speed(u: str) -> float:
                found = speed_cache.get(u)
                if found is None:
                    found = speed_cache[u] = float(platform.speed(u))
                return found

            def coef(u: str, v: str) -> float:
                found = bw_cache.get((u, v))
                if found is None:
                    found = bw_cache[(u, v)] = 1.0 / float(platform.bandwidth(u, v))
                return found

            speed_div = [speed(server[i] or a.names[i]) for i in range(n)]
            # Contended topologies: the coefficient of a cross-server pair
            # is the route bottleneck with flow counts folded in —
            # ``max_l k_l / cap_l``.  Computed as ``float(k) * (1/float(cap))``
            # so the batched kernel can replay the expression bit-for-bit
            # (counts are small exact integers; the max is order-free).
            contended: Dict[tuple, float] = {}
            if platform.has_contention and mapping is not None:
                flows = [
                    (server[i], server[j])
                    for i in range(n)
                    for j in a.succs[i]
                    if server[i] != server[j]
                ]
                counts = link_flow_counts(platform, flows)
                invcap = [1.0 / float(c) for c in platform.link_capacities()]
                for pair in set(flows):
                    route = platform.route(*pair)
                    if route:
                        contended[pair] = max(
                            float(counts[l]) * invcap[l] for l in route
                        )
        else:
            def coef(u: str, v: str) -> float:  # noqa: ARG001 - unit platform
                return 1.0

            speed_div = [1.0] * n
            contended = {}

        def edge_coef(i: int, j: int) -> float:
            """Transfer-time coefficient of the edge ``i -> j`` (0 = free)."""
            if shared and server[i] == server[j]:
                return 0.0
            if not scaled:
                return 1.0
            eff = contended.get((server[i], server[j]))
            if eff is not None:
                return eff
            return coef(server[i] or a.names[i], server[j] or a.names[j])

        self._in_coef = [[edge_coef(p, i) for p in a.preds[i]] for i in range(n)]
        self._input_coef = [
            coef(INPUT, server[i] or a.names[i]) if scaled else 1.0
            for i in range(n)
        ]
        self._out_coef = [[edge_coef(i, s) for s in a.succs[i]] for i in range(n)]
        self._output_coef = [
            coef(server[i] or a.names[i], OUTPUT) if scaled else 1.0
            for i in range(n)
        ]

        outsize = a.outsize
        cin = [0.0] * n
        cout = [0.0] * n
        for i in range(n):
            preds = a.preds[i]
            if preds:
                acc = 0.0
                row = self._in_coef[i]
                for k, p in enumerate(preds):
                    acc += outsize[p] * row[k]
                cin[i] = acc
            else:
                cin[i] = self._input_coef[i]
            succs = a.succs[i]
            if succs:
                acc = 0.0
                row = self._out_coef[i]
                for k in range(len(succs)):
                    acc += outsize[i] * row[k]
                cout[i] = acc
            else:
                cout[i] = outsize[i] * self._output_coef[i]
        self._cin = cin
        self._ccomp = [a.work[i] / speed_div[i] for i in range(n)]
        self._cout = cout
        self._speed_div = speed_div
        if weights:
            self._weight: Optional[List[float]] = [
                float(weights.get(name, 1)) for name in a.names  # type: ignore[arg-type]
            ]
        else:
            self._weight = None

    # -- per-service queries (float mirrors of CostModel) -------------------
    def ancestor_selectivity(self, node: str) -> float:
        return self.arrays.anc[self.arrays.index[node]]

    def outsize(self, node: str) -> float:
        return self.arrays.outsize[self.arrays.index[node]]

    def cin(self, node: str) -> float:
        return self._cin[self.arrays.index[node]]

    def ccomp(self, node: str) -> float:
        return self._ccomp[self.arrays.index[node]]

    def cout(self, node: str) -> float:
        return self._cout[self.arrays.index[node]]

    def cexec(self, node: str, model: CommModel) -> float:
        i = self.arrays.index[node]
        if model.overlaps_compute:
            return max(self._cin[i], self._ccomp[i], self._cout[i])
        return self._cin[i] + self._ccomp[i] + self._cout[i]

    # -- global bounds -------------------------------------------------------
    def period_lower_bound(self, model: CommModel) -> float:
        """Float ``max_u Cexec(u)`` — per server when the mapping shares."""
        cin, ccomp, cout = self._cin, self._ccomp, self._cout
        overlap = model.overlaps_compute
        if self._shared:
            weight = self._weight
            sums: Dict[str, List[float]] = {}
            for i in range(self.arrays.n):
                acc = sums.get(self._server[i])  # type: ignore[arg-type]
                if acc is None:
                    acc = sums[self._server[i]] = [0.0, 0.0, 0.0]  # type: ignore[index]
                w = 1.0 if weight is None else weight[i]
                acc[0] += w * cin[i]
                acc[1] += w * ccomp[i]
                acc[2] += w * cout[i]
            if overlap:
                return max(max(acc) for acc in sums.values())
            return max(acc[0] + acc[1] + acc[2] for acc in sums.values())
        if overlap:
            best = 0.0
            for i in range(self.arrays.n):
                v = cin[i]
                if ccomp[i] > v:
                    v = ccomp[i]
                if cout[i] > v:
                    v = cout[i]
                if v > best:
                    best = v
            return best
        return max(
            cin[i] + ccomp[i] + cout[i] for i in range(self.arrays.n)
        )

    def latency_lower_bound(self) -> float:
        """Float critical-path latency bound (mirrors the exact model)."""
        a = self.arrays
        finish = [0.0] * a.n
        for i in a.topo:
            preds = a.preds[i]
            if preds:
                row = self._in_coef[i]
                start = 0.0
                for k, p in enumerate(preds):
                    t = finish[p] + a.outsize[p] * row[k]
                    if t > start:
                        start = t
            else:
                start = self._input_coef[i]
            finish[i] = start + self._ccomp[i]
        return max(
            finish[i] + a.outsize[i] * self._output_coef[i]
            for i in range(a.n)
            if not a.succs[i]
        )

    # -- per-server aggregation (shared mappings) ---------------------------
    def server_cin(self, server: str) -> float:
        return sum(
            self._cin[i] for i in range(self.arrays.n) if self._server[i] == server
        )

    def server_ccomp(self, server: str) -> float:
        return sum(
            self._ccomp[i] for i in range(self.arrays.n) if self._server[i] == server
        )

    def server_cout(self, server: str) -> float:
        return sum(
            self._cout[i] for i in range(self.arrays.n) if self._server[i] == server
        )

    def server_cexec(self, server: str, model: CommModel) -> float:
        cin = self.server_cin(server)
        ccomp = self.server_ccomp(server)
        cout = self.server_cout(server)
        if model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout


def certified_threshold(incumbent: float, eps: float = CERT_EPS) -> float:
    """The float cut above which a certified search may prune outright.

    A candidate whose float lower bound exceeds this can not have an exact
    value below the exact incumbent (the float error is orders of
    magnitude below *eps*); anything at or under it must be re-scored
    exactly before being discarded.
    """
    return incumbent * (1.0 + eps)


__all__ = [
    "CERT_EPS",
    "Exactness",
    "FloatCosts",
    "GraphArrays",
    "certified_threshold",
]
