"""Heterogeneous platforms: server speeds and link bandwidths.

The paper normalises the platform away (``delta_0 = b = s = 1``, Section
2.1): every server computes at unit speed and every link carries one unit
of data per time unit.  Its sequels (Benoit, Casanova, Rehn-Sonigo &
Robert, *Resource Allocation Strategies for In-Network Stream Processing*)
study the un-normalised regime: a server ``u`` with speed ``s_u`` processes
an input of size ``d`` through service ``C_i`` in ``c_i * d / s_u`` time
units, and a message of size ``delta`` on a link of bandwidth ``b_{u,v}``
takes ``delta / b_{u,v}`` time units.

This module models that regime exactly (all quantities are
:class:`~fractions.Fraction`):

* :class:`Server` — a named server with a speed ``s_u > 0``;
* :class:`Link` — a bandwidth override ``b_{u,v} > 0`` for one server pair
  (links are symmetric unless both directions are given; the special
  endpoints :data:`~repro.core.constants.INPUT` and
  :data:`~repro.core.constants.OUTPUT` describe the outside world);
* :class:`Platform` — servers + links + a default bandwidth, with
  :meth:`Platform.homogeneous` producing the paper's normalised platform
  (every existing paper value is reproduced bit-for-bit on it);
* :class:`Mapping` — an injective assignment of services to servers (the
  paper maps one service per server; a platform may have spare servers).

Link storage is pluggable: a :class:`~repro.core.topology.Topology`
(rack trees, tori — see :mod:`repro.core.topology`) can generate the
servers and the pairwise bandwidth table instead of explicit
:class:`Link` objects, and additionally declares physical routes whose
shared links *contend* — concurrent flows divide a link's capacity.
Plain platforms keep an implicit flat clique
(:class:`~repro.core.topology.FlatTopology`) and stay bit-for-bit
identical to their pre-topology behaviour, keys and fingerprints
included.

Example::

    >>> from fractions import Fraction
    >>> p = Platform.of(speeds=[1, 2], links={("S1", "S2"): "1/2"})
    >>> p.speed("S2"), p.bandwidth("S1", "S2"), p.bandwidth("S2", "S1")
    (Fraction(2, 1), Fraction(1, 2), Fraction(1, 2))
    >>> p.is_unit, Platform.homogeneous(3).is_unit
    (False, True)
    >>> m = Mapping({"A": "S2", "B": "S1"})
    >>> m.server("A")
    'S2'
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)
from typing import Mapping as TypingMapping

from .constants import INPUT, OUTPUT
from .topology import FlatTopology, Topology

Numeric = Union[int, float, str, Fraction]

_WORLD = (INPUT, OUTPUT)

ONE = Fraction(1)


def _fraction(value: Numeric, what: str) -> Fraction:
    from .service import as_fraction

    frac = as_fraction(value)
    if frac <= 0:
        raise ValueError(f"{what} must be > 0, got {frac}")
    return frac


@dataclass(frozen=True)
class Server:
    """A server ``u`` with speed ``s_u`` (unit speed = the paper's ``s = 1``)."""

    name: str
    speed: Fraction = ONE

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server name must be a non-empty string")
        object.__setattr__(self, "speed", _fraction(self.speed, f"server {self.name!r} speed"))


@dataclass(frozen=True)
class Link:
    """A bandwidth override ``b_{u,v}`` for the pair ``(u, v)``.

    Endpoints may be server names or the synthetic :data:`INPUT` /
    :data:`OUTPUT` constants (the outside world).  A link is symmetric:
    ``Link("S1", "S2", bw)`` also sets ``b_{S2,S1}`` unless a second link
    gives that direction explicitly.
    """

    src: str
    dst: str
    bandwidth: Fraction = ONE

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-link on {self.src!r}")
        object.__setattr__(
            self, "bandwidth", _fraction(self.bandwidth, f"link {self.src!r}->{self.dst!r} bandwidth")
        )


class Platform:
    """A set of servers plus link bandwidths (immutable, hashable).

    Parameters
    ----------
    servers:
        The :class:`Server` objects (order is the platform's canonical
        server order, used by :meth:`Mapping.default`).
    links:
        :class:`Link` bandwidth overrides; pairs not listed use
        *default_bandwidth*.
    default_bandwidth:
        ``b`` for every pair without an override (the paper's ``b = 1``).
        With a *topology* it prices the outside-world links (messages
        from :data:`INPUT` / to :data:`OUTPUT`), which ride dedicated
        wires and never contend.
    topology:
        A :class:`~repro.core.topology.Topology` generating the servers
        and link table structurally; mutually exclusive with explicit
        *servers*/*links*.
    """

    __slots__ = (
        "servers", "default_bandwidth", "_links", "_by_name", "_key",
        "_unit", "_topology",
    )

    def __init__(
        self,
        servers: Iterable[Server] = (),
        links: Iterable[Link] = (),
        *,
        default_bandwidth: Numeric = ONE,
        topology: Optional[Topology] = None,
    ) -> None:
        servers = tuple(servers)
        default_bw = _fraction(default_bandwidth, "default bandwidth")
        if topology is not None:
            if servers or tuple(links):
                raise ValueError(
                    "topology is mutually exclusive with explicit servers/links"
                )
            servers = tuple(
                Server(name, speed) for name, speed in topology.server_specs()
            )
            links = tuple(
                Link(u, v, bw)
                for (u, v), bw in sorted(topology.pair_bandwidths().items())
                if u < v and bw != default_bw
            )
        if not servers:
            raise ValueError("a platform needs at least one server")
        names = [s.name for s in servers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate server names: {dupes}")
        by_name = {s.name: s for s in servers}
        directed: Dict[Tuple[str, str], Fraction] = {}
        known = set(names) | {INPUT, OUTPUT}
        for link in links:
            for end in (link.src, link.dst):
                if end not in known:
                    raise KeyError(f"link endpoint {end!r} is not a server of the platform")
            if (link.src, link.dst) in directed:
                raise ValueError(f"duplicate link ({link.src!r}, {link.dst!r})")
            directed[(link.src, link.dst)] = link.bandwidth
        # Symmetric completion: a single direction sets both, explicit
        # reverse links win.
        for (a, b), bw in list(directed.items()):
            directed.setdefault((b, a), bw)
        self.servers: Tuple[Server, ...] = servers
        self.default_bandwidth = default_bw
        self._links: Dict[Tuple[str, str], Fraction] = directed
        self._by_name = by_name
        self._topology: Topology = (
            topology if topology is not None else FlatTopology(names)
        )
        base_key = (
            tuple((s.name, s.speed) for s in servers),
            tuple(sorted(directed.items())),
            default_bw,
        )
        # Flat platforms keep their historical 3-tuple key bit-for-bit (an
        # explicitly passed clique topology is indistinguishable from the
        # implicit one); structured platforms append the topology's content
        # key so two shapes with identical effective pairwise bandwidths
        # (but different routes, hence different contention) never collide
        # in any cache.
        topo_key = tuple(self._topology.key())
        if topo_key == ("clique",):
            self._key = base_key
        else:
            self._key = base_key + (("topology",) + topo_key,)
        # A contended platform is never "unit": its effective bandwidths
        # depend on the mapping, so its costs cannot collapse onto the
        # platform-free cache entries.
        self._unit = (
            all(s.speed == ONE for s in servers)
            and default_bw == ONE
            and all(bw == ONE for bw in directed.values())
            and not self._topology.contended
        )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def homogeneous(
        cls, n: int, *, speed: Numeric = ONE, bandwidth: Numeric = ONE, prefix: str = "S"
    ) -> "Platform":
        """``n`` identical servers — the default reproduces the paper exactly.

        ``Platform.homogeneous(n)`` is the normalised platform of Section
        2.1 (``s = b = 1``): every cost quantity equals its platform-free
        value, so paper instances stay bit-for-bit identical on it.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        servers = tuple(Server(f"{prefix}{i}", _fraction(speed, "speed")) for i in range(1, n + 1))
        return cls(servers, default_bandwidth=bandwidth)

    @classmethod
    def of(
        cls,
        *,
        speeds: Sequence[Numeric],
        links: Optional[TypingMapping[Tuple[str, str], Numeric]] = None,
        default_bandwidth: Numeric = ONE,
        prefix: str = "S",
    ) -> "Platform":
        """Shorthand: servers ``S1..Sn`` from *speeds* plus a link dict."""
        servers = tuple(
            Server(f"{prefix}{i}", _fraction(sp, "speed")) for i, sp in enumerate(speeds, start=1)
        )
        link_objs = tuple(
            Link(a, b, _fraction(bw, "bandwidth")) for (a, b), bw in (links or {}).items()
        )
        return cls(servers, link_objs, default_bandwidth=default_bandwidth)

    # -- queries --------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Server:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no server named {name!r}") from None

    def speed(self, name: str) -> Fraction:
        """``s_u`` of server *name*."""
        return self[name].speed

    def bandwidth(self, src: str, dst: str, *, lenient: bool = False) -> Fraction:
        """``b_{src,dst}``: link override if given, else the default.

        *src*/*dst* may be :data:`INPUT`/:data:`OUTPUT` (the outside
        world); pairs touching them default to *default_bandwidth* too.

        The lookup is **strict**: unknown server names, self-pairs and
        world-to-world pairs raise :class:`KeyError` — those are
        degenerate pairs no physical message crosses, and a silent
        default has historically hidden endpoint bugs in cost code.
        Pass ``lenient=True`` to restore the permissive behaviour
        (*default_bandwidth* for any degenerate-but-known pair), used by
        the batched kernels when they materialise full ``n x n``
        coefficient matrices whose diagonal is never read.
        """
        override = self._links.get((src, dst))
        if override is not None:
            return override
        for end in (src, dst):
            if end not in self._by_name and end not in _WORLD:
                raise KeyError(f"no server named {end!r}")
        if not lenient:
            if src == dst:
                raise KeyError(f"self-pair bandwidth ({src!r}, {dst!r}); no message crosses it")
            if src in _WORLD and dst in _WORLD:
                raise KeyError(f"world-to-world bandwidth ({src!r}, {dst!r}); no message crosses it")
        return self.default_bandwidth

    def link_overrides(self) -> Dict[Tuple[str, str], Fraction]:
        """A copy of the directed bandwidth-override table.

        Symmetric completion already applied — a single ``Link("S1",
        "S2", bw)`` shows up under both ``("S1", "S2")`` and ``("S2",
        "S1")``.  Pairs absent here price at :attr:`default_bandwidth`.
        Calibration and perturbation rebuild platforms from this.
        """
        return dict(self._links)

    def require_capacity(self, n_services: int) -> None:
        """Raise unless the platform has at least *n_services* servers."""
        if n_services > len(self.servers):
            raise ValueError(
                f"{n_services} services need at least that many servers; "
                f"platform has {len(self.servers)}"
            )

    @property
    def is_unit(self) -> bool:
        """True when every speed and bandwidth is 1 (the paper's platform).

        On a unit platform every cost quantity equals its platform-free
        value for *any* mapping, so unit platforms share evaluation-cache
        entries with ``platform=None``.
        """
        return self._unit

    @property
    def is_homogeneous(self) -> bool:
        """True when all speeds are equal and all bandwidths are equal.

        Judged on the topology-derived *effective* bandwidths (the pair
        table already folds route bottlenecks in); a contended topology
        is never homogeneous because its effective bandwidths vary with
        the mapping.
        """
        if self.has_contention:
            return False
        speeds = {s.speed for s in self.servers}
        bws = set(self._links.values()) | {self.default_bandwidth}
        return len(speeds) == 1 and len(bws) == 1

    # -- topology -------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The link structure behind this platform (flat clique by default)."""
        return self._topology

    @property
    def has_contention(self) -> bool:
        """True when concurrent flows share physical link capacity."""
        return self._topology.contended

    def route(self, src: str, dst: str) -> Tuple[int, ...]:
        """Physical link ids a ``src -> dst`` message crosses.

        Empty for self-pairs, for flat cliques, and for any pair touching
        the outside world (:data:`INPUT`/:data:`OUTPUT` ride dedicated
        links that never contend).
        """
        if src == dst or src in _WORLD or dst in _WORLD:
            return ()
        return self._topology.route(src, dst)

    def link_capacities(self) -> Tuple[Fraction, ...]:
        """Capacity per physical link, indexed by the ids :meth:`route` yields."""
        return self._topology.link_capacities()

    def key(self) -> Tuple:
        """Canonical hashable content key (used by the evaluation cache)."""
        return self._key

    def fingerprint(self) -> object:
        """Cache fingerprint: the sentinel ``"unit"`` for unit platforms.

        All unit platforms (any size) and ``platform=None`` produce
        identical cost values, so they deliberately share the sentinel; any
        non-unit platform fingerprints to its full content key, so a
        heterogeneous solve can never hit a homogeneous cache entry.
        """
        return "unit" if self._unit else self._key

    # -- dunder ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unit" if self._unit else ("homogeneous" if self.is_homogeneous else "heterogeneous")
        return f"Platform({len(self.servers)} servers, {kind})"


class Mapping:
    """An assignment of services to servers — injective by default.

    The paper dedicates one server per service; on a platform with spare
    servers the unused ones simply idle.  The sequels (*Resource Allocation
    for Multiple Concurrent In-Network Stream-Processing Applications*)
    lift the restriction: several services — possibly from different
    applications — may share one server.  Pass ``shared=True`` (or use
    :meth:`shared`) to allow that explicitly; the plain constructor keeps
    rejecting accidental co-location.  Immutable and hashable; iteration
    order follows the sorted service names.

    Example::

        >>> m = Mapping({"B": "S1", "A": "S2"})
        >>> m.items()
        (('A', 'S2'), ('B', 'S1'))
        >>> m.services(), m.used_servers()
        (('A', 'B'), ('S1', 'S2'))
        >>> s = Mapping.shared({"A": "S1", "B": "S1"})
        >>> s.is_injective, s.services_on("S1")
        (False, ('A', 'B'))
    """

    __slots__ = ("_assignment", "_items", "_allow_shared", "_injective")

    def __init__(
        self, assignment: TypingMapping[str, str], *, shared: bool = False
    ) -> None:
        assignment = dict(assignment)
        servers = list(assignment.values())
        injective = len(set(servers)) == len(servers)
        if not injective and not shared:
            dupes = sorted({s for s in servers if servers.count(s) > 1})
            raise ValueError(
                f"mapping must be injective (one service per server); "
                f"servers {dupes} host several services "
                f"(pass shared=True for concurrent shared-server mappings)"
            )
        self._assignment: Dict[str, str] = assignment
        self._items: Tuple[Tuple[str, str], ...] = tuple(sorted(assignment.items()))
        self._allow_shared = bool(shared)
        self._injective = injective

    @classmethod
    def shared(cls, assignment: TypingMapping[str, str]) -> "Mapping":
        """A possibly many-to-one mapping (services may share servers)."""
        return cls(assignment, shared=True)

    @classmethod
    def default(cls, services: Sequence[str], platform: Platform) -> "Mapping":
        """Positional one-to-one mapping: i-th service on the i-th server."""
        services = tuple(services)
        platform.require_capacity(len(services))
        return cls(dict(zip(services, platform.names)))

    # -- queries --------------------------------------------------------------
    def server(self, service: str) -> str:
        """The server hosting *service*."""
        try:
            return self._assignment[service]
        except KeyError:
            raise KeyError(f"no mapping for service {service!r}") from None

    def get(self, service: str) -> Optional[str]:
        return self._assignment.get(service)

    def services(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._items)

    def used_servers(self) -> Tuple[str, ...]:
        """The distinct servers hosting at least one service (sorted)."""
        return tuple(sorted(set(self._assignment.values())))

    def services_on(self, server: str) -> Tuple[str, ...]:
        """The services hosted by *server*, in sorted order."""
        return tuple(svc for svc, srv in self._items if srv == server)

    @property
    def is_injective(self) -> bool:
        """True when no two services share a server (the paper's regime)."""
        return self._injective

    def reassigned(self, service: str, server: str) -> "Mapping":
        """A copy with *service* moved to *server*.

        Shared-capable mappings stay shared-capable; a plain mapping must
        stay injective.
        """
        assignment = dict(self._assignment)
        assignment[service] = server
        return Mapping(assignment, shared=self._allow_shared)

    def swapped(self, a: str, b: str) -> "Mapping":
        """A copy with the servers of services *a* and *b* exchanged."""
        assignment = dict(self._assignment)
        assignment[a], assignment[b] = assignment[b], assignment[a]
        return Mapping(assignment, shared=self._allow_shared)

    def items(self) -> Tuple[Tuple[str, str], ...]:
        return self._items

    def validate_on(self, services: Iterable[str], platform: Platform) -> None:
        """Raise unless every service is mapped onto a platform server."""
        missing = sorted(set(services) - set(self._assignment))
        if missing:
            raise ValueError(f"mapping misses services: {missing}")
        unknown = sorted(
            {srv for srv in self._assignment.values() if srv not in platform}
        )
        if unknown:
            raise ValueError(f"mapping uses unknown servers: {unknown}")

    def key(self) -> Tuple[Tuple[str, str], ...]:
        """Canonical hashable content key (used by the evaluation cache)."""
        return self._items

    # -- dunder ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{svc}->{srv}" for svc, srv in self._items)
        return f"Mapping({inner})"


def platform_fingerprint(
    platform: Optional[Platform], mapping: Optional[Mapping] = None
) -> object:
    """Cache fingerprint of a ``(platform, mapping)`` pair.

    ``None`` and unit platforms collapse to the ``"unit"`` sentinel (the
    mapping is irrelevant there — all servers are identical); non-unit
    platforms key on their full content plus the mapping (or ``"*"`` when
    the mapping is left free for the placement optimiser).

    A **non-injective** mapping never collapses: on a unit platform the
    identity of the servers is still irrelevant, but *which services are
    co-located* changes every aggregated cost (intra-server edges are
    free, per-server loads add up), so the full many-to-one assignment is
    always part of the fingerprint.  Two shared mappings that co-locate
    different service pairs on the same platform must never share a cache
    entry.
    """
    shared = mapping is not None and not mapping.is_injective
    if platform is None or platform.is_unit:
        return ("unit", mapping.key()) if shared else "unit"
    return (platform.key(), mapping.key() if mapping is not None else "*")


def link_flow_counts(
    platform: Platform, server_pairs: Iterable[Tuple[str, str]]
) -> Dict[int, int]:
    """Flows per physical link for the given ``(src_server, dst_server)`` pairs.

    Each pair is one concurrent flow (a graph edge crossing servers);
    pairs with an empty :meth:`Platform.route` — co-located, flat, or
    touching the outside world — contribute nothing.  The counts are the
    ``k_l`` of the contention model: ``k`` flows sharing a link of
    capacity ``c`` each see ``c / k``.
    """
    counts: Dict[int, int] = {}
    for src, dst in server_pairs:
        for lid in platform.route(src, dst):
            counts[lid] = counts.get(lid, 0) + 1
    return counts


__all__ = [
    "Link",
    "Mapping",
    "Platform",
    "Server",
    "link_flow_counts",
    "platform_fingerprint",
]
