"""The three communication models of the paper (Section 2.2).

* :attr:`CommModel.OVERLAP` — multi-port communications with full
  computation/communication overlap.  Concurrent communications on a
  server share bandwidth with a constant ratio each; the per-direction
  ratio sums may never exceed the (normalised) bandwidth ``b = 1``.
* :attr:`CommModel.INORDER` — one-port, no overlap, and each server fully
  processes data set ``n`` (all receives, then the computation, then all
  sends) before touching data set ``n + 1``.
* :attr:`CommModel.OUTORDER` — one-port, no overlap, but a server may
  interleave operations belonging to different data sets, as long as no
  two of its operations ever execute simultaneously.
"""

from __future__ import annotations

import enum
from typing import Tuple


class CommModel(enum.Enum):
    """Communication model enumeration."""

    OVERLAP = "overlap"
    INORDER = "inorder"
    OUTORDER = "outorder"

    @property
    def multiport(self) -> bool:
        """Can a server drive several communications concurrently?"""
        return self is CommModel.OVERLAP

    @property
    def overlaps_compute(self) -> bool:
        """Can a server compute while communicating?"""
        return self is CommModel.OVERLAP

    @property
    def in_order(self) -> bool:
        """Must each server finish a data set before starting the next?"""
        return self is CommModel.INORDER

    def __str__(self) -> str:
        return self.value.upper()


#: All models, in the paper's order of presentation.
ALL_MODELS: Tuple[CommModel, ...] = (
    CommModel.OVERLAP,
    CommModel.INORDER,
    CommModel.OUTORDER,
)

#: The two one-port / no-overlap variants.
ONE_PORT_MODELS: Tuple[CommModel, ...] = (CommModel.INORDER, CommModel.OUTORDER)

__all__ = ["CommModel", "ALL_MODELS", "ONE_PORT_MODELS"]
