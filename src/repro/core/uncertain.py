"""Uncertain parameters: measured values with intervals and samples.

Calibration (:mod:`repro.calibrate`) never observes the true service
costs, selectivities, speeds or bandwidths — it observes noisy records
and fits them.  :class:`UncertainValue` is the currency of that fit: a
nominal point estimate plus an uncertainty interval ``[lo, hi]`` and,
when available, the raw per-record sample estimates.  Robust planning
(:mod:`repro.robust`) consumes the same type from the other side,
sampling concrete parameter scenarios out of the intervals.

The perturbation helpers build plain :class:`~repro.core.Application` /
:class:`~repro.core.Platform` objects — *content-keyed* like any other,
so every downstream fingerprint (``platform_fingerprint``, evaluation
cache keys, ``solve_key``) distinguishes perturbed from nominal
parameters with no special casing.

All arithmetic stays in exact :class:`~fractions.Fraction`s: quantiles
use the nearest-rank convention and interval sampling draws rational
points, so a noise-free calibration round-trips parameters *exactly*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .constants import INPUT, OUTPUT
from .platform import Link, Platform, Server
from .service import Application, Numeric, Service, as_fraction
from .topology import FlatTopology

#: Denominator of rational uniform draws from an interval (fine enough
#: that scenario sampling never aliases, coarse enough to keep Fractions
#: small).
_GRID = 10**6


def quantile(samples: Sequence[Numeric], q: Numeric) -> Fraction:
    """Nearest-rank empirical quantile of *samples* (exact, deterministic).

    ``q=0`` is the minimum, ``q=1`` the maximum, ``q=1/2`` the lower
    median.  Nearest-rank keeps the result *a sample value* — no
    interpolation — so noise-free data (all samples equal) recovers the
    common value exactly.
    """
    values = sorted(as_fraction(v) for v in samples)
    if not values:
        raise ValueError("quantile of an empty sample set")
    qf = as_fraction(q)
    if not 0 <= qf <= 1:
        raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
    import math

    rank = math.ceil(qf * len(values)) - 1
    return values[max(0, min(rank, len(values) - 1))]


@dataclass(frozen=True)
class UncertainValue:
    """A fitted parameter: nominal estimate, interval, raw samples.

    ``nominal`` is the point estimate a nominal plan would use; ``[lo,
    hi]`` brackets it (empirical quantiles for fitted values, a relative
    band for declared intervals); ``samples`` optionally keeps the
    per-record estimates so robust planning can resample empirically.
    Hashable — robust specs embed these in cache keys.
    """

    nominal: Fraction
    lo: Fraction
    hi: Fraction
    samples: Tuple[Fraction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nominal", as_fraction(self.nominal))
        object.__setattr__(self, "lo", as_fraction(self.lo))
        object.__setattr__(self, "hi", as_fraction(self.hi))
        object.__setattr__(
            self, "samples", tuple(as_fraction(s) for s in self.samples)
        )
        if not self.lo <= self.nominal <= self.hi:
            raise ValueError(
                f"UncertainValue needs lo <= nominal <= hi, got "
                f"[{self.lo}, {self.nominal}, {self.hi}]"
            )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def point(cls, value: Numeric) -> "UncertainValue":
        """A certain value: zero-width interval, no samples."""
        v = as_fraction(value)
        return cls(v, v, v)

    @classmethod
    def from_samples(
        cls,
        samples: Iterable[Numeric],
        *,
        lo_q: Numeric = Fraction(1, 10),
        hi_q: Numeric = Fraction(9, 10),
        estimator: str = "median",
    ) -> "UncertainValue":
        """Fit from per-record estimates.

        ``estimator="median"`` (the robust quantile fit — exact on
        noise-free data) or ``"mean"`` (the least-squares solution of
        ``min Σ (sample - x)²``).  ``lo_q``/``hi_q`` pick the interval.
        """
        values = tuple(as_fraction(s) for s in samples)
        if not values:
            raise ValueError("UncertainValue.from_samples needs at least one sample")
        if estimator == "median":
            nominal = quantile(values, Fraction(1, 2))
        elif estimator == "mean":
            nominal = sum(values, Fraction(0)) / len(values)
        else:
            raise ValueError(
                f"unknown estimator {estimator!r}; expected 'median' or 'mean'"
            )
        lo = min(quantile(values, lo_q), nominal)
        hi = max(quantile(values, hi_q), nominal)
        return cls(nominal, lo, hi, values)

    @classmethod
    def interval(cls, nominal: Numeric, rel: Numeric) -> "UncertainValue":
        """A declared relative band: ``nominal * (1 ± rel)``."""
        v = as_fraction(nominal)
        r = as_fraction(rel)
        if r < 0:
            raise ValueError(f"relative half-width must be >= 0, got {rel!r}")
        return cls(v, v * (1 - r), v * (1 + r))

    # -- queries --------------------------------------------------------------
    @property
    def width(self) -> Fraction:
        return self.hi - self.lo

    @property
    def relative_width(self) -> Fraction:
        """``width / nominal`` (0 for a zero nominal)."""
        return self.width / self.nominal if self.nominal else Fraction(0)

    def sample(self, rng) -> Fraction:
        """One scenario draw: an empirical resample when raw samples are
        kept, else a uniform rational point of ``[lo, hi]``."""
        if self.samples:
            return self.samples[rng.randrange(len(self.samples))]
        if self.lo == self.hi:
            return self.nominal
        return self.lo + self.width * Fraction(rng.randrange(_GRID + 1), _GRID)

    def as_dict(self) -> Dict[str, object]:
        return {
            "nominal": str(self.nominal),
            "lo": str(self.lo),
            "hi": str(self.hi),
            "n_samples": len(self.samples),
        }


def _pair(key: Tuple[str, str]) -> Tuple[str, str]:
    u, v = key
    return (u, v) if u <= v else (v, u)


def perturbed_application(
    app: Application,
    *,
    costs: Optional[Mapping[str, Numeric]] = None,
    selectivities: Optional[Mapping[str, Numeric]] = None,
) -> Application:
    """*app* with some service costs/selectivities replaced.

    Missing names keep their nominal value; service order and precedence
    are preserved, so the result is content-comparable against the
    original (same fingerprint discipline, distinct content key).
    """
    costs = dict(costs or {})
    selectivities = dict(selectivities or {})
    unknown = sorted((set(costs) | set(selectivities)) - set(app.names))
    if unknown:
        raise ValueError(f"perturbed_application: unknown service(s) {unknown}")
    services = tuple(
        Service(
            s.name,
            as_fraction(costs.get(s.name, s.cost)),
            as_fraction(selectivities.get(s.name, s.selectivity)),
        )
        for s in app.services
    )
    return Application(services, app.precedence)


def perturbed_platform(
    platform: Platform,
    *,
    speeds: Optional[Mapping[str, Numeric]] = None,
    bandwidths: Optional[Mapping[Tuple[str, str], Numeric]] = None,
    default_bandwidth: Optional[Numeric] = None,
) -> Platform:
    """*platform* with some speeds/bandwidths replaced (flat platforms).

    ``bandwidths`` is keyed by unordered server pair (either order; the
    synthetic :data:`~repro.core.INPUT`/:data:`~repro.core.OUTPUT`
    endpoints are allowed) and sets both directions.  Pairs without an
    existing override become new links.  Structured (topology-generated)
    platforms are refused — their bandwidths are derived from the
    topology's shape, so perturb the topology parameters and rebuild
    instead.
    """
    if not isinstance(platform.topology, FlatTopology):
        raise ValueError(
            "perturbed_platform supports flat (clique) platforms only; "
            "rebuild structured topologies from perturbed parameters instead"
        )
    speeds = dict(speeds or {})
    unknown = sorted(set(speeds) - set(platform.names))
    if unknown:
        raise ValueError(f"perturbed_platform: unknown server(s) {unknown}")
    servers = tuple(
        Server(s.name, as_fraction(speeds.get(s.name, s.speed)))
        for s in platform.servers
    )
    overrides = platform.link_overrides()
    new_bw: Dict[Tuple[str, str], Fraction] = {}
    known = set(platform.names) | {INPUT, OUTPUT}
    for key, value in (bandwidths or {}).items():
        u, v = key
        for end in (u, v):
            if end not in known:
                raise ValueError(f"perturbed_platform: unknown server {end!r}")
        new_bw[_pair(key)] = as_fraction(value)

    links = []
    for (u, v), bw in sorted(overrides.items()):
        reverse = overrides.get((v, u))
        if reverse == bw and u > v:
            continue  # symmetric pair already emitted from the (v, u) side
        links.append(Link(u, v, new_bw.get(_pair((u, v)), bw)))
    existing_pairs = {_pair(key) for key in overrides}
    for pair in sorted(set(new_bw) - existing_pairs):
        links.append(Link(pair[0], pair[1], new_bw[pair]))
    return Platform(
        servers,
        tuple(links),
        default_bandwidth=(
            platform.default_bandwidth
            if default_bandwidth is None
            else as_fraction(default_bandwidth)
        ),
    )


__all__ = [
    "UncertainValue",
    "perturbed_application",
    "perturbed_platform",
    "quantile",
]
