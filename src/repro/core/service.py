"""Services, applications and exact-rational numeric coercion.

A *service* (also called a filter or a query in the paper) is characterised
by its elementary cost ``c_i`` and its selectivity ``sigma_i``; an
*application* is a set of services together with precedence constraints
(Section 2.1 of the paper).  After the paper's normalisation we may assume
``delta_0 = b = s = 1`` without loss of generality, so costs and
selectivities are plain dimensionless rationals.

All numeric attributes are stored as :class:`fractions.Fraction` so that
schedule arithmetic downstream is exact; the paper's optimal values are
frequently non-integers (e.g. the period ``23/3`` of Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple, Union

Numeric = Union[int, float, str, Fraction]


def as_fraction(value: Numeric) -> Fraction:
    """Coerce *value* to an exact :class:`~fractions.Fraction`.

    Floats are converted via ``Fraction(str(value))`` (decimal-literal
    semantics) rather than binary expansion, so ``as_fraction(0.9999)`` is
    exactly ``9999/10000`` — matching how the paper writes its instances.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite value {value!r} cannot become a Fraction")
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


@dataclass(frozen=True)
class Service:
    """A single filtering service ``C_i``.

    Parameters
    ----------
    name:
        Unique identifier within an application.
    cost:
        Elementary cost ``c_i >= 0``: processing an input of size ``d``
        takes ``c_i * d`` time units on a (normalised) unit-speed server.
    selectivity:
        Selectivity ``sigma_i > 0``: an input of size ``d`` produces an
        output of size ``sigma_i * d``.  ``sigma_i < 1`` shrinks data (a
        proper *filter*); ``sigma_i > 1`` expands it.
    """

    name: str
    cost: Fraction
    selectivity: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "cost", as_fraction(self.cost))
        object.__setattr__(self, "selectivity", as_fraction(self.selectivity))
        if not self.name:
            raise ValueError("service name must be a non-empty string")
        if self.cost < 0:
            raise ValueError(f"service {self.name!r}: cost must be >= 0, got {self.cost}")
        if self.selectivity <= 0:
            raise ValueError(
                f"service {self.name!r}: selectivity must be > 0, got {self.selectivity}"
            )

    @property
    def is_filter(self) -> bool:
        """True when the service shrinks data (``sigma < 1``)."""
        return self.selectivity < 1

    @property
    def is_expander(self) -> bool:
        """True when the service expands data (``sigma > 1``)."""
        return self.selectivity > 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Service({self.name!r}, c={self.cost}, sigma={self.selectivity})"


@dataclass(frozen=True)
class Application:
    """An application ``A = (F, G)``: services plus precedence constraints.

    ``precedence`` is a set of ordered pairs ``(i, j)`` meaning service
    ``C_i`` must be an ancestor of ``C_j`` in every execution graph (the
    paper requires ``G`` to be included in the transitive closure of the
    execution graph's edge set).
    """

    services: Tuple[Service, ...]
    precedence: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "services", tuple(self.services))
        object.__setattr__(self, "precedence", frozenset(self.precedence))
        names = [s.name for s in self.services]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate service names: {dupes}")
        name_set = set(names)
        for src, dst in self.precedence:
            if src not in name_set or dst not in name_set:
                raise ValueError(f"precedence edge ({src!r}, {dst!r}) references unknown service")
            if src == dst:
                raise ValueError(f"self-loop precedence on {src!r}")
        if self._has_precedence_cycle():
            raise ValueError("precedence constraints contain a cycle")

    def _has_precedence_cycle(self) -> bool:
        succs: Dict[str, List[str]] = {s.name: [] for s in self.services}
        indeg: Dict[str, int] = {s.name: 0 for s in self.services}
        for src, dst in self.precedence:
            succs[src].append(dst)
            indeg[dst] += 1
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for nxt in succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return seen != len(self.services)

    # -- mapping-style access -------------------------------------------------
    def __iter__(self) -> Iterator[Service]:
        return iter(self.services)

    def __len__(self) -> int:
        return len(self.services)

    def __getitem__(self, name: str) -> Service:
        try:
            return self.by_name[name]
        except KeyError:
            raise KeyError(f"no service named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self.by_name

    @property
    def by_name(self) -> Mapping[str, Service]:
        cached = getattr(self, "_by_name", None)
        if cached is None:
            cached = {s.name: s for s in self.services}
            object.__setattr__(self, "_by_name", cached)
        return cached

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.services)

    @property
    def has_precedence(self) -> bool:
        return bool(self.precedence)

    def cost(self, name: str) -> Fraction:
        return self[name].cost

    def selectivity(self, name: str) -> Fraction:
        return self[name].selectivity

    def filters(self) -> List[Service]:
        """Services with selectivity strictly below one."""
        return [s for s in self.services if s.selectivity < 1]

    def expanders(self) -> List[Service]:
        """Services with selectivity one or more."""
        return [s for s in self.services if s.selectivity >= 1]

    def restricted_to(self, names: Iterable[str]) -> "Application":
        """Sub-application induced by *names* (precedence edges restricted)."""
        keep: Set[str] = set(names)
        unknown = keep - set(self.names)
        if unknown:
            raise KeyError(f"unknown services: {sorted(unknown)}")
        services = tuple(s for s in self.services if s.name in keep)
        precedence = frozenset((a, b) for a, b in self.precedence if a in keep and b in keep)
        return Application(services, precedence)


def make_application(
    specs: Sequence[Tuple[str, Numeric, Numeric]],
    precedence: Iterable[Tuple[str, str]] = (),
) -> Application:
    """Convenience constructor from ``(name, cost, selectivity)`` triples."""
    services = tuple(Service(name, as_fraction(c), as_fraction(s)) for name, c, s in specs)
    return Application(services, frozenset(precedence))


__all__ = ["Numeric", "Service", "Application", "as_fraction", "make_application"]
