"""Cost formulas of Section 2.1, generalised to heterogeneous platforms.

For an execution graph ``EG`` and a service ``C_k``:

* ``ancestor_selectivity(k) = prod_{j in Ancest_k(EG)} sigma_j`` — the size
  of the data set that ``C_k`` actually processes;
* ``outsize(k) = ancestor_selectivity(k) * sigma_k`` — the size of the data
  ``C_k`` emits, and hence the size of every message ``C_k -> C_j``;
* ``Cin(k)`` — total incoming communication time (entry nodes receive one
  unit-size message from the synthetic input node);
* ``Ccomp(k) = ancestor_selectivity(k) * c_k / s_u`` where ``u`` is the
  server hosting ``C_k``;
* ``Cout(k)`` — total outgoing communication time; exit nodes emit one
  extra message of size ``outsize(k)`` to the synthetic output node.

The paper normalises ``delta_0 = b = s = 1`` (Section 2.1), which makes
communication *times* equal message *sizes* and computation times equal
``P_k * c_k``.  Passing a :class:`~repro.core.platform.Platform` (plus a
:class:`~repro.core.platform.Mapping` of services to servers) lifts the
normalisation: :meth:`CostModel.comm_time` divides each message size by
the bandwidth of the link it crosses, and :meth:`CostModel.ccomp` divides
by the hosting server's speed.  With ``platform=None`` (or any *unit*
platform such as ``Platform.homogeneous(n)``) every value is bit-for-bit
the paper's.

A **shared** (non-injective) mapping — several services on one server, the
regime of the multi-application sequels — changes two things: an edge
between co-located services costs zero communication time (the data never
leaves the server), and the period bound aggregates ``Cin``/``Ccomp``/
``Cout`` per *server* over all co-located services
(:meth:`CostModel.server_cexec`, :meth:`CostModel.period_lower_bound`).
For injective mappings both rules degenerate to the paper's formulas
bit-for-bit.

.. note::
   Appendix A of the paper writes the message size on an edge
   ``(C_i, C_j)`` as ``prod_{k in Ancest_i} sigma_k`` (without ``sigma_i``),
   but every worked example (B.1, B.2, B.3) and the ``Cout`` formula require
   the message to be the *output* of the sender, i.e. including ``sigma_i``.
   We follow the examples; see DESIGN.md "Known paper slips".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .constants import INPUT, OUTPUT
from .graph import ExecutionGraph
from .models import CommModel
from .platform import Mapping, Platform, link_flow_counts

CommEdge = Tuple[str, str]

ONE = Fraction(1)


def comm_edges(graph: ExecutionGraph) -> List[CommEdge]:
    """All communications of a plan built on *graph*, in a stable order.

    Includes one ``(INPUT, k)`` edge per entry node and one ``(k, OUTPUT)``
    edge per exit node, besides the graph's own edges.
    """
    edges: List[CommEdge] = [(INPUT, k) for k in graph.entry_nodes]
    edges.extend(sorted(graph.edges))
    edges.extend((k, OUTPUT) for k in graph.exit_nodes)
    return edges


class CostModel:
    """Cached evaluation of all Section-2.1 quantities for one graph.

    Parameters
    ----------
    graph:
        The execution graph.
    platform:
        Server speeds and link bandwidths; ``None`` means the paper's
        normalised unit platform (``s = b = 1``).
    mapping:
        Which server hosts which service.  Defaults to the positional
        one-to-one :meth:`~repro.core.platform.Mapping.default`; irrelevant
        (and ignored) without a platform.
    """

    __slots__ = (
        "graph", "platform", "mapping", "_anc_sel", "_outsize", "_scaled",
        "_shared", "_eff_bw",
    )

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
    ) -> None:
        self.graph = graph
        if platform is not None:
            if mapping is None:
                mapping = Mapping.default(graph.nodes, platform)
            else:
                mapping.validate_on(graph.nodes, platform)
        else:
            mapping = None
        self.platform = platform
        self.mapping = mapping
        # Unit platforms take the exact code path of the normalised paper
        # model: no divisions, identical Fractions.  Shared (non-injective)
        # mappings always take the platform-aware path: co-location zeroes
        # intra-server communications even when every speed is 1.
        self._scaled = platform is not None and not platform.is_unit
        self._shared = mapping is not None and not mapping.is_injective
        app = graph.application
        anc_sel: Dict[str, Fraction] = {}
        outsize: Dict[str, Fraction] = {}
        for node in graph.topological_order:
            prod = ONE
            for j in graph.ancestors(node):
                prod *= app.selectivity(j)
            anc_sel[node] = prod
            outsize[node] = prod * app.selectivity(node)
        self._anc_sel = anc_sel
        self._outsize = outsize
        # Contended topologies: price every cross-server edge at the
        # bottleneck of its route with concurrent flows sharing capacity.
        # Each graph edge whose endpoints sit on distinct servers is one
        # flow; ``k`` flows on a link of capacity ``c`` each see ``c/k``,
        # so the pair's effective bandwidth is ``min_l cap_l / k_l``.
        # Input/output-world edges ride dedicated links and never appear.
        self._eff_bw: Dict[Tuple[str, str], Fraction] = {}
        if (
            platform is not None
            and mapping is not None
            and platform.has_contention
        ):
            flows = [
                (mapping.server(u), mapping.server(v))
                for u, v in graph.edges
                if mapping.server(u) != mapping.server(v)
            ]
            counts = link_flow_counts(platform, flows)
            caps = platform.link_capacities()
            for pair in set(flows):
                route = platform.route(*pair)
                if route:
                    self._eff_bw[pair] = min(
                        caps[l] / counts[l] for l in route
                    )

    # -- platform lookups ------------------------------------------------------
    def server_of(self, node: str) -> str:
        """The server hosting *node* (the node itself on the unit platform)."""
        if self.mapping is None:
            return node
        return self.mapping.server(node)

    def _endpoint(self, node: str) -> str:
        """Map a service (or INPUT/OUTPUT) to its platform endpoint."""
        if node in (INPUT, OUTPUT) or self.mapping is None:
            return node
        return self.mapping.server(node)

    def link_bandwidth(self, src: str, dst: str) -> Fraction:
        """``b_{u,v}`` of the link carrying the communication ``src -> dst``.

        On a contended topology this is the *effective* bandwidth of the
        pair under the current ``(graph, mapping)`` flow pattern — the
        route bottleneck with concurrent flows dividing each shared
        link's capacity.
        """
        if not self._scaled:
            return ONE
        assert self.platform is not None
        a, b = self._endpoint(src), self._endpoint(dst)
        eff = self._eff_bw.get((a, b))
        if eff is not None:
            return eff
        return self.platform.bandwidth(a, b)

    def server_speed(self, node: str) -> Fraction:
        """``s_u`` of the server hosting *node*."""
        if not self._scaled:
            return ONE
        assert self.platform is not None
        return self.platform.speed(self.server_of(node))

    # -- sizes ---------------------------------------------------------------
    def ancestor_selectivity(self, node: str) -> Fraction:
        """``prod_{j in Ancest(node)} sigma_j`` — input data-set size of *node*."""
        return self._anc_sel[node]

    def input_size(self, node: str) -> Fraction:
        """Alias of :meth:`ancestor_selectivity` (size the service processes)."""
        return self._anc_sel[node]

    def outsize(self, node: str) -> Fraction:
        """Size of the data emitted by *node* (its input size times ``sigma``)."""
        return self._outsize[node]

    def message_size(self, src: str, dst: str) -> Fraction:
        """Size of the message carried by communication ``src -> dst``.

        ``src = INPUT`` gives the unit-size initial data set; ``dst = OUTPUT``
        carries the sender's output to the outside world.  Sizes are
        platform-independent; :meth:`comm_time` is the transfer time.
        """
        if src == INPUT:
            return ONE
        size = self._outsize[src]
        if dst != OUTPUT and (src, dst) not in self.graph.edges:
            raise KeyError(f"({src!r}, {dst!r}) is not an edge of the execution graph")
        return size

    def comm_time(self, src: str, dst: str) -> Fraction:
        """Full-bandwidth transfer time of ``src -> dst``: size / ``b_{u,v}``.

        Equals :meth:`message_size` on the unit platform.  This is the
        duration of a one-port communication and the minimum duration of a
        multi-port one (ratio 1).  Under a shared (non-injective) mapping an
        edge between two services hosted by the *same* server crosses no
        link and costs zero time — the data never leaves the server.
        """
        size = self.message_size(src, dst)
        if (
            self._shared
            and src not in (INPUT, OUTPUT)
            and dst not in (INPUT, OUTPUT)
            and self.mapping.server(src) == self.mapping.server(dst)
        ):
            return Fraction(0)
        if not self._scaled:
            return size
        return size / self.link_bandwidth(src, dst)

    # -- the three Section-2.1 quantities -------------------------------------
    def cin(self, node: str) -> Fraction:
        """Total incoming communication time ``Cin(node)`` (lower bound)."""
        preds = self.graph.predecessors(node)
        if not preds:
            return self.comm_time(INPUT, node)
        if not self._scaled and not self._shared:
            return sum((self._outsize[p] for p in preds), Fraction(0))
        return sum((self.comm_time(p, node) for p in preds), Fraction(0))

    def ccomp(self, node: str) -> Fraction:
        """Computation time ``Ccomp(node) = P_k * c_k / s_u``."""
        work = self._anc_sel[node] * self.graph.application.cost(node)
        if not self._scaled:
            return work
        return work / self.server_speed(node)

    def cout(self, node: str) -> Fraction:
        """Total outgoing communication time ``Cout(node)`` (lower bound)."""
        succs = self.graph.successors(node)
        if not succs:
            return self.comm_time(node, OUTPUT)
        if not self._scaled and not self._shared:
            return len(succs) * self._outsize[node]
        return sum((self.comm_time(node, s) for s in succs), Fraction(0))

    def cexec(self, node: str, model: CommModel) -> Fraction:
        """Per-service execution time bound under *model* (Section 2.2)."""
        cin, ccomp, cout = self.cin(node), self.ccomp(node), self.cout(node)
        if model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    # -- per-server aggregation (shared mappings) ------------------------------
    def used_servers(self) -> Tuple[str, ...]:
        """Servers hosting at least one service of the graph (sorted).

        Without a mapping every service is its own server (the paper's
        regime), so the services themselves are returned.
        """
        if self.mapping is None:
            return tuple(sorted(self.graph.nodes))
        return tuple(
            sorted({self.mapping.server(n) for n in self.graph.nodes})
        )

    def server_services(self, server: str) -> Tuple[str, ...]:
        """The graph's services hosted by *server* (sorted)."""
        if self.mapping is None:
            return (server,) if server in self.graph.nodes else ()
        nodes = set(self.graph.nodes)
        return tuple(
            s for s in self.mapping.services_on(server) if s in nodes
        )

    def server_cin(self, server: str) -> Fraction:
        """Aggregated incoming communication time of *server* per data set.

        Sum of ``Cin`` over all co-located services; intra-server edges
        contribute zero (see :meth:`comm_time`), so only data actually
        crossing a link is counted.
        """
        return sum(
            (self.cin(n) for n in self.server_services(server)), Fraction(0)
        )

    def server_ccomp(self, server: str) -> Fraction:
        """Aggregated computation time of *server* per data set."""
        return sum(
            (self.ccomp(n) for n in self.server_services(server)), Fraction(0)
        )

    def server_cout(self, server: str) -> Fraction:
        """Aggregated outgoing communication time of *server* per data set."""
        return sum(
            (self.cout(n) for n in self.server_services(server)), Fraction(0)
        )

    def server_cexec(self, server: str, model: CommModel) -> Fraction:
        """Execution-time bound of *server* over all co-located services.

        Under OVERLAP the three aggregated quantities overlap each other
        (``max``); under the one-port models the server serialises
        everything (``sum``).  For an injective mapping this equals
        :meth:`cexec` of the single hosted service.
        """
        cin = self.server_cin(server)
        ccomp = self.server_ccomp(server)
        cout = self.server_cout(server)
        if model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    # -- global lower bounds ---------------------------------------------------
    def period_lower_bound(self, model: CommModel) -> Fraction:
        """``max_u Cexec(u)`` — a period lower bound valid for *model*.

        Achievable for OVERLAP (Theorem 1, which generalises verbatim to
        heterogeneous platforms — every quantity is already a time); not
        always achievable for the one-port models (Section 2.3's ``23/3``
        example).  Under a shared (non-injective) mapping the max runs over
        *servers* with their aggregated loads — the steady-state bound of
        the multi-application sequels; for injective mappings the two
        formulations coincide service by service.
        """
        if self._shared:
            return max(
                self.server_cexec(u, model) for u in self.used_servers()
            )
        return max(self.cexec(node, model) for node in self.graph.nodes)

    def communication_period_bound(self) -> Fraction:
        """``max_k max(Cin(k), Cout(k))`` — the communication-only bound.

        This is the quantity the paper calls "the maximum time needed for
        communications" in counter-example B.3.
        """
        return max(max(self.cin(n), self.cout(n)) for n in self.graph.nodes)

    def latency_lower_bound(self) -> Fraction:
        """Critical-path latency bound, valid for every model.

        Each service starts no earlier than every predecessor's finish time
        plus the corresponding (full-bandwidth) message time; exit nodes add
        their output message.  Port contention is ignored, hence a lower
        bound for one-port *and* multi-port schedules (a multi-port transfer
        at ratio ``r <= 1`` takes at least its full-bandwidth time).
        """
        graph = self.graph
        finish: Dict[str, Fraction] = {}
        for node in graph.topological_order:
            preds = graph.predecessors(node)
            if preds:
                start = max(finish[p] + self.comm_time(p, node) for p in preds)
            else:
                start = self.comm_time(INPUT, node)
            finish[node] = start + self.ccomp(node)
        return max(finish[x] + self.comm_time(x, OUTPUT) for x in graph.exit_nodes)

    # -- convenience -----------------------------------------------------------
    def comm_edges(self) -> List[CommEdge]:
        return comm_edges(self.graph)

    def total_work(self) -> Fraction:
        """Sum of all computation times (a utilisation statistic)."""
        return sum((self.ccomp(n) for n in self.graph.nodes), Fraction(0))

    def total_communication(self) -> Fraction:
        """Sum of all message sizes (input and output messages included)."""
        return sum(
            (self.message_size(a, b) for a, b in self.comm_edges()), Fraction(0)
        )

    def total_communication_time(self) -> Fraction:
        """Sum of all full-bandwidth transfer times on this platform."""
        return sum(
            (self.comm_time(a, b) for a, b in self.comm_edges()), Fraction(0)
        )


__all__ = ["CostModel", "CommEdge", "comm_edges"]
