"""Execution graphs (Section 2.1).

An execution graph ``EG = (C, E)`` is a DAG over the services of an
application.  Its edge set must contain every precedence constraint of the
application *in its transitive closure* (edges may be added to filter data,
and a precedence pair ``(i, j)`` is satisfied as soon as ``i`` is an
ancestor of ``j``).  Entry nodes implicitly receive an input communication
from the outside world; exit nodes implicitly emit one output
communication (both are accounted for in :mod:`repro.core.costs`).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .service import Application

Edge = Tuple[str, str]


class CycleError(ValueError):
    """Raised when a proposed execution graph contains a directed cycle."""


class PrecedenceError(ValueError):
    """Raised when an execution graph violates the application precedence."""


class ExecutionGraph:
    """Immutable DAG of services with cached structural queries."""

    __slots__ = (
        "application",
        "edges",
        "_preds",
        "_succs",
        "_topo",
        "_ancestors",
        "_descendants",
    )

    def __init__(
        self,
        application: Application,
        edges: Iterable[Edge] = (),
        *,
        check_precedence: bool = True,
    ) -> None:
        self.application = application
        edge_set = frozenset((str(a), str(b)) for a, b in edges)
        names = set(application.names)
        for a, b in edge_set:
            if a not in names or b not in names:
                raise KeyError(f"edge ({a!r}, {b!r}) references unknown service")
            if a == b:
                raise CycleError(f"self-loop on {a!r}")
        self.edges: FrozenSet[Edge] = edge_set

        preds: Dict[str, List[str]] = {n: [] for n in application.names}
        succs: Dict[str, List[str]] = {n: [] for n in application.names}
        for a, b in sorted(edge_set):
            preds[b].append(a)
            succs[a].append(b)
        self._preds = {k: tuple(v) for k, v in preds.items()}
        self._succs = {k: tuple(v) for k, v in succs.items()}
        self._topo: Tuple[str, ...] = self._toposort()
        self._ancestors: Optional[Dict[str, FrozenSet[str]]] = None
        self._descendants: Optional[Dict[str, FrozenSet[str]]] = None
        if check_precedence and application.precedence:
            self._check_precedence()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def chain(cls, application: Application, order: Sequence[str]) -> "ExecutionGraph":
        """Linear chain visiting *order* (must cover all services exactly once)."""
        if sorted(order) != sorted(application.names):
            raise ValueError("chain order must be a permutation of the service names")
        edges = [(order[i], order[i + 1]) for i in range(len(order) - 1)]
        return cls(application, edges)

    @classmethod
    def from_parents(
        cls, application: Application, parents: Mapping[str, Optional[str]]
    ) -> "ExecutionGraph":
        """Forest given by a parent map (``None`` marks a root)."""
        edges = [(p, child) for child, p in parents.items() if p is not None]
        return cls(application, edges)

    @classmethod
    def empty(cls, application: Application) -> "ExecutionGraph":
        """All services independent (only valid without precedence constraints)."""
        return cls(application, ())

    # -- invariants -----------------------------------------------------------
    def _toposort(self) -> Tuple[str, ...]:
        indeg = {n: len(self._preds[n]) for n in self.application.names}
        stack = sorted((n for n, d in indeg.items() if d == 0), reverse=True)
        out: List[str] = []
        while stack:
            node = stack.pop()
            out.append(node)
            for nxt in self._succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    stack.append(nxt)
        if len(out) != len(indeg):
            raise CycleError("execution graph contains a directed cycle")
        return tuple(out)

    def _check_precedence(self) -> None:
        for src, dst in self.application.precedence:
            if src not in self.ancestors(dst):
                raise PrecedenceError(
                    f"precedence constraint ({src!r} -> {dst!r}) not satisfied: "
                    f"{src!r} is not an ancestor of {dst!r}"
                )

    # -- structural queries ---------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        return self.application.names

    @property
    def topological_order(self) -> Tuple[str, ...]:
        return self._topo

    def predecessors(self, node: str) -> Tuple[str, ...]:
        """Direct predecessors ``Sin(node)`` (service nodes only)."""
        return self._preds[node]

    def successors(self, node: str) -> Tuple[str, ...]:
        """Direct successors ``Sout(node)`` (service nodes only)."""
        return self._succs[node]

    def ancestors(self, node: str) -> FrozenSet[str]:
        """All (transitive) ancestors of *node*, excluding *node* itself."""
        if self._ancestors is None:
            anc: Dict[str, FrozenSet[str]] = {}
            for n in self._topo:
                acc: Set[str] = set()
                for p in self._preds[n]:
                    acc.add(p)
                    acc |= anc[p]
                anc[n] = frozenset(acc)
            self._ancestors = anc
        return self._ancestors[node]

    def descendants(self, node: str) -> FrozenSet[str]:
        """All (transitive) descendants of *node*, excluding *node* itself."""
        if self._descendants is None:
            desc: Dict[str, FrozenSet[str]] = {}
            for n in reversed(self._topo):
                acc: Set[str] = set()
                for s in self._succs[n]:
                    acc.add(s)
                    acc |= desc[s]
                desc[n] = frozenset(acc)
            self._descendants = desc
        return self._descendants[node]

    @property
    def entry_nodes(self) -> Tuple[str, ...]:
        """Services with no predecessor (they read from the outside world)."""
        return tuple(n for n in self._topo if not self._preds[n])

    @property
    def exit_nodes(self) -> Tuple[str, ...]:
        """Services with no successor (they write to the outside world)."""
        return tuple(n for n in self._topo if not self._succs[n])

    # -- shape predicates -------------------------------------------------
    @property
    def is_forest(self) -> bool:
        """Every node has at most one direct predecessor."""
        return all(len(self._preds[n]) <= 1 for n in self.nodes)

    @property
    def is_tree(self) -> bool:
        """A forest with a single root covering all nodes."""
        return self.is_forest and len(self.entry_nodes) == 1

    @property
    def is_chain(self) -> bool:
        """A single linear chain covering all nodes."""
        return (
            self.is_forest
            and len(self.entry_nodes) == 1
            and all(len(self._succs[n]) <= 1 for n in self.nodes)
        )

    def depth(self, node: str) -> int:
        """Number of edges on the longest path from an entry node to *node*."""
        depths: Dict[str, int] = {}
        for n in self._topo:
            depths[n] = max((depths[p] + 1 for p in self._preds[n]), default=0)
        return depths[node]

    # -- derived graphs ---------------------------------------------------
    def with_edges(self, extra: Iterable[Edge]) -> "ExecutionGraph":
        return ExecutionGraph(self.application, set(self.edges) | set(extra))

    def without_edges(self, removed: Iterable[Edge]) -> "ExecutionGraph":
        return ExecutionGraph(self.application, set(self.edges) - set(removed))

    def components(self) -> List[FrozenSet[str]]:
        """Weakly connected components (sets of service names)."""
        parent = {n: n for n in self.nodes}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        groups: Dict[str, Set[str]] = {}
        for n in self.nodes:
            groups.setdefault(find(n), set()).add(n)
        return [frozenset(g) for g in groups.values()]

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionGraph):
            return NotImplemented
        return self.application is other.application and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((id(self.application), self.edges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionGraph({len(self.nodes)} nodes, {len(self.edges)} edges)"


__all__ = ["Edge", "ExecutionGraph", "CycleError", "PrecedenceError"]
