"""Operation lists (Section 2 "Characterizing solutions" + Appendix A).

An operation list records, for data set number 0, the begin and end
time-steps of every computation and every communication, plus the period
``lambda``; data set ``n`` repeats the same pattern shifted by
``n * lambda``.  The paper's objectives follow directly:

* period  ``P = lambda``;
* latency ``L = max End of the output communications for data set 0``.

Operations are identified by lightweight tuples:

* ``("comp", node)`` — the computation of service *node*;
* ``("comm", src, dst)`` — a communication; ``src`` may be
  :data:`~repro.core.constants.INPUT` and ``dst`` may be
  :data:`~repro.core.constants.OUTPUT`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from .constants import INPUT, OUTPUT
from .service import Numeric, as_fraction

CompOp = Tuple[str, str]
CommOp = Tuple[str, str, str]
Operation = Union[CompOp, CommOp]

COMP = "comp"
COMM = "comm"


def comp_op(node: str) -> Operation:
    """The computation operation of service *node*."""
    return (COMP, node)


def comm_op(src: str, dst: str) -> Operation:
    """The communication operation for edge ``src -> dst``."""
    return (COMM, src, dst)


def is_comp(op: Operation) -> bool:
    return op[0] == COMP


def is_comm(op: Operation) -> bool:
    return op[0] == COMM


def op_servers(op: Operation) -> Tuple[str, ...]:
    """The real servers an operation occupies (INPUT/OUTPUT are not servers)."""
    if op[0] == COMP:
        return (op[1],)
    _, src, dst = op
    servers = []
    if src != INPUT:
        servers.append(src)
    if dst != OUTPUT:
        servers.append(dst)
    return tuple(servers)


class OperationList:
    """A cyclic schedule: begin/end times for data set 0 and a period.

    Instances are value-like; times are exact :class:`fractions.Fraction`.
    """

    __slots__ = ("_times", "lam")

    def __init__(
        self,
        times: Mapping[Operation, Tuple[Numeric, Numeric]],
        lam: Numeric,
    ) -> None:
        self.lam: Fraction = as_fraction(lam)
        if self.lam <= 0:
            raise ValueError(f"period lambda must be positive, got {self.lam}")
        converted: Dict[Operation, Tuple[Fraction, Fraction]] = {}
        for op, (begin, end) in times.items():
            b, e = as_fraction(begin), as_fraction(end)
            if e < b:
                raise ValueError(f"operation {op} ends before it begins: [{b}, {e}]")
            converted[op] = (b, e)
        self._times = converted

    # -- access ---------------------------------------------------------------
    def __contains__(self, op: Operation) -> bool:
        return op in self._times

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._times)

    def __len__(self) -> int:
        return len(self._times)

    def operations(self) -> List[Operation]:
        return list(self._times)

    def items(self) -> Iterable[Tuple[Operation, Tuple[Fraction, Fraction]]]:
        return self._times.items()

    def begin(self, op: Operation) -> Fraction:
        return self._times[op][0]

    def end(self, op: Operation) -> Fraction:
        return self._times[op][1]

    def duration(self, op: Operation) -> Fraction:
        b, e = self._times[op]
        return e - b

    def begin_n(self, op: Operation, n: int) -> Fraction:
        """Begin time for data set *n* (cyclic shift)."""
        return self._times[op][0] + self.lam * n

    def end_n(self, op: Operation, n: int) -> Fraction:
        return self._times[op][1] + self.lam * n

    # -- objectives -------------------------------------------------------------
    @property
    def period(self) -> Fraction:
        return self.lam

    @property
    def latency(self) -> Fraction:
        """``max End`` over the communications of data set 0 (paper Section 2).

        Output nodes communicate to the outside world, so the maximum is
        reached on such a final communication for any well-formed plan.
        """
        ends = [e for op, (_, e) in self._times.items() if is_comm(op)]
        if not ends:  # degenerate single-service schedules in unit tests
            ends = [e for _, e in self._times.values()]
        return max(ends)

    @property
    def makespan(self) -> Fraction:
        """Span of the data-set-0 operations (max end minus min begin)."""
        begins = [b for b, _ in self._times.values()]
        ends = [e for _, e in self._times.values()]
        return max(ends) - min(begins)

    # -- transformations ---------------------------------------------------------
    def shifted(self, delta: Numeric) -> "OperationList":
        """Shift every operation by *delta* (same period)."""
        d = as_fraction(delta)
        return OperationList(
            {op: (b + d, e + d) for op, (b, e) in self._times.items()}, self.lam
        )

    def with_period(self, lam: Numeric) -> "OperationList":
        """Same data-set-0 times with a different period ``lambda``.

        The paper uses exactly this move in Section 2.3: keeping the latency
        schedule and shrinking ``lambda`` from 21 to 5 for OVERLAP.
        """
        return OperationList(dict(self._times), lam)

    def with_times(
        self, updates: Mapping[Operation, Tuple[Numeric, Numeric]]
    ) -> "OperationList":
        merged: Dict[Operation, Tuple[Numeric, Numeric]] = dict(self._times)
        merged.update(updates)
        return OperationList(merged, self.lam)

    def normalised(self) -> "OperationList":
        """Shift so the earliest operation begins at time 0."""
        start = min(b for b, _ in self._times.values())
        return self.shifted(-start)

    # -- dunder -------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperationList):
            return NotImplemented
        return self.lam == other.lam and self._times == other._times

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OperationList({len(self._times)} ops, lambda={self.lam})"


def modular_residue(x: Fraction, lam: Fraction) -> Fraction:
    """``x mod lam`` for exact rationals, result in ``[0, lam)``."""
    q = x / lam
    floor_q = q.numerator // q.denominator
    return x - lam * floor_q


def modular_overlap(
    b1: Fraction, d1: Fraction, b2: Fraction, d2: Fraction, lam: Fraction
) -> bool:
    """Do cyclic occurrences of two operations ever overlap?

    Operation *i* occupies ``[b_i + n*lam, b_i + d_i + n*lam)`` for all
    integers *n*.  Requires ``0 <= d_i <= lam`` (an operation longer than
    the period always overlaps everything, including itself).
    """
    if d1 <= 0 or d2 <= 0:
        return False
    if d1 > lam or d2 > lam:
        return True
    # Place op1 at [0, d1) on the circle; op2 then starts at gap12.  They
    # overlap iff op2 starts strictly inside op1 (gap12 < d1) or op2 wraps
    # around into op1 (lam - gap12 = gap21 < d2).
    gap12 = modular_residue(b2 - b1, lam)
    gap21 = modular_residue(b1 - b2, lam)
    if gap12 == 0:  # same residue: both positive-length, always overlap
        return True
    return gap12 < d1 or gap21 < d2


__all__ = [
    "COMP",
    "COMM",
    "Operation",
    "OperationList",
    "comp_op",
    "comm_op",
    "is_comp",
    "is_comm",
    "op_servers",
    "modular_residue",
    "modular_overlap",
]
