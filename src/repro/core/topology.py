"""Structured platform topologies: racks, trees, tori, shared uplinks.

The paper prices every link bandwidth ``b_{u,v}`` independently — a flat
clique.  Real platforms are structured: servers hang off rack switches,
racks share uplinks, grids wire nearest neighbours.  A
:class:`Topology` describes that structure *behind* the
:class:`~repro.core.platform.Platform` API so that everything downstream
keeps speaking pairwise bandwidths:

* a topology names its servers and **physical links** (each with a
  capacity), and routes every server pair over a fixed link sequence
  (:meth:`Topology.route`);
* the *uncontended* effective bandwidth of a pair is the minimum capacity
  along its route — this is what ``Platform.bandwidth`` reports, so flat
  consumers work unchanged;
* a **contended** topology additionally declares that concurrent flows
  crossing one physical link *share* its capacity: ``k`` flows on a link
  of capacity ``c`` each see ``c / k``.  The cost tiers
  (:class:`~repro.core.costs.CostModel`,
  :class:`~repro.core.numeric.FloatCosts`, the batched kernels) count the
  flows of a concrete ``(graph, mapping)`` pair and price each
  cross-server edge at ``min_l cap_l / k_l`` over its route.  Messages to
  the outside world (:data:`~repro.core.constants.INPUT` /
  :data:`~repro.core.constants.OUTPUT`) ride dedicated links and never
  contend.
* :meth:`Topology.groups` exposes the locality hierarchy (racks, torus
  rows) the hierarchical placement heuristic of
  :mod:`repro.optimize.hierarchy` partitions against.

Two generators are provided: :class:`TreeTopology` (racks of servers
under a shared switch uplink — the classic fat-tree leaf level) and
:class:`TorusTopology` (a ``d``-dimensional grid with wraparound links,
the "Mapping Matters" regime).  :class:`FlatTopology` is the clique every
plain :class:`~repro.core.platform.Platform` implicitly has; it routes
nothing and never contends, keeping flat platforms bit-for-bit identical
to their pre-topology behaviour.

    >>> topo = TreeTopology(racks=2, servers_per_rack=2, up_bw="1/2")
    >>> [name for name, _speed in topo.server_specs()]
    ['R0N0', 'R0N1', 'R1N0', 'R1N1']
    >>> topo.route("R0N0", "R0N1")     # same rack: two access links
    (0, 1)
    >>> topo.route("R0N0", "R1N1")     # cross rack: access + both uplinks
    (0, 4, 5, 3)
    >>> topo.pair_bandwidths()[("R0N0", "R1N1")]
    Fraction(1, 2)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from .service import as_fraction

ONE = Fraction(1)

#: A directed server pair.
Pair = Tuple[str, str]


def _positive_fraction(value, what: str) -> Fraction:
    frac = as_fraction(value)
    if frac <= 0:
        raise ValueError(f"{what} must be > 0, got {frac}")
    return frac


def _positive_int(value, what: str) -> int:
    try:
        out = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{what} must be an integer, got {value!r}") from None
    if out < 1:
        raise ValueError(f"{what} must be >= 1, got {out}")
    return out


class Topology:
    """Abstract link structure behind a :class:`~repro.core.Platform`.

    Subclasses fix the server roster, the physical links and the routing;
    the :class:`~repro.core.platform.Platform` constructor turns
    :meth:`pair_bandwidths` into its ordinary link table so every flat
    consumer keeps working, while the cost tiers consult
    :meth:`route`/:meth:`link_capacities` for contention.
    """

    #: Human-readable family name (``"clique"``, ``"tree"``, ``"torus"``).
    kind: str = "abstract"

    #: Do concurrent flows share a physical link's capacity?
    contended: bool = False

    def server_specs(self) -> Tuple[Tuple[str, Fraction], ...]:
        """``(name, speed)`` per server, in canonical platform order."""
        raise NotImplementedError

    def pair_bandwidths(self) -> Dict[Pair, Fraction]:
        """Uncontended effective bandwidth per *ordered* server pair.

        The minimum capacity along :meth:`route` — symmetric by
        construction.  This is the table ``Platform.bandwidth`` serves.
        """
        raise NotImplementedError

    def link_capacities(self) -> Tuple[Fraction, ...]:
        """Capacity per physical link, indexed by link id."""
        raise NotImplementedError

    def route(self, src: str, dst: str) -> Tuple[int, ...]:
        """Physical link ids a ``src -> dst`` message crosses (may be empty)."""
        raise NotImplementedError

    def groups(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Locality groups ``(label, member server names)``.

        Servers inside one group communicate without crossing a shared
        link (or crossing cheaper ones); the hierarchical placement
        heuristic packs chatty services into one group.  A single group
        means "no exploitable structure".
        """
        raise NotImplementedError

    def key(self) -> Tuple:
        """Canonical hashable content key, mixed into ``Platform.key()``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.kind!r})"


class FlatTopology(Topology):
    """The implicit clique of a plain platform: no routes, no contention.

    Exists so ``platform.topology`` is always a :class:`Topology`;
    carries no state beyond the server names (one locality group).
    """

    kind = "clique"
    contended = False

    def __init__(self, names: Sequence[str]) -> None:
        self._names = tuple(names)

    def server_specs(self) -> Tuple[Tuple[str, Fraction], ...]:
        return tuple((name, ONE) for name in self._names)

    def pair_bandwidths(self) -> Dict[Pair, Fraction]:
        return {}

    def link_capacities(self) -> Tuple[Fraction, ...]:
        return ()

    def route(self, src: str, dst: str) -> Tuple[int, ...]:
        return ()

    def groups(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        return (("all", self._names),)

    def key(self) -> Tuple:
        return ("clique",)


class TreeTopology(Topology):
    """Racks of servers under per-rack switch uplinks (a two-level tree).

    Each server ``R{r}N{i}`` owns a dedicated **access link** of capacity
    *rack_bw* to its rack switch; each rack owns one **uplink** of
    capacity *up_bw* to the core.  A same-rack message crosses the two
    access links; a cross-rack message additionally crosses both racks'
    uplinks — so its uncontended bandwidth is ``min(rack_bw, up_bw)``,
    and under contention (*shared*, the default) every concurrent
    cross-rack flow divides the uplink capacities it shares.

    *speed* is every server's speed; *speed2*, when given, is the speed of
    the odd-indexed server in each rack (a cheap heterogeneity knob).
    """

    kind = "tree"

    def __init__(
        self,
        racks: int,
        servers_per_rack: int,
        *,
        speed=1,
        speed2=None,
        rack_bw=1,
        up_bw=1,
        shared: bool = True,
        prefix: str = "R",
    ) -> None:
        self.racks = _positive_int(racks, "tree racks")
        self.servers_per_rack = _positive_int(
            servers_per_rack, "tree servers_per_rack"
        )
        self.speed = _positive_fraction(speed, "tree speed")
        self.speed2 = (
            None if speed2 is None else _positive_fraction(speed2, "tree speed2")
        )
        self.rack_bw = _positive_fraction(rack_bw, "tree rack_bw")
        self.up_bw = _positive_fraction(up_bw, "tree up_bw")
        self.contended = bool(shared)
        self.prefix = prefix
        n = self.racks * self.servers_per_rack
        self._names: Tuple[str, ...] = tuple(
            f"{prefix}{r}N{i}"
            for r in range(self.racks)
            for i in range(self.servers_per_rack)
        )
        # Link ids: access link of server k is k; uplink of rack r is n + r.
        self._loc: Dict[str, Tuple[int, int]] = {}  # name -> (rack, access id)
        for k, name in enumerate(self._names):
            self._loc[name] = (k // self.servers_per_rack, k)
        self._caps: Tuple[Fraction, ...] = tuple(
            [self.rack_bw] * n + [self.up_bw] * self.racks
        )
        self._n = n

    def server_specs(self) -> Tuple[Tuple[str, Fraction], ...]:
        specs: List[Tuple[str, Fraction]] = []
        for k, name in enumerate(self._names):
            odd = (k % self.servers_per_rack) % 2 == 1
            specs.append((name, self.speed2 if odd and self.speed2 else self.speed))
        return tuple(specs)

    def link_capacities(self) -> Tuple[Fraction, ...]:
        return self._caps

    def route(self, src: str, dst: str) -> Tuple[int, ...]:
        if src == dst:
            return ()
        ru, au = self._loc[src]
        rv, av = self._loc[dst]
        if ru == rv:
            return (au, av)
        n = self._n
        return (au, n + ru, n + rv, av)

    def pair_bandwidths(self) -> Dict[Pair, Fraction]:
        out: Dict[Pair, Fraction] = {}
        for u in self._names:
            for v in self._names:
                if u != v:
                    out[(u, v)] = min(self._caps[l] for l in self.route(u, v))
        return out

    def groups(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        spr = self.servers_per_rack
        return tuple(
            (
                f"{self.prefix}{r}",
                self._names[r * spr : (r + 1) * spr],
            )
            for r in range(self.racks)
        )

    def key(self) -> Tuple:
        return (
            "tree", self.racks, self.servers_per_rack, self.speed,
            self.speed2, self.rack_bw, self.up_bw, self.contended,
        )


class TorusTopology(Topology):
    """A ``d``-dimensional torus/grid of servers with wraparound links.

    Servers sit at grid coordinates (name ``N<c0>x<c1>...``); each
    neighbouring pair along a dimension shares one physical link of
    capacity *bw* (wraparound links exist only for dimension sizes above
    2 — a size-2 ring would duplicate its single edge).  Routing is
    dimension-ordered shortest path, ties broken toward the positive
    direction, so routes are deterministic and symmetric.  Under
    contention (*shared*, the default) every flow crossing a link divides
    its capacity.
    """

    kind = "torus"

    def __init__(
        self,
        dims: Sequence[int],
        *,
        bw=1,
        speed=1,
        shared: bool = True,
    ) -> None:
        dims = tuple(dims)
        if not dims:
            raise ValueError("torus dims must name at least one dimension")
        self.dims: Tuple[int, ...] = tuple(
            _positive_int(d, "torus dimension size") for d in dims
        )
        self.bw = _positive_fraction(bw, "torus bw")
        self.speed = _positive_fraction(speed, "torus speed")
        self.contended = bool(shared)
        coords: List[Tuple[int, ...]] = [()]
        for size in self.dims:
            coords = [c + (i,) for c in coords for i in range(size)]
        self._coords = coords
        self._names: Tuple[str, ...] = tuple(
            "N" + "x".join(str(c) for c in coord) for coord in coords
        )
        self._coord_of: Dict[str, Tuple[int, ...]] = dict(
            zip(self._names, coords)
        )
        index = {coord: i for i, coord in enumerate(coords)}
        self._index = index
        links: Dict[Tuple[int, int], int] = {}
        for i, coord in enumerate(coords):
            for d, size in enumerate(self.dims):
                if size < 2:
                    continue
                step = list(coord)
                step[d] = coord[d] + 1
                if step[d] == size:
                    if size <= 2:
                        continue  # wraparound would duplicate the edge
                    step[d] = 0
                j = index[tuple(step)]
                a, b = (i, j) if i < j else (j, i)
                links.setdefault((a, b), len(links))
        self._links = links
        self._caps: Tuple[Fraction, ...] = tuple([self.bw] * len(links))

    def server_specs(self) -> Tuple[Tuple[str, Fraction], ...]:
        return tuple((name, self.speed) for name in self._names)

    def link_capacities(self) -> Tuple[Fraction, ...]:
        return self._caps

    def route(self, src: str, dst: str) -> Tuple[int, ...]:
        if src == dst:
            return ()
        cur = list(self._coord_of[src])
        goal = self._coord_of[dst]
        hops: List[int] = []
        for d, size in enumerate(self.dims):
            forward = (goal[d] - cur[d]) % size
            if forward == 0:
                continue
            backward = (cur[d] - goal[d]) % size
            direction = 1 if forward <= backward else -1
            for _ in range(min(forward, backward)):
                nxt = list(cur)
                nxt[d] = (cur[d] + direction) % size
                i, j = self._index[tuple(cur)], self._index[tuple(nxt)]
                a, b = (i, j) if i < j else (j, i)
                hops.append(self._links[(a, b)])
                cur = nxt
        return tuple(hops)

    def pair_bandwidths(self) -> Dict[Pair, Fraction]:
        # All capacities equal: every connected pair runs at bw uncontended.
        out: Dict[Pair, Fraction] = {}
        for u in self._names:
            for v in self._names:
                if u != v:
                    out[(u, v)] = self.bw
        return out

    def groups(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        # Slices along dimension 0: the rows of the grid.
        rows: Dict[int, List[str]] = {}
        for name, coord in self._coord_of.items():
            rows.setdefault(coord[0], []).append(name)
        return tuple(
            (f"row{r}", tuple(rows[r])) for r in sorted(rows)
        )

    def key(self) -> Tuple:
        return ("torus", self.dims, self.bw, self.speed, self.contended)


__all__ = [
    "FlatTopology",
    "Topology",
    "TorusTopology",
    "TreeTopology",
]
