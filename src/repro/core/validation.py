"""Machine-checkable validity rules for operation lists (Appendix A).

Given a plan ``(EG, OL)`` and a communication model, :func:`validate` checks
every constraint the paper states:

Common to all models
    * exactly one computation per service and one communication per edge of
      the plan (including the synthetic input/output communications);
    * non-preemption (each operation is one contiguous interval) and exact
      computation durations ``Ccomp``;
    * per data set: every incoming communication ends before the
      computation begins, which ends before every outgoing communication
      begins.

One-port models (INORDER, OUTORDER)
    * communication durations equal the full-bandwidth transfer times
      (message size over link bandwidth — equal to the size itself on the
      paper's normalised unit platform);
    * on each server, no two operations (computation, incoming or outgoing
      communications — across *all* data sets, i.e. modulo ``lambda``) may
      ever overlap;
    * INORDER only: every outgoing communication of data set ``n`` ends
      before any incoming communication of data set ``n + 1`` begins
      (constraint (1) of Appendix A).

Multi-port model (OVERLAP)
    * a communication with full-bandwidth transfer time ``t`` scheduled
      over a window of length ``d`` uses the constant bandwidth ratio
      ``t / d``, which must be ``<= 1``;
    * at every instant, the ratios of a server's active *incoming*
      communications sum to at most 1, and likewise for *outgoing*;
    * a server computes at most one thing at a time (its computation must
      not overlap itself across periods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .constants import INPUT, OUTPUT
from .costs import CostModel, comm_edges
from .graph import ExecutionGraph
from .models import CommModel
from .operation_list import (
    Operation,
    OperationList,
    comm_op,
    comp_op,
    is_comm,
    modular_overlap,
    modular_residue,
)
from .platform import Mapping, Platform

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass
class ValidationReport:
    """Outcome of a validation run: a (possibly empty) list of violations."""

    model: CommModel
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            details = "\n  - ".join(self.violations)
            raise InvalidScheduleError(
                f"invalid {self.model} operation list:\n  - {details}"
            )

    def __bool__(self) -> bool:
        return self.ok


class InvalidScheduleError(ValueError):
    """Raised by :meth:`ValidationReport.raise_if_invalid`."""


def _expected_operations(graph: ExecutionGraph) -> List[Operation]:
    ops: List[Operation] = [comp_op(n) for n in graph.nodes]
    ops.extend(comm_op(a, b) for a, b in comm_edges(graph))
    return ops


def _check_coverage(
    graph: ExecutionGraph, ol: OperationList, report: ValidationReport
) -> bool:
    expected = set(_expected_operations(graph))
    actual = set(ol.operations())
    missing = expected - actual
    extra = actual - expected
    for op in sorted(missing):
        report.add(f"missing operation {op}")
    for op in sorted(extra):
        report.add(f"unexpected operation {op}")
    return not missing and not extra


def _check_durations(
    costs: CostModel, ol: OperationList, model: CommModel, report: ValidationReport
) -> None:
    graph = costs.graph
    for node in graph.nodes:
        op = comp_op(node)
        if op not in ol:
            continue
        want = costs.ccomp(node)
        got = ol.duration(op)
        if got != want:
            report.add(f"computation of {node!r} lasts {got}, expected Ccomp={want}")
        if got > ol.lam:
            report.add(
                f"computation of {node!r} ({got}) exceeds the period {ol.lam}: "
                "consecutive data sets would compute simultaneously"
            )
    for a, b in comm_edges(graph):
        op = comm_op(a, b)
        if op not in ol:
            continue
        size = costs.comm_time(a, b)
        got = ol.duration(op)
        if model.multiport:
            if got < size:
                report.add(
                    f"communication {a!r}->{b!r} lasts {got} < transfer time "
                    f"{size}: bandwidth ratio would exceed 1"
                )
        else:
            if got != size:
                report.add(
                    f"communication {a!r}->{b!r} lasts {got}, expected {size} "
                    "(one-port communications run at full bandwidth)"
                )
            if got > ol.lam:
                report.add(
                    f"communication {a!r}->{b!r} ({got}) exceeds the period {ol.lam}"
                )


def _check_precedence(
    graph: ExecutionGraph, ol: OperationList, report: ValidationReport
) -> None:
    for node in graph.nodes:
        cop = comp_op(node)
        if cop not in ol:
            continue
        preds = graph.predecessors(node) or (INPUT,)
        for p in preds:
            op = comm_op(p, node)
            if op in ol and ol.end(op) > ol.begin(cop):
                report.add(
                    f"incoming communication {p!r}->{node!r} ends at {ol.end(op)} "
                    f"after the computation of {node!r} begins at {ol.begin(cop)}"
                )
        succs = graph.successors(node) or (OUTPUT,)
        for s in succs:
            op = comm_op(node, s)
            if op in ol and ol.begin(op) < ol.end(cop):
                report.add(
                    f"outgoing communication {node!r}->{s!r} begins at {ol.begin(op)} "
                    f"before the computation of {node!r} ends at {ol.end(cop)}"
                )


def _server_operations(graph: ExecutionGraph, node: str) -> List[Operation]:
    """All operations occupying server *node* (comp + incident comms)."""
    ops: List[Operation] = []
    preds = graph.predecessors(node) or (INPUT,)
    ops.extend(comm_op(p, node) for p in preds)
    ops.append(comp_op(node))
    succs = graph.successors(node) or (OUTPUT,)
    ops.extend(comm_op(node, s) for s in succs)
    return ops


def _check_oneport_exclusion(
    graph: ExecutionGraph, ol: OperationList, report: ValidationReport
) -> None:
    for node in graph.nodes:
        ops = [op for op in _server_operations(graph, node) if op in ol]
        for i in range(len(ops)):
            bi, ei = ol.begin(ops[i]), ol.end(ops[i])
            for j in range(i + 1, len(ops)):
                bj, ej = ol.begin(ops[j]), ol.end(ops[j])
                if modular_overlap(bi, ei - bi, bj, ej - bj, ol.lam):
                    report.add(
                        f"server {node!r}: operations {ops[i]} [{bi}, {ei}] and "
                        f"{ops[j]} [{bj}, {ej}] overlap modulo lambda={ol.lam}"
                    )


def _check_inorder_rule(
    graph: ExecutionGraph, ol: OperationList, report: ValidationReport
) -> None:
    for node in graph.nodes:
        in_ops = [
            comm_op(p, node) for p in (graph.predecessors(node) or (INPUT,))
        ]
        out_ops = [
            comm_op(node, s) for s in (graph.successors(node) or (OUTPUT,))
        ]
        for oin in in_ops:
            if oin not in ol:
                continue
            for oout in out_ops:
                if oout not in ol:
                    continue
                if ol.end(oout) > ol.begin(oin) + ol.lam:
                    report.add(
                        f"INORDER violated on server {node!r}: outgoing {oout} ends at "
                        f"{ol.end(oout)} after the next data set's incoming {oin} "
                        f"begins at {ol.begin(oin) + ol.lam}"
                    )


def _bandwidth_profile_ok(
    intervals: Sequence[Tuple[Fraction, Fraction, Fraction]], lam: Fraction
) -> Tuple[bool, Fraction]:
    """Check that ratio-weighted cyclic intervals never stack above 1.

    ``intervals`` holds ``(begin, duration, ratio)`` triples; each interval
    repeats every ``lam``.  Returns ``(ok, worst_load)``.
    """
    # Baseline load from operations whose duration covers >= 1 full period.
    base = ZERO
    events: List[Tuple[Fraction, Fraction]] = []
    for begin, duration, ratio in intervals:
        if duration <= 0:
            continue
        whole = int(duration / lam)  # occurrences always active
        base += ratio * whole
        rem = duration - lam * whole
        if rem > 0:
            r = modular_residue(begin, lam)
            endr = r + rem
            if endr <= lam:
                events.append((r, ratio))
                events.append((endr, -ratio))
            else:  # wraps around the period boundary
                events.append((r, ratio))
                events.append((lam, -ratio))
                events.append((ZERO, ratio))
                events.append((endr - lam, -ratio))
    events.sort(key=lambda t: (t[0], t[1] > 0))
    load = base
    worst = base
    for _, delta in events:
        load += delta
        if load > worst:
            worst = load
    return worst <= ONE, worst


def _check_overlap_bandwidth(
    costs: CostModel, ol: OperationList, report: ValidationReport
) -> None:
    graph = costs.graph
    for node in graph.nodes:
        incoming: List[Tuple[Fraction, Fraction, Fraction]] = []
        for p in graph.predecessors(node) or (INPUT,):
            op = comm_op(p, node)
            if op not in ol:
                continue
            d = ol.duration(op)
            if d > 0:
                incoming.append((ol.begin(op), d, costs.comm_time(p, node) / d))
        ok, worst = _bandwidth_profile_ok(incoming, ol.lam)
        if not ok:
            report.add(
                f"server {node!r}: incoming bandwidth peaks at {worst} > 1"
            )
        outgoing: List[Tuple[Fraction, Fraction, Fraction]] = []
        for s in graph.successors(node) or (OUTPUT,):
            op = comm_op(node, s)
            if op not in ol:
                continue
            d = ol.duration(op)
            if d > 0:
                outgoing.append((ol.begin(op), d, costs.comm_time(node, s) / d))
        ok, worst = _bandwidth_profile_ok(outgoing, ol.lam)
        if not ok:
            report.add(
                f"server {node!r}: outgoing bandwidth peaks at {worst} > 1"
            )


def validate(
    graph: ExecutionGraph,
    ol: OperationList,
    model: CommModel,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> ValidationReport:
    """Validate *ol* as an operation list for *graph* under *model*.

    *platform*/*mapping* determine the expected durations: computation
    times scale with server speed, communication times with link bandwidth
    (``None`` is the paper's normalised unit platform).
    """
    report = ValidationReport(model)
    costs = CostModel(graph, platform, mapping)
    covered = _check_coverage(graph, ol, report)
    _check_durations(costs, ol, model, report)
    _check_precedence(graph, ol, report)
    if model.multiport:
        _check_overlap_bandwidth(costs, ol, report)
        if covered:
            # One computation per server: it must not overlap itself (checked
            # in _check_durations via duration <= lambda); nothing else to do,
            # computation overlaps communications freely in this model.
            pass
    else:
        _check_oneport_exclusion(graph, ol, report)
        if model.in_order:
            _check_inorder_rule(graph, ol, report)
    return report


def assert_valid(
    graph: ExecutionGraph,
    ol: OperationList,
    model: CommModel,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> OperationList:
    """Validate and return *ol*, raising :class:`InvalidScheduleError` if bad."""
    validate(graph, ol, model, platform=platform, mapping=mapping).raise_if_invalid()
    return ol


__all__ = [
    "ValidationReport",
    "InvalidScheduleError",
    "validate",
    "assert_valid",
]
