"""Shared sentinel constants for the core data model.

The paper's execution graphs contain, besides the service nodes, synthetic
*input* and *output* nodes that model communication with the outside world
(Section 2.1).  We never materialise those nodes inside
:class:`~repro.core.graph.ExecutionGraph`; instead, operations referencing
them use the two sentinels below.
"""

from __future__ import annotations

#: Sentinel used as the source endpoint of an input communication
#: (outside world -> entry service).
INPUT: str = "__input__"

#: Sentinel used as the destination endpoint of an output communication
#: (exit service -> outside world).
OUTPUT: str = "__output__"

__all__ = ["INPUT", "OUTPUT"]
