"""Robust planning: optimise under parameter uncertainty.

A nominal solve trusts every ``c_i``/``σ_i``/speed/bandwidth exactly;
calibration (:mod:`repro.calibrate`) shows they are estimates with
intervals.  This package makes the planner honest about that:

* :class:`RobustSpec` — the uncertainty-set model: per-family relative
  intervals and/or per-parameter empirical sets
  (:class:`~repro.core.UncertainValue`), a robust scoring mode
  (``worst_case`` / ``expected`` / ``quantile``), and a seeded scenario
  count.  Hashable: its :meth:`~RobustSpec.key` rides
  :func:`~repro.planner.solve_key` and every cache key.
* :func:`sample_scenarios` — K deterministic perturbed
  (:class:`~repro.core.Application`, :class:`~repro.core.Platform`)
  scenarios out of a spec.
* :func:`~repro.robust.scoring.solve_robust` — the engine behind
  ``solve(robust=...)``: candidate plans from the nominal and
  per-scenario solves, ranked by their robust score across scenarios
  (float/batched tiers for ranking, exact certification of the winner),
  the winner scheduled on nominal parameters.
* :func:`degradation_report` — how far the nominal-optimal plan falls
  behind per scenario, versus the robust choice.
"""

from .spec import MODES, RobustSpec, Scenario, sample_scenarios
from .scoring import DegradationReport, degradation_report, robust_value

__all__ = [
    "DegradationReport",
    "MODES",
    "RobustSpec",
    "Scenario",
    "degradation_report",
    "robust_value",
    "sample_scenarios",
]
