"""The uncertainty-set model and scenario sampler.

A :class:`RobustSpec` describes *what is uncertain* (relative intervals
per parameter family, or empirical per-parameter sets carried over from
a calibration fit), *how many* scenarios to sample (seeded, so every
consumer — solver, report, benchmark — sees the same draws), and *how*
a plan's per-scenario values collapse into one robust score.

Scenarios are plain perturbed :class:`~repro.core.Application` /
:class:`~repro.core.Platform` objects built by the
:mod:`repro.core.uncertain` helpers — content-keyed like any others, so
the evaluation cache, placement memo and platform fingerprints
discriminate scenarios with no special casing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import (
    Application,
    Numeric,
    Platform,
    FlatTopology,
    UncertainValue,
    as_fraction,
    perturbed_application,
    perturbed_platform,
)

#: Robust scoring modes.
MODES: Tuple[str, ...] = ("worst_case", "expected", "quantile")

#: Parameter families an empirical entry may target.
FAMILIES: Tuple[str, ...] = ("cost", "selectivity", "speed", "bandwidth")

#: Denominator of rational jitter draws.
_GRID = 10**6

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass(frozen=True)
class RobustSpec:
    """An uncertainty set plus a robust scoring mode (frozen, hashable).

    ``*_rel`` fields declare symmetric relative intervals — every
    parameter of that family independently drawn from ``nominal * (1 ±
    rel)``.  ``empirical`` pins specific parameters to
    :class:`~repro.core.UncertainValue` sets instead (families
    ``cost``/``selectivity`` name a service, ``speed`` a server,
    ``bandwidth`` a ``"u|v"`` pair or ``"default"``); empirical entries
    win over the family interval.  ``scenarios``/``seed`` fix the sample;
    ``mode`` (+ ``q``) picks the score: the worst, the mean, or the
    ``q``-quantile of a plan's per-scenario objective values.
    """

    mode: str = "worst_case"
    q: Optional[Fraction] = None
    scenarios: int = 12
    seed: int = 0
    cost_rel: Fraction = ZERO
    selectivity_rel: Fraction = ZERO
    speed_rel: Fraction = ZERO
    bandwidth_rel: Fraction = ZERO
    empirical: Tuple[Tuple[str, str, UncertainValue], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown robust mode {self.mode!r}; "
                f"expected one of: {', '.join(MODES)}"
            )
        if self.mode == "quantile":
            if self.q is None:
                raise ValueError("robust mode 'quantile' needs q (e.g. q=9/10)")
            object.__setattr__(self, "q", as_fraction(self.q))
            if not 0 < self.q <= 1:
                raise ValueError(f"quantile q must be in (0, 1], got {self.q}")
        elif self.q is not None:
            raise ValueError(f"q only applies to mode 'quantile', got mode {self.mode!r}")
        if int(self.scenarios) < 1:
            raise ValueError(f"scenarios must be >= 1, got {self.scenarios}")
        object.__setattr__(self, "scenarios", int(self.scenarios))
        object.__setattr__(self, "seed", int(self.seed))
        for name in ("cost_rel", "selectivity_rel", "speed_rel", "bandwidth_rel"):
            value = as_fraction(getattr(self, name))
            if not 0 <= value < 1:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
            object.__setattr__(self, name, value)
        entries = []
        for entry in self.empirical:
            family, name, uv = entry
            if family not in FAMILIES:
                raise ValueError(
                    f"unknown empirical family {family!r}; "
                    f"expected one of: {', '.join(FAMILIES)}"
                )
            if not isinstance(uv, UncertainValue):
                raise ValueError(
                    f"empirical entry for {family}:{name} must be an "
                    f"UncertainValue, got {type(uv).__name__}"
                )
            entries.append((str(family), str(name), uv))
        object.__setattr__(self, "empirical", tuple(entries))
        if not self.perturbs:
            raise ValueError(
                "RobustSpec perturbs nothing: set a *_rel interval or "
                "provide empirical entries"
            )

    # -- queries --------------------------------------------------------------
    @property
    def perturbs(self) -> bool:
        return bool(
            self.cost_rel or self.selectivity_rel or self.speed_rel
            or self.bandwidth_rel or self.empirical
        )

    @property
    def perturbs_platform(self) -> bool:
        return bool(
            self.speed_rel or self.bandwidth_rel
            or any(f in ("speed", "bandwidth") for f, _, _ in self.empirical)
        )

    def key(self):
        """Hashable content fingerprint (a :func:`~repro.planner.solve_key`
        component — two equal keys ask for interchangeable robust solves)."""
        return (
            self.mode, self.q, self.scenarios, self.seed,
            self.cost_rel, self.selectivity_rel,
            self.speed_rel, self.bandwidth_rel,
            self.empirical,
        )

    def label(self) -> str:
        """Compact human rendition: ``worst_case(k=12, seed=0, eps=1/5)``."""
        parts = [f"k={self.scenarios}", f"seed={self.seed}"]
        if self.q is not None:
            parts.insert(0, f"q={self.q}")
        for name, value in (
            ("cost", self.cost_rel), ("sel", self.selectivity_rel),
            ("speed", self.speed_rel), ("bw", self.bandwidth_rel),
        ):
            if value:
                parts.append(f"{name}±{value}")
        if self.empirical:
            parts.append(f"empirical={len(self.empirical)}")
        return f"{self.mode}({', '.join(parts)})"

    # -- constructors ---------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "RobustSpec":
        """From a CLI/wire spec string: ``mode[:opt=value,...]``.

        Options: ``eps`` (shorthand setting cost *and* selectivity
        intervals), ``cost``, ``sel``, ``speed``, ``bw``, ``k`` (scenario
        count), ``seed``, ``q`` (quantile).  Example:
        ``worst_case:eps=0.2,k=16,seed=3`` or ``quantile:q=9/10,eps=1/4``.
        """
        from ..planner.catalog import _check_keys, _parse_options

        spec = str(spec).strip()
        mode, _, options_text = spec.partition(":")
        mode = mode.strip().lower() or "worst_case"
        options = _parse_options(options_text)
        _check_keys(
            options, ("eps", "cost", "sel", "speed", "bw", "k", "seed", "q"),
            f"robust {mode}",
        )
        eps = as_fraction(options.get("eps", 0))
        return cls(
            mode=mode,
            q=as_fraction(options["q"]) if "q" in options else None,
            scenarios=int(options.get("k", 12)),
            seed=int(options.get("seed", 0)),
            cost_rel=as_fraction(options.get("cost", eps)),
            selectivity_rel=as_fraction(options.get("sel", eps)),
            speed_rel=as_fraction(options.get("speed", 0)),
            bandwidth_rel=as_fraction(options.get("bw", 0)),
        )

    @classmethod
    def coerce(
        cls, value: Union["RobustSpec", str, None]
    ) -> Optional["RobustSpec"]:
        """``None`` passes through; strings go through :meth:`parse`."""
        if value is None or isinstance(value, RobustSpec):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise TypeError(
            f"robust must be a RobustSpec, a spec string, or None, "
            f"got {type(value).__name__}"
        )

    @classmethod
    def from_calibration(
        cls,
        fit,  # CalibrationResult (kept loose: calibrate imports us)
        *,
        mode: str = "worst_case",
        q: Optional[Numeric] = None,
        scenarios: int = 12,
        seed: int = 0,
        min_width: Numeric = 0,
        families: Optional[Sequence[str]] = None,
    ) -> "RobustSpec":
        """The empirical uncertainty set a calibration fit implies.

        Every fitted parameter whose interval is wider than *min_width*
        (relative) becomes an empirical entry — scenario draws then
        resample the fit's per-record estimates.  *families* selects
        which parameter families participate; the default is the
        application-side pair ``("cost", "selectivity")``, because
        perturbing speeds or bandwidths makes ``solve`` demand an
        explicit (flat) platform to perturb.  Pass
        ``families=FAMILIES`` for the full set.
        """
        min_width = as_fraction(min_width)
        if families is None:
            families = ("cost", "selectivity")
        unknown = sorted(set(families) - set(FAMILIES))
        if unknown:
            raise ValueError(
                f"unknown parameter families {unknown}; expected a subset "
                f"of {list(FAMILIES)}"
            )
        entries: List[Tuple[str, str, UncertainValue]] = []

        def keep(uv: UncertainValue) -> bool:
            return uv.relative_width > min_width

        if "cost" in families:
            for name, uv in sorted(fit.costs.items()):
                if keep(uv):
                    entries.append(("cost", name, uv))
        if "selectivity" in families:
            for name, uv in sorted(fit.selectivities.items()):
                if keep(uv):
                    entries.append(("selectivity", name, uv))
        if "speed" in families:
            for name, uv in sorted(fit.speeds.items()):
                if keep(uv):
                    entries.append(("speed", name, uv))
        if "bandwidth" in families:
            for (u, v), uv in sorted(fit.bandwidths.items()):
                if keep(uv):
                    entries.append(("bandwidth", f"{u}|{v}", uv))
            if keep(fit.default_bandwidth):
                entries.append(("bandwidth", "default", fit.default_bandwidth))
        if not entries:
            raise ValueError(
                "calibration fit shows no parameter uncertainty above "
                f"min_width={min_width}; a robust solve would equal the "
                "nominal solve"
            )
        return cls(
            mode=mode, q=q, scenarios=scenarios, seed=seed,
            empirical=tuple(entries),
        )


@dataclass(frozen=True)
class Scenario:
    """One sampled parameter world: a perturbed application (+ platform)."""

    index: int
    application: Application
    platform: Optional[Platform]


def _draw(
    rng: random.Random,
    nominal: Fraction,
    rel: Fraction,
    uv: Optional[UncertainValue],
) -> Fraction:
    """One parameter draw: empirical set wins over the family interval."""
    if uv is not None:
        return uv.sample(rng)
    if rel == 0:
        return nominal
    return nominal * (
        ONE + rel * Fraction(rng.randrange(-_GRID, _GRID + 1), _GRID)
    )


def sample_scenarios(
    spec: RobustSpec,
    application: Application,
    platform: Optional[Platform] = None,
) -> List[Scenario]:
    """The spec's K deterministic scenarios for *application*/*platform*.

    Draw order is fixed (services in application order, then servers,
    link pairs and the default bandwidth in platform order), so the same
    ``(spec, application, platform)`` triple always yields identical
    scenarios — across the solver, the degradation report and the
    benchmarks.
    """
    empirical: Dict[Tuple[str, str], UncertainValue] = {
        (family, name): uv for family, name, uv in spec.empirical
    }
    if spec.perturbs_platform:
        if platform is None:
            raise ValueError(
                "this RobustSpec perturbs speeds/bandwidths, which needs an "
                "explicit platform (the paper's implicit unit platform has "
                "no servers to perturb)"
            )
        if not isinstance(platform.topology, FlatTopology):
            raise ValueError(
                "robust speed/bandwidth perturbation supports flat (clique) "
                "platforms; structured topologies derive bandwidths from "
                "their shape — perturb the topology parameters instead"
            )
    rng = random.Random(spec.seed)
    scenarios: List[Scenario] = []
    for index in range(spec.scenarios):
        costs: Dict[str, Fraction] = {}
        sels: Dict[str, Fraction] = {}
        for service in application.services:
            costs[service.name] = _draw(
                rng, service.cost, spec.cost_rel,
                empirical.get(("cost", service.name)),
            )
            sels[service.name] = _draw(
                rng, service.selectivity, spec.selectivity_rel,
                empirical.get(("selectivity", service.name)),
            )
        app = perturbed_application(
            application, costs=costs, selectivities=sels
        )
        plat = platform
        if platform is not None and spec.perturbs_platform:
            speeds = {
                server.name: _draw(
                    rng, server.speed, spec.speed_rel,
                    empirical.get(("speed", server.name)),
                )
                for server in platform.servers
            }
            overrides = platform.link_overrides()
            pairs = sorted({tuple(sorted(k)) for k in overrides})
            bandwidths = {
                (u, v): _draw(
                    rng, overrides[(u, v)], spec.bandwidth_rel,
                    empirical.get(("bandwidth", f"{u}|{v}")),
                )
                for u, v in pairs
            }
            default = _draw(
                rng, platform.default_bandwidth, spec.bandwidth_rel,
                empirical.get(("bandwidth", "default")),
            )
            plat = perturbed_platform(
                platform, speeds=speeds, bandwidths=bandwidths,
                default_bandwidth=default,
            )
        scenarios.append(Scenario(index, app, plat))
    return scenarios


__all__ = ["FAMILIES", "MODES", "RobustSpec", "Scenario", "sample_scenarios"]
