"""The robust solver: rank candidates across scenarios, certify the winner.

``solve(robust=RobustSpec(...))`` lands here.  The algorithm:

1. **Candidates.**  Solve the nominal problem, then each sampled
   scenario (same method/effort/exactness, shared evaluation cache —
   scenarios are content-keyed, so repeats hit the memo).  Every
   distinct winning graph is a candidate; the nominal optimum is always
   among them, which is what makes the robust choice *never worse* than
   the nominal plan under the spec's own score.
2. **Ranking.**  Score every candidate on every scenario.  Where the
   batched kernel applies (period/OVERLAP forests —
   :func:`repro.optimize.scenarios.scenario_period_matrix`) the R×K
   matrix prices in one vectorised sweep and picks the contenders; an
   eps band around the float minimum (the PR-5 certification protocol,
   :data:`~repro.core.CERT_EPS`) guards against double rounding.
3. **Certification.**  Contenders — always including the nominal
   optimum — are re-scored in exact Fractions on every scenario; the
   winner is the exact argmin (ties broken on the smaller edge set, so
   reruns are deterministic).  The returned ``value`` is the winner's
   exact robust score; the plan is scheduled on *nominal* parameters.

:func:`degradation_report` replays the same scenarios against the
per-scenario optima to quantify what nominal planning costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    Application,
    CERT_EPS,
    CommModel,
    ExecutionGraph,
    quantile,
)
from .spec import RobustSpec, Scenario, sample_scenarios

ZERO = Fraction(0)


def robust_value(values: Sequence[Fraction], spec: RobustSpec) -> Fraction:
    """Collapse per-scenario objective values into the spec's score."""
    values = list(values)
    if not values:
        raise ValueError("robust_value needs at least one scenario value")
    if spec.mode == "worst_case":
        return max(values)
    if spec.mode == "expected":
        return sum(values, ZERO) / len(values)
    return quantile(values, spec.q)  # mode == "quantile"


def _float_score(row: Sequence[float], spec: RobustSpec) -> float:
    values = sorted(float(v) for v in row)
    if spec.mode == "worst_case":
        return values[-1]
    if spec.mode == "expected":
        return sum(values) / len(values)
    import math

    rank = math.ceil(float(spec.q) * len(values)) - 1
    return values[max(0, min(rank, len(values) - 1))]


def _edge_key(graph: ExecutionGraph):
    return tuple(sorted(graph.edges))


def solve_robust(
    problem,
    *,
    robust: RobustSpec,
    objective: str,
    model: CommModel,
    method: str,
    effort,
    schedule: bool,
    cache,
    registry,
    platform,
    mapping,
    exactness,
    deadline,
    solver_options: Dict,
):
    """The engine behind ``solve(robust=...)`` — see the module docstring.

    All parameters arrive pre-coerced from the facade; returns a
    :class:`~repro.planner.PlanResult` whose ``value`` is the winner's
    exact robust score and whose ``stats.extras["robust"]`` records the
    scenario-level evidence.
    """
    from ..optimize.evaluation import Effort
    from ..planner.facade import _coerce_effort, _resolve_mapping, build_schedule, solve
    from ..planner.result import PlanResult, SolverStats
    from ..optimize.scenarios import scenario_period_matrix

    fixed_graph = isinstance(problem, ExecutionGraph)
    app: Application = problem.application if fixed_graph else problem
    scenarios = sample_scenarios(robust, app, platform)

    inner = dict(
        objective=objective, model=model, method=method, effort=effort,
        schedule=False, cache=cache, registry=registry, platform=platform,
        mapping=mapping, exactness=exactness, deadline=deadline,
    )
    nominal = solve(problem, **inner, **solver_options)
    candidates: Dict[Tuple, ExecutionGraph] = {
        _edge_key(nominal.graph): nominal.graph
    }
    scenario_solves = 0
    if not fixed_graph:
        for scenario in scenarios:
            result = solve(
                scenario.application,
                **{**inner, "platform": scenario.platform},
                **solver_options,
            )
            scenario_solves += 1
            key = _edge_key(result.graph)
            if key not in candidates:
                candidates[key] = ExecutionGraph(app, result.graph.edges)
    candidate_list = list(candidates.values())
    nominal_key = _edge_key(nominal.graph)

    # The effort tier candidate scoring runs at mirrors what the nominal
    # solver scored its own search with.
    eff = _coerce_effort(
        effort,
        Effort.EXACT
        if nominal.method in ("exhaustive", "branch-and-bound")
        else Effort.HEURISTIC,
    )
    scenario_fns = [
        cache.objective(
            objective, model, eff, scenario.platform, mapping, exactness
        )
        for scenario in scenarios
    ]

    def exact_row(graph: ExecutionGraph) -> List[Fraction]:
        return [
            fn(ExecutionGraph(scenario.application, graph.edges))
            for scenario, fn in zip(scenarios, scenario_fns)
        ]

    # -- rank on the float tier, certify contenders exactly -------------------
    contenders = candidate_list
    matrix = None
    if len(candidate_list) > 1 and objective == "period":
        matrix = scenario_period_matrix(candidate_list, scenarios, model, mapping)
    if matrix is not None:
        scores = [_float_score(matrix[i], robust) for i in range(len(candidate_list))]
        best = min(scores)
        band = best * (1 + 8 * CERT_EPS) + 1e-12
        contenders = [
            graph
            for graph, score in zip(candidate_list, scores)
            if score <= band
        ]
    exact_scores: Dict[Tuple, Fraction] = {}
    rows: Dict[Tuple, List[Fraction]] = {}
    for graph in contenders:
        key = _edge_key(graph)
        rows[key] = exact_row(graph)
        exact_scores[key] = robust_value(rows[key], robust)
    if nominal_key not in exact_scores:
        rows[nominal_key] = exact_row(nominal.graph)
        exact_scores[nominal_key] = robust_value(rows[nominal_key], robust)
    # Ties fall back to the nominal graph first (no reason to swap plans
    # for an equal score), then the smaller edge set for determinism.
    winner_key = min(
        exact_scores, key=lambda k: (exact_scores[k], k != nominal_key, k)
    )
    winner = candidates[winner_key]
    value = exact_scores[winner_key]

    resolved = _resolve_mapping(
        winner, objective, model, eff, platform, mapping, exactness
    )
    plan = (
        build_schedule(winner, objective, model, platform, resolved)
        if schedule
        else None
    )
    evaluations = sum(fn.misses for fn in scenario_fns)
    hits = sum(fn.hits for fn in scenario_fns)
    stats = SolverStats(
        evaluations=nominal.stats.evaluations + evaluations,
        cache_hits=nominal.stats.cache_hits + hits,
        graphs_considered=nominal.stats.graphs_considered + len(candidate_list),
        extras={
            "effort": eff.value,
            "exactness": exactness.value,
            "robust": {
                "spec": robust.label(),
                "mode": robust.mode,
                "scenarios": len(scenarios),
                "scenario_solves": scenario_solves,
                "candidates": len(candidate_list),
                "certified": len(exact_scores),
                "batched_ranking": matrix is not None,
                "winner_is_nominal": winner_key == nominal_key,
                "nominal_value": str(nominal.value),
                "nominal_plan_score": str(exact_scores[nominal_key]),
                "scenario_values": [str(v) for v in rows[winner_key]],
            },
        },
    )
    return PlanResult(
        objective=objective,
        model=model,
        method=f"robust({nominal.method})",
        value=value,
        graph=winner,
        plan=plan,
        stats=stats,
        requested_method=method,
        platform=platform,
        mapping=resolved,
        deadline=deadline,
    )


@dataclass
class DegradationReport:
    """Nominal-optimal vs robust-optimal under the sampled perturbations.

    One row per scenario: the scenario's own optimum and both plans'
    values/ratios there.  ``ratio = value / optimum >= 1`` measures how
    far a fixed plan falls behind a clairvoyant re-solve; the aggregate
    ``*_score`` fields collapse the raw values with the spec's robust
    mode — by construction ``robust_score <= nominal_score``.
    """

    spec: str
    mode: str
    nominal_edges: Tuple
    robust_edges: Tuple
    rows: List[Dict] = field(default_factory=list)
    nominal_score: Fraction = ZERO
    robust_score: Fraction = ZERO
    nominal_worst_ratio: Fraction = ZERO
    robust_worst_ratio: Fraction = ZERO
    nominal_mean_ratio: Fraction = ZERO
    robust_mean_ratio: Fraction = ZERO

    @property
    def plans_differ(self) -> bool:
        return self.nominal_edges != self.robust_edges

    @property
    def improvement(self) -> Fraction:
        """Relative robust-score gain of planning robustly (0 when the
        nominal plan already is the robust choice)."""
        if self.nominal_score == 0:
            return ZERO
        return (self.nominal_score - self.robust_score) / self.nominal_score

    def as_dict(self) -> Dict:
        return {
            "spec": self.spec,
            "mode": self.mode,
            "plans_differ": self.plans_differ,
            "nominal_score": str(self.nominal_score),
            "robust_score": str(self.robust_score),
            "improvement": float(self.improvement),
            "nominal_worst_ratio": float(self.nominal_worst_ratio),
            "robust_worst_ratio": float(self.robust_worst_ratio),
            "nominal_mean_ratio": float(self.nominal_mean_ratio),
            "robust_mean_ratio": float(self.robust_mean_ratio),
            "scenarios": self.rows,
        }

    def summary_table(self) -> str:
        lines = [
            f"degradation under {self.spec}",
            f"plans differ: {'yes' if self.plans_differ else 'no'}   "
            f"robust-score improvement: {float(self.improvement):.3%}",
            "",
            f"{'scenario':>8} {'optimum':>10} {'nominal':>10} {'robust':>10} "
            f"{'nom/opt':>8} {'rob/opt':>8}",
        ]
        for row in self.rows:
            lines.append(
                f"{row['scenario']:>8} {float(Fraction(row['optimum'])):>10.5g} "
                f"{float(Fraction(row['nominal_value'])):>10.5g} "
                f"{float(Fraction(row['robust_value'])):>10.5g} "
                f"{float(Fraction(row['nominal_ratio'])):>8.4f} "
                f"{float(Fraction(row['robust_ratio'])):>8.4f}"
            )
        lines.append("")
        lines.append(
            f"{'score':>8} {'':>10} {float(self.nominal_score):>10.5g} "
            f"{float(self.robust_score):>10.5g} "
            f"{float(self.nominal_worst_ratio):>8.4f} "
            f"{float(self.robust_worst_ratio):>8.4f}"
        )
        return "\n".join(lines)


def degradation_report(
    problem,
    robust,
    *,
    objective: str = "period",
    model="overlap",
    method: str = "auto",
    effort=None,
    platform=None,
    mapping=None,
    exactness=None,
    cache=None,
    registry=None,
    **solver_options,
) -> DegradationReport:
    """Quantify how nominal-optimal and robust-optimal plans degrade.

    Solves *problem* both ways, then for every sampled scenario compares
    each plan's exact value against the scenario's own re-solved
    optimum.  Deterministic for a given spec (same seed → same
    scenarios as the robust solve itself).
    """
    from ..optimize.evaluation import Effort
    from ..planner.cache import default_cache
    from ..planner.facade import (
        _coerce_effort,
        _coerce_exactness,
        _coerce_mapping,
        _coerce_model,
        _coerce_objective,
        _coerce_platform,
        solve,
    )

    spec = RobustSpec.coerce(robust)
    if spec is None:
        raise ValueError("degradation_report needs a RobustSpec")
    obj = _coerce_objective(objective)
    mdl = _coerce_model(model)
    plat = _coerce_platform(platform)
    mapp = _coerce_mapping(mapping, plat)
    exact = _coerce_exactness(exactness)
    cache = cache if cache is not None else default_cache()

    common = dict(
        objective=obj, model=mdl, method=method, effort=effort,
        schedule=False, cache=cache, registry=registry, mapping=mapp,
        exactness=exact,
    )
    nominal = solve(problem, platform=plat, **common, **solver_options)
    chosen = solve(
        problem, platform=plat, robust=spec, **common, **solver_options
    )

    fixed_graph = isinstance(problem, ExecutionGraph)
    app = problem.application if fixed_graph else problem
    scenarios = sample_scenarios(spec, app, plat)
    eff = _coerce_effort(
        effort,
        Effort.EXACT
        if nominal.method in ("exhaustive", "branch-and-bound")
        else Effort.HEURISTIC,
    )

    rows: List[Dict] = []
    nominal_values: List[Fraction] = []
    robust_values: List[Fraction] = []
    nominal_ratios: List[Fraction] = []
    robust_ratios: List[Fraction] = []
    for scenario in scenarios:
        fn = cache.objective(obj, mdl, eff, scenario.platform, mapp, exact)
        if fixed_graph:
            optimum = fn(ExecutionGraph(scenario.application, problem.edges))
        else:
            optimum = solve(
                scenario.application, platform=scenario.platform,
                **common, **solver_options,
            ).value
        v_nom = fn(ExecutionGraph(scenario.application, nominal.graph.edges))
        v_rob = fn(ExecutionGraph(scenario.application, chosen.graph.edges))
        nominal_values.append(v_nom)
        robust_values.append(v_rob)
        r_nom = v_nom / optimum if optimum else Fraction(1)
        r_rob = v_rob / optimum if optimum else Fraction(1)
        nominal_ratios.append(r_nom)
        robust_ratios.append(r_rob)
        rows.append({
            "scenario": scenario.index,
            "optimum": str(optimum),
            "nominal_value": str(v_nom),
            "robust_value": str(v_rob),
            "nominal_ratio": str(r_nom),
            "robust_ratio": str(r_rob),
        })
    k = len(scenarios)
    return DegradationReport(
        spec=spec.label(),
        mode=spec.mode,
        nominal_edges=_edge_key(nominal.graph),
        robust_edges=_edge_key(chosen.graph),
        rows=rows,
        nominal_score=robust_value(nominal_values, spec),
        robust_score=robust_value(robust_values, spec),
        nominal_worst_ratio=max(nominal_ratios),
        robust_worst_ratio=max(robust_ratios),
        nominal_mean_ratio=sum(nominal_ratios, ZERO) / k,
        robust_mean_ratio=sum(robust_ratios, ZERO) / k,
    )


__all__ = [
    "DegradationReport",
    "degradation_report",
    "robust_value",
    "solve_robust",
]
