"""Online re-planning: event-driven admit/evict/load-change scenarios.

The concurrent regime's runtime layer (ROADMAP open item 1): a running
system holds an incumbent shared mapping (:class:`DynamicState`), events
(:class:`Event` — admissions, evictions, load changes, server drains)
mutate it through warm-started bounded repair (:func:`replan`), and
:func:`replay` measures whole scenario traces (:class:`ScenarioTrace` —
flash crowds, diurnal load, rolling maintenance) against the cold
re-solve baseline.

Quickstart::

    >>> from fractions import Fraction
    >>> from repro.core import Platform
    >>> from repro.dynamic import Event, initial_state, replan
    >>> state = initial_state([], platform=Platform.homogeneous(3))
    >>> result = replan(
    ...     state, Event("admit", app="a", workload="fig1", rho=Fraction(40)))
    >>> result.feasible, len(result.admitted)
    (True, 5)

CLI: ``python -m repro replay flash:n=50 --platform hom:n=4 --budget 2``.
"""

from .events import (
    CSV_COLUMNS,
    DIURNAL_CURVE,
    Event,
    KINDS,
    ScenarioTrace,
    TRACE_FAMILIES,
    diurnal_trace,
    flash_crowd_trace,
    load_trace,
    maintenance_trace,
)
from .replan import (
    DynamicState,
    MAX_ROUNDS,
    ReplanResult,
    apply_event,
    cold_solve,
    initial_state,
    migration_sizes,
    replan,
)
from .replay import ReplayReport, ReplayStep, replay

__all__ = [
    "CSV_COLUMNS",
    "DIURNAL_CURVE",
    "DynamicState",
    "Event",
    "KINDS",
    "MAX_ROUNDS",
    "ReplanResult",
    "ReplayReport",
    "ReplayStep",
    "ScenarioTrace",
    "TRACE_FAMILIES",
    "apply_event",
    "cold_solve",
    "diurnal_trace",
    "flash_crowd_trace",
    "initial_state",
    "load_trace",
    "maintenance_trace",
    "migration_sizes",
    "replan",
    "replay",
]
