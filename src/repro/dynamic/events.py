"""Events and scenario traces for online re-planning.

The concurrent regime (paper sequels) is inherently dynamic: ``K``
applications share one platform and ``K`` changes at runtime.  This
module models that runtime as a timestamped event stream:

``admit``
    A new application arrives, named ``app``, with an execution graph
    (a catalog workload spec in ``workload``, or a programmatic graph)
    and an optional period target ``rho`` (the sequels' ``rho_a``).
``evict``
    Application ``app`` departs; its services free their servers.
``load``
    Application ``app``'s demand changes: its period target becomes
    ``rho`` (smaller target = higher load).
``drain`` / ``restore``
    Platform maintenance: the named ``servers`` go out of (back into)
    service.  Draining forces every hosted service to migrate.
``noop``
    Explicitly nothing — the re-planner must return the incumbent
    untouched (the no-op stability property).

A :class:`ScenarioTrace` is an ordered event stream with CSV load/save,
plus three generator families the benchmarks replay: flash-crowd
arrival, a diurnal load curve, and rolling platform maintenance that
drains one topology group (rack) at a time via
:meth:`Topology.groups() <repro.core.topology.Topology.groups>`.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Optional, Sequence, Tuple

from ..core import ExecutionGraph, Platform, as_fraction

#: Every event kind the re-planner understands.
KINDS: Tuple[str, ...] = ("admit", "evict", "load", "drain", "restore", "noop")

#: Columns of the CSV rendition (one event per row).
CSV_COLUMNS: Tuple[str, ...] = (
    "time", "kind", "app", "workload", "rho", "servers",
)

ZERO = Fraction(0)


@dataclass(frozen=True)
class Event:
    """One timestamped change to the running system.

    ``workload`` is a catalog spec (``"fig1"``, ``"chain:n=4"``, ...)
    resolving to a single application graph; programmatic traces may
    instead attach an :class:`~repro.core.ExecutionGraph` directly via
    ``graph`` (such events cannot round-trip through CSV).
    """

    kind: str
    time: Fraction = ZERO
    app: str = ""
    workload: str = ""
    rho: Optional[Fraction] = None
    servers: Tuple[str, ...] = ()
    graph: Optional[ExecutionGraph] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; "
                f"expected one of: {', '.join(KINDS)}"
            )
        object.__setattr__(self, "time", as_fraction(self.time))
        if self.rho is not None:
            rho = as_fraction(self.rho)
            if rho <= 0:
                raise ValueError(f"rho must be > 0, got {rho}")
            object.__setattr__(self, "rho", rho)
        object.__setattr__(self, "servers", tuple(self.servers))
        if self.kind in ("admit", "evict", "load") and not self.app:
            raise ValueError(f"{self.kind} event needs an application name")
        if self.kind == "admit" and not self.workload and self.graph is None:
            raise ValueError(
                "admit event needs a workload spec or an execution graph"
            )
        if self.kind == "load" and self.rho is None:
            raise ValueError("load event needs the new rho target")
        if self.kind in ("drain", "restore") and not self.servers:
            raise ValueError(f"{self.kind} event needs at least one server")

    # -- graph resolution --------------------------------------------------
    def resolve_graph(self) -> ExecutionGraph:
        """The admitted application's execution graph.

        Programmatic graphs win; otherwise the catalog resolves the
        ``workload`` spec (which must name exactly one application).
        """
        if self.kind != "admit":
            raise ValueError(f"{self.kind} event has no application graph")
        if self.graph is not None:
            return self.graph
        from ..planner.catalog import load_concurrent_workload

        workload = load_concurrent_workload(self.workload)
        if len(workload.multi) != 1:
            raise ValueError(
                f"admit workload {self.workload!r} must name a single "
                f"application (got {len(workload.multi)})"
            )
        return workload.multi.members[0].graph

    def label(self) -> str:
        """Compact human rendition for timelines: ``admit a3(rho=5)``."""
        if self.kind == "noop":
            return "noop"
        if self.kind in ("drain", "restore"):
            return f"{self.kind} {','.join(self.servers)}"
        detail = f"(rho={self.rho})" if self.rho is not None else ""
        return f"{self.kind} {self.app}{detail}"

    # -- wire / CSV renditions ---------------------------------------------
    def as_dict(self) -> dict:
        """JSON-friendly rendition (the serve ``replan`` op's ``event``)."""
        return {
            "time": str(self.time),
            "kind": self.kind,
            "app": self.app,
            "workload": self.workload,
            "rho": str(self.rho) if self.rho is not None else "",
            "servers": list(self.servers),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Inverse of :meth:`as_dict`; tolerates missing optional keys."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"event must be an object, got {type(payload).__name__}"
            )
        # Sort by str(): a ragged CSV row surfaces as a None key (the
        # DictReader restkey), which must become a one-line error, not a
        # TypeError from comparing None with str.
        unknown = sorted(set(payload) - set(CSV_COLUMNS), key=str)
        if unknown:
            names = ", ".join(
                "<extra unnamed column>" if k is None else repr(k)
                for k in unknown
            )
            raise ValueError(
                f"unknown event field(s) {names}; "
                f"accepted: {', '.join(CSV_COLUMNS)}"
            )
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ValueError("event needs a 'kind' string")
        rho = payload.get("rho")
        servers = payload.get("servers", ())
        if isinstance(servers, str):
            servers = tuple(s for s in servers.split(";") if s)
        return cls(
            kind=kind,
            time=as_fraction(payload.get("time") or 0),
            app=str(payload.get("app") or ""),
            workload=str(payload.get("workload") or ""),
            rho=as_fraction(rho) if rho not in (None, "") else None,
            servers=tuple(servers),
        )


class ScenarioTrace:
    """An ordered stream of :class:`Event` objects (stable-sorted by time)."""

    def __init__(self, events: Sequence[Event]) -> None:
        self.events: Tuple[Event, ...] = tuple(
            sorted(events, key=lambda e: e.time)
        )

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ScenarioTrace) and self.events == other.events
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"ScenarioTrace({len(self.events)} events: {inner})"

    # -- CSV ---------------------------------------------------------------
    def save_csv(self, path) -> None:
        """One event per row (columns :data:`CSV_COLUMNS`).

        Admissions carrying a programmatic graph (no catalog spec) cannot
        be serialised — attach a ``workload`` spec instead.
        """
        for event in self.events:
            if event.kind == "admit" and not event.workload:
                raise ValueError(
                    f"admit event for {event.app!r} has no workload spec; "
                    f"programmatic graphs cannot round-trip through CSV"
                )
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_COLUMNS)
            for e in self.events:
                writer.writerow([
                    str(e.time), e.kind, e.app, e.workload,
                    str(e.rho) if e.rho is not None else "",
                    ";".join(e.servers),
                ])

    @classmethod
    def load_csv(cls, path) -> "ScenarioTrace":
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or sorted(
                reader.fieldnames
            ) != sorted(CSV_COLUMNS):
                raise ValueError(
                    f"trace CSV needs columns {', '.join(CSV_COLUMNS)}; "
                    f"got {reader.fieldnames}"
                )
            events = []
            for line, row in enumerate(reader, start=2):
                try:
                    events.append(Event.from_dict(dict(row)))
                except ValueError as exc:
                    raise ValueError(f"trace CSV row {line}: {exc}") from None
            return cls(events)


# -- generators --------------------------------------------------------------

#: The diurnal load curve as exact multipliers of the base rho: a day of
#: slots from night (slack targets) through the midday peak (tight) and
#: back.  Piecewise-linear stand-in for the usual sinusoid — exact
#: Fractions, same shape.
DIURNAL_CURVE: Tuple[Fraction, ...] = tuple(
    Fraction(x)
    for x in ("2", "3/2", "1", "3/4", "1/2", "2/5", "1/2", "3/4", "1", "3/2")
)


def flash_crowd_trace(
    n_events: int = 50,
    *,
    seed: int = 7,
    workloads: Sequence[str] = ("chain:n=3", "star:leaves=3", "fig1"),
    base_rho=Fraction(40),
) -> ScenarioTrace:
    """A flash crowd: accelerating admissions, load spikes, then cool-down.

    The first ~60% of events admit applications ``crowd0, crowd1, ...``
    (inter-arrival gaps shrink as the crowd builds), the next ~20% are
    load spikes tightening the rho of a random live application, and the
    final ~20% evict applications.  Every application carries a rho
    target, so the utilisation objective and the feasibility verdict are
    live throughout.  Deterministic per *seed*.
    """
    if n_events < 5:
        raise ValueError(f"flash crowd needs >= 5 events, got {n_events}")
    rng = random.Random(seed)
    n_admit = max(2, (n_events * 3) // 5)
    n_load = max(1, n_events // 5)
    n_evict = n_events - n_admit - n_load
    events = []
    time = Fraction(0)
    live = []
    base_rho = as_fraction(base_rho)
    for i in range(n_admit):
        # Gaps shrink as the crowd accelerates: 1/(i+1) scaled.
        time += Fraction(10, i + 1)
        name = f"crowd{i}"
        rho = base_rho * Fraction(rng.randrange(2, 5), 3)
        events.append(Event(
            "admit", time=time, app=name,
            workload=workloads[i % len(workloads)], rho=rho,
        ))
        live.append(name)
    for _ in range(n_load):
        time += Fraction(1)
        target = rng.choice(live)
        # Spike: tighten the target to 40–80% of base.
        rho = base_rho * Fraction(rng.randrange(2, 5), 5)
        events.append(Event("load", time=time, app=target, rho=rho))
    rng.shuffle(live)
    for name in live[:n_evict]:
        time += Fraction(2)
        events.append(Event("evict", time=time, app=name))
    return ScenarioTrace(events)


def diurnal_trace(
    n_apps: int = 3,
    cycles: int = 1,
    *,
    workload: str = "chain:n=3",
    base_rho=Fraction(40),
) -> ScenarioTrace:
    """A day (or *cycles* days) of load: targets follow the diurnal curve.

    *n_apps* applications are admitted at the start; each subsequent slot
    re-targets every application to ``base_rho * DIURNAL_CURVE[slot]`` —
    slack at night, tight at the midday trough of the curve.
    """
    if n_apps < 1:
        raise ValueError(f"diurnal trace needs >= 1 application, got {n_apps}")
    base_rho = as_fraction(base_rho)
    events = []
    for i in range(n_apps):
        events.append(Event(
            "admit", time=Fraction(i), app=f"day{i}", workload=workload,
            rho=base_rho * DIURNAL_CURVE[0],
        ))
    time = Fraction(n_apps)
    for cycle in range(cycles):
        for slot, multiplier in enumerate(DIURNAL_CURVE):
            if cycle == 0 and slot == 0:
                continue  # the admissions already set the first slot
            time += Fraction(10)
            for i in range(n_apps):
                events.append(Event(
                    "load", time=time, app=f"day{i}",
                    rho=base_rho * multiplier,
                ))
    return ScenarioTrace(events)


def maintenance_trace(
    platform: Platform,
    *,
    start=Fraction(0),
    dwell=Fraction(10),
    gap=Fraction(5),
) -> ScenarioTrace:
    """Rolling maintenance: drain one topology group at a time, restore it.

    Uses :meth:`Topology.groups()
    <repro.core.topology.Topology.groups>` for the drain granularity —
    one rack at a time on a :class:`~repro.core.TreeTopology`, one row on
    a torus, the whole (singleton-group) platform on a flat clique.  Each
    group is drained for *dwell* time units, then restored *gap* before
    the next drain, so at most one group is ever out.

    Draining every server at once is refused (nowhere to migrate to).
    """
    groups = platform.topology.groups()
    if len(groups) <= 1:
        raise ValueError(
            "rolling maintenance needs a platform with >= 2 topology "
            "groups (a flat clique is one group — drain it and nothing "
            "is left to host the services)"
        )
    events = []
    time = as_fraction(start)
    dwell = as_fraction(dwell)
    gap = as_fraction(gap)
    for _label, members in groups:
        events.append(Event("drain", time=time, servers=members))
        time += dwell
        events.append(Event("restore", time=time, servers=members))
        time += gap
    return ScenarioTrace(events)


#: Trace-spec families understood by :func:`load_trace` (CLI + serve).
TRACE_FAMILIES: Tuple[str, ...] = ("flash", "diurnal", "maint")


def load_trace(spec: str, platform: Optional[Platform] = None) -> ScenarioTrace:
    """A trace from a spec string or a CSV path.

    Specs mirror the workload catalog: ``flash:n=50,seed=7``,
    ``diurnal:apps=3,cycles=2``, ``maint:dwell=10,gap=5`` (needs the
    platform for its topology groups).  Anything ending in ``.csv`` — or
    prefixed ``@`` — loads that file instead.
    """
    from ..planner.catalog import _check_keys, _parse_options

    spec = spec.strip()
    if spec.startswith("@"):
        return ScenarioTrace.load_csv(spec[1:])
    if spec.lower().endswith(".csv"):
        return ScenarioTrace.load_csv(spec)
    family, _, options_text = spec.partition(":")
    family = family.strip().lower()
    options = _parse_options(options_text)
    if family == "flash":
        _check_keys(options, ("n", "seed", "rho"), "flash")
        return flash_crowd_trace(
            int(options.get("n", 50)),
            seed=int(options.get("seed", 7)),
            base_rho=as_fraction(options.get("rho", Fraction(40))),
        )
    if family == "diurnal":
        _check_keys(options, ("apps", "cycles", "rho"), "diurnal")
        return diurnal_trace(
            int(options.get("apps", 3)),
            int(options.get("cycles", 1)),
            base_rho=as_fraction(options.get("rho", Fraction(40))),
        )
    if family == "maint":
        _check_keys(options, ("dwell", "gap"), "maint")
        if platform is None:
            raise ValueError(
                "maint trace needs the platform (its topology groups set "
                "the drain granularity)"
            )
        return maintenance_trace(
            platform,
            dwell=as_fraction(options.get("dwell", Fraction(10))),
            gap=as_fraction(options.get("gap", Fraction(5))),
        )
    raise ValueError(
        f"unknown trace family {family!r}; expected one of: "
        f"{', '.join(TRACE_FAMILIES)} or a .csv path"
    )


__all__ = [
    "CSV_COLUMNS",
    "DIURNAL_CURVE",
    "Event",
    "KINDS",
    "ScenarioTrace",
    "TRACE_FAMILIES",
    "diurnal_trace",
    "flash_crowd_trace",
    "load_trace",
    "maintenance_trace",
]
