"""Replay a scenario trace: warm-started repair vs. cold re-solve.

:func:`replay` runs a :class:`~repro.dynamic.events.ScenarioTrace`
through :func:`~repro.dynamic.replan.replan` event by event, maintaining
the warm incumbent, and (optionally) re-solves every snapshot cold — the
baseline a from-scratch planner would deploy.  The per-event timeline
records both sides: objective value, system period, max utilisation,
feasibility, services moved, migration cost, and wall time.

Two aggregate numbers summarise a replay (the bench's acceptance
criteria): the **period ratio** (warm steady-state system period over
cold — 1.0 means the repair matches the full re-solve) and the **move
ratio** (total services the warm side migrated over the cold side's
churn — the whole point of bounded repair is pushing this far below 1).

Cold churn counts the same thing warm moves count: services that
survived the event but sit on a different server than before it.  The
cold baseline re-solves with no memory of its previous mapping, so its
churn is what a stateless planner would force the operators to migrate.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ..concurrent import ConcurrentCosts, MultiApplication
from ..core import CommModel, Platform
from ..optimize.placement import clear_placement_memo
from .events import Event, ScenarioTrace
from .replan import DynamicState, ReplanResult, cold_solve, replan

ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass
class ReplayStep:
    """One event's before/after readouts, warm and cold."""

    index: int
    event: Event
    applications: int
    services: int
    warm_value: Fraction
    warm_period: Fraction
    warm_utilisation: Optional[Fraction]
    warm_feasible: bool
    warm_moved: int
    warm_forced: int
    migration_cost: Fraction
    fallback: bool
    warm_wall: float
    cold_period: Optional[Fraction] = None
    cold_feasible: Optional[bool] = None
    cold_moved: Optional[int] = None
    cold_wall: Optional[float] = None

    @property
    def period_ratio(self) -> Optional[Fraction]:
        """Warm period over cold (``None`` without a cold baseline)."""
        if self.cold_period is None:
            return None
        if self.cold_period == 0:
            return ONE if self.warm_period == 0 else None
        return self.warm_period / self.cold_period

    def as_dict(self) -> Dict[str, object]:
        ratio = self.period_ratio
        return {
            "index": self.index,
            "time": str(self.event.time),
            "event": self.event.label(),
            "applications": self.applications,
            "services": self.services,
            "warm": {
                "value": str(self.warm_value),
                "system_period": str(self.warm_period),
                "utilisation": (
                    str(self.warm_utilisation)
                    if self.warm_utilisation is not None
                    else None
                ),
                "feasible": self.warm_feasible,
                "moved": self.warm_moved,
                "forced": self.warm_forced,
                "migration_cost": str(self.migration_cost),
                "fallback": self.fallback,
                "wall_ms": round(self.warm_wall * 1000, 3),
            },
            "cold": None if self.cold_period is None else {
                "system_period": str(self.cold_period),
                "feasible": self.cold_feasible,
                "moved": self.cold_moved,
                "wall_ms": round((self.cold_wall or 0.0) * 1000, 3),
            },
            "period_ratio": float(ratio) if ratio is not None else None,
        }


@dataclass
class ReplayReport:
    """The full timeline plus the aggregates the benchmarks assert on."""

    steps: List[ReplayStep] = field(default_factory=list)
    final: Optional[DynamicState] = None

    @property
    def total_warm_moves(self) -> int:
        return sum(s.warm_moved + s.warm_forced for s in self.steps)

    @property
    def total_cold_moves(self) -> Optional[int]:
        if any(s.cold_moved is None for s in self.steps):
            return None
        return sum(s.cold_moved for s in self.steps)  # type: ignore[misc]

    @property
    def mean_period_ratio(self) -> Optional[float]:
        ratios = [s.period_ratio for s in self.steps]
        ratios = [r for r in ratios if r is not None]
        if not ratios:
            return None
        return float(sum(ratios) / len(ratios))

    @property
    def max_period_ratio(self) -> Optional[float]:
        ratios = [s.period_ratio for s in self.steps if s.period_ratio is not None]
        return float(max(ratios)) if ratios else None

    @property
    def move_ratio(self) -> Optional[float]:
        cold = self.total_cold_moves
        if cold is None or cold == 0:
            return None
        return self.total_warm_moves / cold

    def aggregates(self) -> Dict[str, object]:
        return {
            "events": len(self.steps),
            "total_warm_moves": self.total_warm_moves,
            "total_cold_moves": self.total_cold_moves,
            "move_ratio": self.move_ratio,
            "mean_period_ratio": self.mean_period_ratio,
            "max_period_ratio": self.max_period_ratio,
            "total_migration_cost": str(
                sum((s.migration_cost for s in self.steps), ZERO)
            ),
            "warm_wall_ms": round(
                sum(s.warm_wall for s in self.steps) * 1000, 3
            ),
            "cold_wall_ms": round(
                sum(s.cold_wall or 0.0 for s in self.steps) * 1000, 3
            ),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "aggregates": self.aggregates(),
            "timeline": [s.as_dict() for s in self.steps],
        }

    def summary_table(self) -> str:
        """The human timeline (``repro replay`` prints this)."""
        from ..analysis import text_table

        rows = []
        for s in self.steps:
            ratio = s.period_ratio
            rows.append([
                str(s.index),
                str(s.event.time),
                s.event.label(),
                str(s.applications),
                f"{float(s.warm_period):.4g}",
                (
                    f"{float(s.warm_utilisation):.3f}"
                    if s.warm_utilisation is not None
                    else "-"
                ),
                "yes" if s.warm_feasible else "NO",
                str(s.warm_moved + s.warm_forced),
                str(s.cold_moved) if s.cold_moved is not None else "-",
                f"{float(ratio):.3f}" if ratio is not None else "-",
                f"{s.warm_wall * 1000:.1f}",
                f"{s.cold_wall * 1000:.1f}" if s.cold_wall is not None else "-",
            ])
        return text_table(
            [
                "#", "t", "event", "apps", "period", "util", "feas",
                "moved", "cold mv", "ratio", "warm ms", "cold ms",
            ],
            rows,
        )


def replay(
    trace: ScenarioTrace,
    platform: Platform,
    *,
    budget: Optional[int] = None,
    model: CommModel = CommModel.OVERLAP,
    exactness=None,
    initial: Optional[DynamicState] = None,
    compare_cold: bool = True,
) -> ReplayReport:
    """Run *trace* against *platform*, one :func:`replan` per event.

    Starts from the empty system unless *initial* pins an incumbent.
    With ``compare_cold`` every snapshot is also re-solved from scratch
    (placement memo cleared first, so the cold wall time is honest) and
    the cold side's churn is measured against its own previous mapping.
    """
    state = initial or DynamicState(
        multi=MultiApplication([]),
        platform=platform,
        mapping=_empty_mapping(),
        model=model,
    )
    report = ReplayReport()
    cold_assignment: Dict[str, str] = (
        {svc: state.mapping.server(svc)
         for svc in state.multi.combined_graph.nodes}
        if initial is not None
        else {}
    )
    for index, event in enumerate(trace):
        result: ReplanResult = replan(
            state, event, budget=budget, exactness=exactness
        )
        state = result.state
        readout = state.costs()
        weights = state.multi.weights()
        step = ReplayStep(
            index=index,
            event=event,
            applications=len(state.multi),
            services=state.multi.total_services,
            warm_value=result.value,
            warm_period=readout.system_period(),
            warm_utilisation=(
                readout.max_utilisation() if weights is not None else None
            ),
            warm_feasible=result.feasible,
            warm_moved=len(result.moved),
            warm_forced=len(result.forced),
            migration_cost=result.migration_cost,
            fallback=result.fallback,
            warm_wall=result.wall,
        )
        if compare_cold:
            clear_placement_memo()
            cold_started = _time.perf_counter()
            _value, cold_mapping = cold_solve(
                state.multi, platform, drained=state.drained,
                model=model, exactness=exactness,
            )
            step.cold_wall = _time.perf_counter() - cold_started
            cold_readout = ConcurrentCosts(
                state.multi, platform, cold_mapping, model=model
            )
            step.cold_period = cold_readout.system_period()
            step.cold_feasible = cold_readout.is_feasible()
            new_cold = {
                svc: cold_mapping.server(svc)
                for svc in state.multi.combined_graph.nodes
            }
            step.cold_moved = sum(
                1
                for svc, server in new_cold.items()
                if svc in cold_assignment and cold_assignment[svc] != server
            )
            cold_assignment = new_cold
        report.steps.append(step)
    report.final = state
    return report


def _empty_mapping():
    from ..core import Mapping

    return Mapping.shared({})


__all__ = ["ReplayReport", "ReplayStep", "replay"]
