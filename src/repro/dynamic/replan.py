"""Warm-started bounded repair of an incumbent shared mapping.

A running system holds an *incumbent* — the shared mapping currently
deployed (:class:`DynamicState`).  When an :class:`~repro.dynamic.events.
Event` arrives, :func:`replan` does not re-solve from scratch: it applies
the event to the incumbent, seeds the search from the surviving
assignments, and runs a **bounded repair** — a best-first
reassignment/swap descent priced by the same delta evaluators the static
planner uses (:func:`~repro.optimize.incremental.placement_evaluator`,
which dispatches to :class:`~repro.optimize.incremental.
FullPlacementCosts` on contended topologies, where
:class:`~repro.optimize.incremental.IncrementalSharedCosts` deliberately
raises).  Candidates are scored lexicographically by
``(objective value, total migration cost)``: among equally good moves the
repair prefers the one that ships the least state, where a move's state
is priced as ``ancestor_selectivity * cost`` shipped over the
:meth:`Platform.bandwidth() <repro.core.Platform.bandwidth>` route
between the incumbent and the new server.

**Migration budget.**  ``budget`` bounds the number of *distinct
voluntary* migrations — services that existed before the event and end
up off their incumbent server.  Forced moves (services evacuated off a
drained server) and placements of newly admitted services do not consume
budget: the event leaves no choice there.  A service moved back onto its
incumbent server stops counting.  ``budget=None`` is unlimited,
``budget=0`` allows only the forced moves.

**Feasibility overrides the budget.**  If the repaired mapping violates
a period target (max utilisation > 1) the re-planner falls back to a
cold constrained solve; when that cold solve is feasible, its mapping is
adopted even if it moves more services than the budget allows — a
missed rho target is an SLA breach, extra migrations are not.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..concurrent import ConcurrentApp, ConcurrentCosts, MultiApplication
from ..core import CommModel, CostModel, Exactness, Mapping, Platform
from ..optimize.incremental import placement_evaluator
from ..optimize.placement import greedy_shared_mapping, optimize_shared_mapping
from .events import Event

ZERO = Fraction(0)

#: Ceiling on repair rounds (each round applies one move) — a backstop
#: against pathological plateaus, far above any real repair.
MAX_ROUNDS = 400


@dataclass
class DynamicState:
    """The incumbent: who is running where, and which servers are out."""

    multi: MultiApplication
    platform: Platform
    mapping: Mapping
    model: CommModel = CommModel.OVERLAP
    drained: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        self.drained = frozenset(self.drained)
        unknown = sorted(self.drained - set(self.platform.names))
        if unknown:
            raise ValueError(f"drained servers not on the platform: {unknown}")
        self.mapping.validate_on(self.multi.combined_graph.nodes, self.platform)

    @property
    def allowed_servers(self) -> Tuple[str, ...]:
        return tuple(
            n for n in self.platform.names if n not in self.drained
        )

    def costs(self) -> ConcurrentCosts:
        return ConcurrentCosts(
            self.multi, self.platform, self.mapping, model=self.model
        )

    def objective(self) -> str:
        return (
            "utilisation" if self.multi.weights() is not None else "period"
        )

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot (the serve ``replan`` op's result)."""
        readout = self.costs()
        weights = self.multi.weights()
        util = readout.max_utilisation() if weights is not None else None
        return {
            "applications": list(self.multi.names),
            "services": self.multi.total_services,
            "objective": self.objective(),
            "system_period": str(readout.system_period()),
            "utilisation": str(util) if util is not None else None,
            "feasible": readout.is_feasible(),
            "drained": sorted(self.drained),
            "mapping": dict(self.mapping.items()),
        }


@dataclass
class ReplanResult:
    """One :func:`replan` outcome: the new incumbent plus move accounting.

    ``moved`` are the *voluntary* migrations (surviving services the
    repair chose to relocate), ``forced`` the evacuations off drained
    servers; ``migration_cost`` prices both.  ``fallback`` flags that the
    budget-bounded repair was infeasible and the cold constrained solve
    was adopted instead.  A ``noop`` result carries the incumbent's very
    mapping object — bit-for-bit stability.
    """

    state: DynamicState
    event: Optional[Event]
    value: Fraction
    feasible: bool
    moved: Tuple[str, ...] = ()
    forced: Tuple[str, ...] = ()
    admitted: Tuple[str, ...] = ()
    migration_cost: Fraction = ZERO
    fallback: bool = False
    noop: bool = False
    wall: float = 0.0

    @property
    def mapping(self) -> Mapping:
        return self.state.mapping

    def as_dict(self) -> Dict[str, object]:
        payload = self.state.summary()
        payload.update({
            "event": self.event.as_dict() if self.event is not None else None,
            "value": str(self.value),
            "moved": sorted(self.moved),
            "forced": sorted(self.forced),
            "admitted": sorted(self.admitted),
            "migration_cost": str(self.migration_cost),
            "fallback": self.fallback,
            "noop": self.noop,
            "wall_ms": round(self.wall * 1000, 3),
        })
        return payload


def initial_state(
    problem,
    *,
    platform,
    targets=None,
    model: CommModel = CommModel.OVERLAP,
    exactness=None,
) -> DynamicState:
    """Bootstrap an incumbent by solving the initial snapshot cold.

    *problem*/*platform*/*targets* as in
    :func:`~repro.planner.solve_concurrent` (specs or objects); an empty
    member list bootstraps the empty system every trace can start from.
    """
    from ..planner.concurrent import solve_concurrent

    result = solve_concurrent(
        problem, platform=platform, model=model, targets=targets,
        exactness=exactness,
    )
    return DynamicState(
        multi=result.multi,
        platform=result.platform,
        mapping=result.mapping,
        model=result.model,
    )


def migration_sizes(graph) -> Dict[str, Fraction]:
    """Per-service state size: ``ancestor_selectivity * cost``.

    The proxy for how much state a service ships when it migrates — the
    same platform-independent work volume the LPT seed balances (a
    service's in-flight buffers and operator state scale with the work it
    performs per data set).
    """
    sizes = CostModel(graph)
    return {
        n: sizes.ancestor_selectivity(n) * graph.application.cost(n)
        for n in graph.nodes
    }


def _migration_cost(
    platform: Platform,
    sizes: Dict[str, Fraction],
    baseline: Dict[str, str],
    assignment: Dict[str, str],
) -> Fraction:
    """Total state shipped from incumbent to new servers, route-priced."""
    total = ZERO
    for svc, origin in baseline.items():
        dest = assignment.get(svc)
        if dest is None or dest == origin:
            continue
        total += sizes[svc] / platform.bandwidth(origin, dest)
    return total


def _provably_infeasible(
    sizes: Dict[str, Fraction],
    weights: Dict[str, Fraction],
    platform: Platform,
    allowed: Sequence[str],
) -> bool:
    """Pigeonhole certificate: no mapping onto *allowed* can be feasible.

    ``sum_u speed_u * util_u >= sum_svc w * work_svc`` for every mapping
    (utilisation is at least its compute component), so when total
    weighted work exceeds the allowed servers' total speed, the max
    utilisation exceeds 1 everywhere — the cold-solve fallback cannot
    rescue feasibility and is skipped.
    """
    total_work = sum(
        (sizes[svc] * weights.get(svc, Fraction(1)) for svc in sizes), ZERO
    )
    total_speed = sum((platform.speed(u) for u in allowed), ZERO)
    return total_work > total_speed


def apply_event(
    state: DynamicState, event: Event
) -> Tuple[MultiApplication, FrozenSet[str]]:
    """The pure state transition: (new multi, new drained set).

    Raises ``ValueError`` on impossible transitions (admitting a live
    name, evicting or re-targeting an unknown one, draining servers not
    on the platform, draining everything).
    """
    multi, drained = state.multi, state.drained
    if event.kind == "noop":
        return multi, drained
    if event.kind == "admit":
        if event.app in multi.names:
            raise ValueError(f"application {event.app!r} is already running")
        members = list(multi.members)
        members.append(
            ConcurrentApp(event.app, event.resolve_graph(), event.rho)
        )
        return MultiApplication(members), drained
    if event.kind in ("evict", "load"):
        if event.app not in multi.names:
            raise ValueError(f"no running application named {event.app!r}")
        members = []
        for app in multi.members:
            if app.name == event.app:
                if event.kind == "evict":
                    continue
                members.append(
                    ConcurrentApp(app.name, app.graph, event.rho)
                )
            else:
                members.append(app)
        return MultiApplication(members), drained
    # drain / restore
    unknown = sorted(set(event.servers) - set(state.platform.names))
    if unknown:
        raise ValueError(f"cannot {event.kind} unknown server(s): {unknown}")
    if event.kind == "drain":
        new_drained = drained | set(event.servers)
        if len(new_drained) >= len(state.platform.names):
            raise ValueError(
                "draining every server leaves nowhere to run; restore "
                "something first"
            )
        return multi, frozenset(new_drained)
    return multi, drained - set(event.servers)


def _repair_search(
    graph,
    platform: Platform,
    evaluator,
    allowed: Sequence[str],
    *,
    baseline: Dict[str, str],
    forced: FrozenSet[str],
    sizes: Dict[str, Fraction],
    budget: Optional[int],
    max_rounds: int = MAX_ROUNDS,
) -> None:
    """Best-first bounded repair, mutating *evaluator* in place.

    Each round scans every admissible reassignment and cross-server swap,
    scores the improving ones by ``(value after, total migration cost
    after)`` and applies the lexicographic best; stops when no admissible
    move improves the objective.  Admissible means the move keeps the
    number of distinct voluntary migrations (vs. *baseline*, minus
    *forced*) within *budget* and targets only *allowed* servers.

    With an empty *baseline* and no budget this degenerates to a plain
    constrained local search — the cold-solve path under drains reuses it.
    """
    allowed = tuple(allowed)
    services = sorted(graph.nodes)
    if not services:
        return

    def mig_of(svc: str, dest: str) -> Fraction:
        """State shipped for *svc* sitting on *dest* (0 if at home)."""
        origin = baseline.get(svc)
        if origin is None or origin == dest:
            return ZERO
        return sizes[svc] / platform.bandwidth(origin, dest)

    def vol_of(svc: str, dest: str) -> int:
        """1 if *svc* on *dest* is a voluntary migration, else 0."""
        origin = baseline.get(svc)
        if origin is None or svc in forced:
            return 0
        return 1 if origin != dest else 0

    value = evaluator.value()
    for _round in range(max_rounds):
        assignment = evaluator.assignment
        mig_now = sum(
            (mig_of(svc, assignment[svc]) for svc in baseline), ZERO
        )
        vol_now = sum(vol_of(svc, assignment[svc]) for svc in baseline)
        best = None  # (trial value, migration after, kind, payload)
        for svc in services:
            home = assignment[svc]
            for server in allowed:
                if server == home:
                    continue
                if budget is not None and (
                    vol_now - vol_of(svc, home) + vol_of(svc, server) > budget
                ):
                    continue
                trial_value = evaluator.score_reassign(svc, server)
                if not trial_value < value:
                    continue
                mig = mig_now - mig_of(svc, home) + mig_of(svc, server)
                cand = (trial_value, mig, "reassign", (svc, server))
                if best is None or cand[:2] < best[:2]:
                    best = cand
        if best is None:
            # Swaps are the escape hatch when no single reassignment
            # improves — scanning the O(n^2) pair space every round would
            # dominate the repair wall for nothing.
            for i, a in enumerate(services):
                ha = assignment[a]
                if ha not in allowed:
                    continue
                for b in services[i + 1:]:
                    hb = assignment[b]
                    if ha == hb or hb not in allowed:
                        continue  # same-server swap is a shared-space no-op
                    if budget is not None and (
                        vol_now
                        - vol_of(a, ha) - vol_of(b, hb)
                        + vol_of(a, hb) + vol_of(b, ha)
                        > budget
                    ):
                        continue
                    trial_value = evaluator.score_swap(a, b)
                    if not trial_value < value:
                        continue
                    mig = (
                        mig_now
                        - mig_of(a, ha) - mig_of(b, hb)
                        + mig_of(a, hb) + mig_of(b, ha)
                    )
                    cand = (trial_value, mig, "swap", (a, b))
                    if best is None or cand[:2] < best[:2]:
                        best = cand
        if best is None:
            # Objective-neutral migration clean-up: a service already off
            # its incumbent server may walk home for free (same value,
            # strictly less state shipped).
            for svc, origin in baseline.items():
                if svc in forced or assignment.get(svc, origin) == origin:
                    continue
                if origin not in allowed:
                    continue
                trial_value = evaluator.score_reassign(svc, origin)
                if not value < trial_value:
                    best = (trial_value, ZERO, "reassign", (svc, origin))
                    break
        if best is None:
            break
        _value, _mig, kind, payload = best
        if kind == "reassign":
            evaluator.apply_reassign(*payload)
        else:
            evaluator.apply_swap(*payload)
        value = evaluator.value()


def cold_solve(
    multi: MultiApplication,
    platform: Platform,
    *,
    drained: FrozenSet[str] = frozenset(),
    model: CommModel = CommModel.OVERLAP,
    exactness=None,
) -> Tuple[Fraction, Mapping]:
    """From-scratch constrained solve of one snapshot (no incumbent).

    Without drains this is exactly
    :func:`~repro.optimize.placement.optimize_shared_mapping` (memoised);
    with drains it runs the same greedy-seed + local-search pipeline
    restricted to the allowed servers.
    """
    exactness = Exactness.coerce(exactness)
    graph = multi.combined_graph
    weights = multi.weights()
    if not drained:
        return optimize_shared_mapping(
            graph, model, platform, weights=weights, exactness=exactness
        )
    allowed = tuple(n for n in platform.names if n not in drained)
    if not allowed:
        raise ValueError("every server is drained")
    if not graph.nodes:
        return ZERO, Mapping.shared({})
    seed = greedy_shared_mapping(
        graph, platform, weights=weights, allowed=allowed
    )
    evaluator = placement_evaluator(
        graph, platform, seed, model=model, weights=weights,
        shared=True, exactness=exactness,
    )
    _repair_search(
        graph, platform, evaluator, allowed,
        baseline={}, forced=frozenset(), sizes={}, budget=None,
    )
    value = evaluator.value()
    return Fraction(value), evaluator.mapping()


def _seed_assignment(
    old_assignment: Dict[str, str],
    graph,
    platform: Platform,
    allowed: Sequence[str],
    weights,
    sizes: Dict[str, Fraction],
) -> Tuple[Dict[str, str], Tuple[str, ...], Tuple[str, ...]]:
    """Warm seed: keep survivors, LPT-place newcomers and evacuees.

    Returns ``(assignment, forced, admitted)`` where *forced* are the
    surviving services whose incumbent server is no longer allowed.
    """
    allowed = tuple(allowed)
    order = {name: i for i, name in enumerate(platform.names)}
    weights = weights or {}
    load = {name: ZERO for name in allowed}
    assignment: Dict[str, str] = {}
    displaced = []
    for svc in graph.nodes:
        origin = old_assignment.get(svc)
        if origin is not None and origin in load:
            assignment[svc] = origin
            load[origin] += (
                sizes[svc] * weights.get(svc, 1) / platform.speed(origin)
            )
        else:
            displaced.append(svc)
    forced = tuple(s for s in displaced if s in old_assignment)
    admitted = tuple(s for s in displaced if s not in old_assignment)
    # Heaviest first onto the least-loaded allowed server (LPT against the
    # survivors' existing load), exactly the greedy seed's tie-breaks.
    for svc in sorted(
        displaced,
        key=lambda s: (-(sizes[s] * weights.get(s, 1)), s),
    ):
        best = min(
            allowed,
            key=lambda u: (
                load[u] + sizes[svc] * weights.get(svc, 1) / platform.speed(u),
                order[u],
            ),
        )
        assignment[svc] = best
        load[best] += sizes[svc] * weights.get(svc, 1) / platform.speed(best)
    return assignment, forced, admitted


def replan(
    state: DynamicState,
    event: Optional[Event],
    *,
    budget: Optional[int] = None,
    exactness=None,
    max_rounds: int = MAX_ROUNDS,
) -> ReplanResult:
    """Apply *event* to the incumbent *state* with warm-started repair.

    See the module docstring for the budget and fallback semantics.  A
    ``None`` (or ``noop``) event returns the incumbent bit-for-bit —
    re-planning is event-driven, and no event means no migration.
    """
    started = _time.perf_counter()
    if event is None or event.kind == "noop":
        readout = state.costs()
        weights = state.multi.weights()
        value = (
            readout.max_utilisation()
            if weights is not None
            else readout.system_period()
        )
        return ReplanResult(
            state=state, event=event, value=value,
            feasible=readout.is_feasible(), noop=True,
            wall=_time.perf_counter() - started,
        )

    multi, drained = apply_event(state, event)
    platform = state.platform
    allowed = tuple(n for n in platform.names if n not in drained)
    graph = multi.combined_graph
    weights = multi.weights()
    old_nodes = set(state.multi.combined_graph.nodes)
    baseline = {
        svc: state.mapping.server(svc)
        for svc in graph.nodes
        if svc in old_nodes
    }

    if not graph.nodes:
        new_state = DynamicState(
            multi=multi, platform=platform, mapping=Mapping.shared({}),
            model=state.model, drained=drained,
        )
        return ReplanResult(
            state=new_state, event=event, value=ZERO, feasible=True,
            wall=_time.perf_counter() - started,
        )

    sizes = migration_sizes(graph)
    seed, forced, admitted = _seed_assignment(
        baseline, graph, platform, allowed, weights, sizes
    )
    evaluator = placement_evaluator(
        graph, platform, Mapping.shared(seed), model=state.model,
        weights=weights, shared=True, exactness=Exactness.coerce(exactness),
    )
    _repair_search(
        graph, platform, evaluator, allowed,
        baseline=baseline, forced=frozenset(forced), sizes=sizes,
        budget=budget, max_rounds=max_rounds,
    )
    chosen = evaluator.mapping()

    new_state = DynamicState(
        multi=multi, platform=platform, mapping=chosen,
        model=state.model, drained=drained,
    )
    readout = new_state.costs()
    fallback = False
    if (
        weights is not None
        and not readout.is_feasible()
        and not _provably_infeasible(sizes, weights, platform, allowed)
    ):
        # Feasibility overrides the migration budget: adopt the cold
        # constrained solve whenever it satisfies the targets.
        _cold_value, cold_mapping = cold_solve(
            multi, platform, drained=drained, model=state.model,
            exactness=exactness,
        )
        cold_readout = ConcurrentCosts(
            multi, platform, cold_mapping, model=state.model
        )
        if cold_readout.is_feasible():
            chosen = cold_mapping
            new_state = DynamicState(
                multi=multi, platform=platform, mapping=chosen,
                model=state.model, drained=drained,
            )
            readout = cold_readout
            fallback = True

    final = {svc: chosen.server(svc) for svc in graph.nodes}
    moved = tuple(
        sorted(
            svc
            for svc, origin in baseline.items()
            if final[svc] != origin and svc not in forced
        )
    )
    value = (
        readout.max_utilisation()
        if weights is not None
        else readout.system_period()
    )
    return ReplanResult(
        state=new_state,
        event=event,
        value=value,
        feasible=readout.is_feasible(),
        moved=moved,
        forced=forced,
        admitted=admitted,
        migration_cost=_migration_cost(platform, sizes, baseline, final),
        fallback=fallback,
        wall=_time.perf_counter() - started,
    )


__all__ = [
    "DynamicState",
    "MAX_ROUNDS",
    "ReplanResult",
    "apply_event",
    "cold_solve",
    "initial_state",
    "migration_sizes",
    "replan",
]
