"""Orchestration: given an execution graph, build operation lists."""

from .inorder import (
    CommOrders,
    exact_inorder_period,
    greedy_orders,
    inorder_event_graph,
    inorder_period_for_orders,
    inorder_schedule,
    inorder_schedule_for_orders,
    iter_all_orders,
    order_space_size,
)
from .latency import (
    best_latency_schedule,
    exact_oneport_latency,
    greedy_second_permutation,
    minmax_two_permutations,
    oneport_latency_schedule,
    overlap_latency_layered,
    tree_latency,
    tree_latency_schedule,
)
from .oneport_overlap import (
    b3_oneport_period12_feasible,
    oneport_overlap_period,
    saturated_bipartite_window_feasible,
)
from .outorder import (
    is_certified_optimal,
    outorder_period_bound,
    outorder_schedule,
    repair_schedule,
)
from .overlap import overlap_period_bound, schedule_period_overlap

__all__ = [
    "CommOrders",
    "b3_oneport_period12_feasible",
    "best_latency_schedule",
    "exact_inorder_period",
    "exact_oneport_latency",
    "greedy_orders",
    "greedy_second_permutation",
    "inorder_event_graph",
    "inorder_period_for_orders",
    "inorder_schedule",
    "inorder_schedule_for_orders",
    "is_certified_optimal",
    "iter_all_orders",
    "minmax_two_permutations",
    "oneport_latency_schedule",
    "oneport_overlap_period",
    "order_space_size",
    "outorder_period_bound",
    "outorder_schedule",
    "overlap_latency_layered",
    "overlap_period_bound",
    "repair_schedule",
    "saturated_bipartite_window_feasible",
    "schedule_period_overlap",
    "tree_latency",
    "tree_latency_schedule",
]
