"""Latency orchestration (Section 5 + Appendix D).

Latency concerns a *single* data set, so the overlap/no-overlap distinction
disappears (the paper serialises data sets); what matters is one-port
versus multi-port communications.  This module provides:

* :func:`oneport_latency_schedule` — greedy serialized list scheduling for
  arbitrary execution graphs (valid for all three models);
* :func:`exact_oneport_latency` — branch-and-bound over activity orders
  (the problem is NP-hard, Theorem 3; exact for small graphs);
* :func:`tree_latency` / :func:`tree_latency_schedule` — the paper's
  Algorithm 1 (Proposition 12), ``O(n log n)``, optimal on forests;
* :func:`minmax_two_permutations` — the fork-join inner problem
  ``min over permutations of max_i lambda1(i) + B_i + lambda2(i)``
  (exact + greedy heuristic), the combinatorial heart of Propositions 9-15;
* :func:`overlap_latency_layered` — the bandwidth-sharing window scheduler
  that achieves the multi-port latency 20 on counter-example B.2.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    Mapping,
    OUTPUT,
    Operation,
    OperationList,
    Plan,
    Platform,
    comm_op,
    comp_op,
    is_comm,
)

ZERO = Fraction(0)
ONE = Fraction(1)


# ---------------------------------------------------------------------------
# Operation-level DAG shared by the serialized schedulers
# ---------------------------------------------------------------------------

class _OpDag:
    """Operations, durations, op-level precedence and server incidence."""

    def __init__(
        self,
        graph: ExecutionGraph,
        platform: Optional[Platform] = None,
        mapping: Optional[Mapping] = None,
    ) -> None:
        costs = CostModel(graph, platform, mapping)
        self.costs = costs
        self.graph = graph
        self.ops: List[Operation] = []
        self.duration: Dict[Operation, Fraction] = {}
        self.op_preds: Dict[Operation, List[Operation]] = {}
        self.servers: Dict[Operation, Tuple[str, ...]] = {}
        for node in graph.topological_order:
            in_ops = []
            for p in graph.predecessors(node) or (INPUT,):
                op = comm_op(p, node)
                self.ops.append(op)
                self.duration[op] = costs.comm_time(p, node)
                self.op_preds[op] = [] if p == INPUT else [comp_op(p)]
                self.servers[op] = tuple(s for s in (p, node) if s != INPUT)
                in_ops.append(op)
            cop = comp_op(node)
            self.ops.append(cop)
            self.duration[cop] = costs.ccomp(node)
            self.op_preds[cop] = in_ops
            self.servers[cop] = (node,)
        for node in graph.topological_order:
            for s in graph.successors(node) or (OUTPUT,):
                op = comm_op(node, s)
                if op not in self.duration:
                    self.ops.append(op)
                    self.duration[op] = costs.comm_time(node, s)
                    self.op_preds[op] = [comp_op(node)]
                    self.servers[op] = tuple(x for x in (node, s) if x != OUTPUT)
        self.bottom: Dict[Operation, Fraction] = self._bottom_levels()

    def _bottom_levels(self) -> Dict[Operation, Fraction]:
        """Longest downstream duration chain from each op (inclusive)."""
        op_succs: Dict[Operation, List[Operation]] = {op: [] for op in self.ops}
        for op, preds in self.op_preds.items():
            for p in preds:
                op_succs[p].append(op)
        bottom: Dict[Operation, Fraction] = {}
        # ops were appended respecting precedence order, so reverse works
        for op in reversed(self.ops):
            tail = max((bottom[s] for s in op_succs[op]), default=ZERO)
            bottom[op] = self.duration[op] + tail
        return bottom


def oneport_latency_schedule(
    graph: ExecutionGraph,
    model: CommModel = CommModel.INORDER,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """Greedy serialized (one-port) schedule of a single data set.

    Non-delay list scheduling: repeatedly start the ready operation with
    the earliest possible start time, breaking ties by the longest
    downstream critical path.  The resulting operation list is valid for
    all three models with ``lambda`` equal to the makespan (data sets fully
    serialised, as in the paper's latency discussion).

    Example (matches the paper's hand-built latency-21 schedule)::

        >>> from repro.workloads import fig1_example
        >>> plan = oneport_latency_schedule(fig1_example().graph)
        >>> plan.latency, plan.is_valid()
        (Fraction(21, 1), True)
    """
    dag = _OpDag(graph, platform, mapping)
    unscheduled = set(dag.ops)
    remaining_preds = {op: set(ps) for op, ps in dag.op_preds.items()}
    ready_at: Dict[Operation, Fraction] = {
        op: ZERO for op in dag.ops if not dag.op_preds[op]
    }
    busy: Dict[str, Fraction] = {n: ZERO for n in graph.nodes}
    times: Dict[Operation, Tuple[Fraction, Fraction]] = {}
    while unscheduled:
        best_op: Optional[Operation] = None
        best_start: Fraction = ZERO
        for op, ready in ready_at.items():
            start = ready
            for s in dag.servers[op]:
                if busy[s] > start:
                    start = busy[s]
            if (
                best_op is None
                or start < best_start
                or (
                    start == best_start
                    and (dag.bottom[op], op) > (dag.bottom[best_op], best_op)
                )
            ):
                best_op, best_start = op, start
        assert best_op is not None
        end = best_start + dag.duration[best_op]
        times[best_op] = (best_start, end)
        for s in dag.servers[best_op]:
            busy[s] = end
        unscheduled.remove(best_op)
        del ready_at[best_op]
        for op in list(unscheduled):
            if best_op in remaining_preds[op]:
                remaining_preds[op].discard(best_op)
                if not remaining_preds[op]:
                    ready_at[op] = max(
                        (times[p][1] for p in dag.op_preds[op]), default=ZERO
                    )
    lam = max(e for _, e in times.values())
    return Plan(
        graph,
        OperationList(times, lam=lam),
        model,
        platform=platform,
        mapping=dag.costs.mapping,
    )


def exact_oneport_latency(
    graph: ExecutionGraph,
    *,
    node_limit: int = 2_000_000,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """Optimal one-port latency by branch and bound over activity orders.

    Serial schedule generation enumerates all *active* schedules, one of
    which is optimal for makespan.  Pruning: partial makespan plus the
    largest remaining bottom level.  Exponential (Theorem 3 says NP-hard);
    raises ``RuntimeError`` past *node_limit* states.

    Example (on Figure 1 the greedy serialized schedule is already
    optimal)::

        >>> from repro.workloads import fig1_example
        >>> exact_oneport_latency(fig1_example().graph)
        Fraction(21, 1)
    """
    dag = _OpDag(graph, platform, mapping)
    ops = dag.ops
    n = len(ops)
    idx = {op: i for i, op in enumerate(ops)}
    dur = [dag.duration[op] for op in ops]
    preds = [[idx[p] for p in dag.op_preds[op]] for op in ops]
    bottoms = [dag.bottom[op] for op in ops]
    server_ids = {name: i for i, name in enumerate(graph.nodes)}
    servers = [[server_ids[s] for s in dag.servers[op]] for op in ops]

    greedy = oneport_latency_schedule(graph, platform=platform, mapping=mapping)
    best = [greedy.latency]
    visited = [0]

    def dfs(done_mask: int, finish: List[Fraction], busy: List[Fraction], makespan: Fraction) -> None:
        visited[0] += 1
        if visited[0] > node_limit:
            raise RuntimeError(
                f"exact_oneport_latency exceeded node_limit={node_limit}"
            )
        if done_mask == (1 << n) - 1:
            if makespan < best[0]:
                best[0] = makespan
            return
        candidates = []
        for i in range(n):
            if done_mask & (1 << i):
                continue
            if any(not (done_mask >> p) & 1 for p in preds[i]):
                continue
            ready = max((finish[p] for p in preds[i]), default=ZERO)
            start = ready
            for s in servers[i]:
                if busy[s] > start:
                    start = busy[s]
            lb = max(makespan, start + bottoms[i])
            if lb >= best[0]:
                # Any completion schedules i no earlier than `start`, so the
                # whole subtree is at least `lb`: prune the entire state.
                return
            candidates.append((start, -bottoms[i], i))
        candidates.sort()
        for start, _, i in candidates:
            if max(makespan, start + bottoms[i]) >= best[0]:
                continue  # best improved while iterating siblings
            end = start + dur[i]
            new_finish = list(finish)
            new_finish[i] = end
            new_busy = list(busy)
            for s in servers[i]:
                new_busy[s] = end
            dfs(done_mask | (1 << i), new_finish, new_busy, max(makespan, end))

    dfs(0, [ZERO] * n, [ZERO] * len(server_ids), ZERO)
    return best[0]


# ---------------------------------------------------------------------------
# Trees: Algorithm 1 (Proposition 12)
# ---------------------------------------------------------------------------

def tree_latency(
    graph: ExecutionGraph,
    *,
    include_output: bool = True,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """Optimal latency of a forest execution graph (Algorithm 1).

    For each node, children subtrees are fed in non-increasing order of
    *remaining* latency (subtree latency minus the child's own message
    time — the classic delivery-time exchange argument); the completion is
    ``input + comp + max_i (sends before i + L_(i))``.  On the unit
    platform every message to a child takes the same time, so the order
    degenerates to the paper's "non-increasing subtree latency" and the
    completion to ``max_i (i * msg + L_(i))``.  ``include_output=False``
    reproduces the paper's literal leaf case ``L = c_i`` which ignores the
    exit nodes' output communication; the default accounts for it
    (consistent with the model everywhere else).

    Example (a chain: input + costs + messages, sizes shrinking)::

        >>> from repro import ExecutionGraph, make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> tree_latency(ExecutionGraph.chain(app, ["A", "B"]))
        Fraction(6, 1)
    """
    if not graph.is_forest:
        raise ValueError("tree_latency requires a forest execution graph")
    costs = CostModel(graph, platform, mapping)

    def solve(node: str, src: str) -> Fraction:
        # in-communication + computation (both platform-scaled times)
        base = costs.comm_time(src, node) + costs.ccomp(node)
        children = graph.successors(node)
        if not children:
            out = costs.comm_time(node, OUTPUT)
            return base + (out if include_output else ZERO)
        # Child subtree latencies include their incoming message; each
        # child's receive waits for the sends sequenced before it on the
        # (one-port) sender.  Sequencing by non-increasing remaining
        # latency minimises the max completion.
        subs = sorted(
            ((solve(c, node), costs.comm_time(node, c)) for c in children),
            key=lambda pair: pair[0] - pair[1],
            reverse=True,
        )
        best = ZERO
        sent = ZERO
        for sub, send in subs:
            best = max(best, sent + sub)
            sent += send
        return base + best

    return max(solve(root, INPUT) for root in graph.entry_nodes)


def tree_latency_schedule(
    graph: ExecutionGraph,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """A concrete optimal one-port schedule realising :func:`tree_latency`.

    Example::

        >>> from repro import ExecutionGraph, make_application
        >>> app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        >>> plan = tree_latency_schedule(ExecutionGraph.chain(app, ["A", "B"]))
        >>> plan.latency == tree_latency(plan.graph), plan.is_valid()
        (True, True)
    """
    if not graph.is_forest:
        raise ValueError("tree_latency_schedule requires a forest")
    costs = CostModel(graph, platform, mapping)
    times: Dict[Operation, Tuple[Fraction, Fraction]] = {}

    def remaining(node: str, src: str) -> Fraction:
        """Subtree latency from the start of the ``src -> node`` message."""
        base = costs.comm_time(src, node) + costs.ccomp(node)
        children = graph.successors(node)
        if not children:
            return base + costs.comm_time(node, OUTPUT)
        subs = sorted(
            ((remaining(c, node), costs.comm_time(node, c)) for c in children),
            key=lambda pair: pair[0] - pair[1],
            reverse=True,
        )
        best = ZERO
        sent = ZERO
        for sub, send in subs:
            best = max(best, sent + sub)
            sent += send
        return base + best

    def emit(node: str, t: Fraction, src: str) -> Fraction:
        in_time = costs.comm_time(src, node)
        times[comm_op(src, node)] = (t, t + in_time)
        comp_start = t + in_time
        comp_end = comp_start + costs.ccomp(node)
        times[comp_op(node)] = (comp_start, comp_end)
        children = sorted(
            graph.successors(node),
            key=lambda c: remaining(c, node) - costs.comm_time(node, c),
            reverse=True,
        )
        if not children:
            out = costs.comm_time(node, OUTPUT)
            times[comm_op(node, OUTPUT)] = (comp_end, comp_end + out)
            return comp_end + out
        finish = ZERO
        send_begin = comp_end
        for child in children:
            finish = max(finish, emit(child, send_begin, node))
            send_begin = send_begin + costs.comm_time(node, child)
        return finish

    total = max(emit(root, ZERO, INPUT) for root in graph.entry_nodes)
    return Plan(
        graph,
        OperationList(times, lam=total),
        CommModel.INORDER,
        platform=platform,
        mapping=costs.mapping,
    )


# ---------------------------------------------------------------------------
# Fork-join inner problem (Propositions 9-15)
# ---------------------------------------------------------------------------

def greedy_second_permutation(
    values: Sequence[Fraction], scale: Fraction = ONE
) -> Tuple[Fraction, List[int]]:
    """Given ``v_i``, the permutation ``mu`` minimising ``max v_i + scale*mu(i)``.

    Pair the largest value with the smallest slot (rearrangement argument);
    slots are ``1..n``.  Returns ``(optimal max, mu)`` with ``mu`` 1-based.

    Example::

        >>> from fractions import Fraction
        >>> best, mu = greedy_second_permutation(
        ...     [Fraction(5), Fraction(1), Fraction(3)])
        >>> best, mu                       # 5+1, 1+3, 3+2 -> max is 6
        (Fraction(6, 1), [1, 3, 2])
    """
    n = len(values)
    order = sorted(range(n), key=lambda i: values[i], reverse=True)
    mu = [0] * n
    best: Optional[Fraction] = None
    for slot, i in enumerate(order, start=1):
        mu[i] = slot
        cand = values[i] + scale * slot
        if best is None or cand > best:
            best = cand
    assert best is not None
    return best, mu


def minmax_two_permutations(
    b_values: Sequence[Fraction],
    *,
    second_scale: Fraction = ONE,
    exact: bool = True,
    max_n_exact: int = 9,
) -> Tuple[Fraction, List[int], List[int]]:
    """``min over perms of max_i lambda1(i) + B_i + scale * lambda2(i)``.

    The decision version is exactly RN3DM (the paper's hardness source for
    all latency results).  ``exact=True`` enumerates ``lambda1`` (with the
    optimal greedy ``lambda2`` per choice) for up to *max_n_exact* items;
    otherwise a sort-based heuristic is used.  Permutations are 1-based.
    ``second_scale`` supports the Prop-13 gadget where the join-side slots
    carry the filtered message size.

    Example::

        >>> from fractions import Fraction
        >>> val, l1, l2 = minmax_two_permutations([Fraction(4), Fraction(4)])
        >>> val                            # 4+1+2 or 4+2+1 either way
        Fraction(7, 1)
    """
    b = [Fraction(x) for x in b_values]
    n = len(b)
    if n == 0:
        raise ValueError("empty instance")
    if exact and n <= max_n_exact:
        best_val: Optional[Fraction] = None
        best_l1: List[int] = []
        best_l2: List[int] = []
        for perm in itertools.permutations(range(1, n + 1)):
            vals = [b[i] + perm[i] for i in range(n)]
            cand, mu = greedy_second_permutation(vals, second_scale)
            if best_val is None or cand < best_val:
                best_val, best_l1, best_l2 = cand, list(perm), mu
        assert best_val is not None
        return best_val, best_l1, best_l2
    # Heuristic: biggest B first in both directions.
    order = sorted(range(n), key=lambda i: b[i], reverse=True)
    l1 = [0] * n
    for slot, i in enumerate(order, start=1):
        l1[i] = slot
    vals = [b[i] + l1[i] for i in range(n)]
    val, l2 = greedy_second_permutation(vals, second_scale)
    return val, l1, l2


# ---------------------------------------------------------------------------
# Layered bandwidth-sharing OVERLAP schedule (counter-example B.2)
# ---------------------------------------------------------------------------

def _levels(graph: ExecutionGraph) -> Optional[List[List[str]]]:
    level: Dict[str, int] = {}
    for node in graph.topological_order:
        preds = graph.predecessors(node)
        level[node] = max((level[p] + 1 for p in preds), default=0)
    depth = max(level.values(), default=0)
    for a, b in graph.edges:
        if level[b] != level[a] + 1:
            return None  # not strictly layered
    for x in graph.exit_nodes:
        if level[x] != depth:
            return None
    for e in graph.entry_nodes:
        if level[e] != 0:
            return None
    out: List[List[str]] = [[] for _ in range(depth + 1)]
    for node in graph.topological_order:
        out[level[node]].append(node)
    return out


def overlap_latency_layered(
    graph: ExecutionGraph,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[Plan]:
    """Bandwidth-sharing window schedule for strictly layered graphs.

    All communications between consecutive layers share one window whose
    length is the worst per-server directional load across the cut; every
    message gets the constant ratio ``transfer time / window``.  On
    counter-example B.2 this achieves the multi-port latency 20, which no
    one-port schedule can reach.  Returns ``None`` when the graph is not
    strictly layered.
    """
    layers = _levels(graph)
    if layers is None:
        return None
    costs = CostModel(graph, platform, mapping)
    times: Dict[Operation, Tuple[Fraction, Fraction]] = {}
    t = ZERO
    # input window (each entry message at full bandwidth on its own link)
    for node in layers[0]:
        times[comm_op(INPUT, node)] = (t, t + costs.comm_time(INPUT, node))
    t += max(costs.comm_time(INPUT, node) for node in layers[0])
    for li, layer in enumerate(layers):
        comp_window = max(costs.ccomp(n) for n in layer)
        for node in layer:
            times[comp_op(node)] = (t, t + costs.ccomp(node))
        t += comp_window
        if li + 1 < len(layers):
            window = ZERO
            for node in layer:
                window = max(window, costs.cout(node))
            for node in layers[li + 1]:
                window = max(window, costs.cin(node))
            for node in layer:
                for s in graph.successors(node):
                    times[comm_op(node, s)] = (t, t + window)
            t += window
        else:
            out_window = max(costs.comm_time(n, OUTPUT) for n in layer)
            for node in layer:
                times[comm_op(node, OUTPUT)] = (t, t + costs.comm_time(node, OUTPUT))
            t += out_window
    ol = OperationList(times, lam=t)
    return Plan(
        graph, ol, CommModel.OVERLAP, platform=platform, mapping=costs.mapping
    )


def best_latency_schedule(
    graph: ExecutionGraph,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """Best available OVERLAP latency schedule (window vs serialized).

    Example (Appendix B.2: the layered multi-port schedule reaches 20,
    strictly below every one-port schedule)::

        >>> from repro.workloads import b2_latency_ports
        >>> best_latency_schedule(b2_latency_ports().graph).latency
        Fraction(20, 1)
    """
    serialized = oneport_latency_schedule(
        graph, CommModel.OVERLAP, platform=platform, mapping=mapping
    )
    layered = overlap_latency_layered(graph, platform=platform, mapping=mapping)
    if layered is not None and layered.latency < serialized.latency:
        return layered
    return serialized


__all__ = [
    "best_latency_schedule",
    "exact_oneport_latency",
    "greedy_second_permutation",
    "minmax_two_permutations",
    "oneport_latency_schedule",
    "overlap_latency_layered",
    "tree_latency",
    "tree_latency_schedule",
]
