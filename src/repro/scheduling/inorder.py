"""INORDER orchestration: communication orders + maximum cycle ratio.

Under the INORDER model each server is a strictly cyclic machine: it
receives the incoming messages of data set ``n`` one after the other (in a
fixed order), computes, sends the outgoing messages (in a fixed order), and
only then starts data set ``n + 1``.  Once the per-server communication
*orders* are fixed, the whole steady-state schedule is captured by a
uniform constraint graph:

* consecutive operations of a server's cycle are chained with height-0
  edges weighted by the earlier operation's duration;
* the server's last operation is linked back to its first with a height-1
  edge (data set ``n + 1`` starts after data set ``n`` finishes — this is
  exactly constraint (1) of Appendix A);
* a communication is a *single event* shared by the sender's and the
  receiver's cycles (communications are synchronous), which couples the
  cycles of communicating servers.

The optimal period for the given orders is then the maximum cycle ratio of
this event graph (:mod:`repro.cyclic.mcr`), and earliest event times at
that period yield a concrete operation list.  On the paper's Section-2.3
example the best orders give the fractional optimum ``23/3``.

Choosing the orders is the NP-hard part (Theorem 1); we provide exhaustive
enumeration for small instances and a critical-path heuristic for the rest.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    Mapping,
    OUTPUT,
    Operation,
    OperationList,
    Plan,
    Platform,
    comm_op,
    comp_op,
)
from ..cyclic import (
    EventGraph,
    InfeasibleScheduleError,
    earliest_times,
    minimum_period,
)

ZERO = Fraction(0)


@dataclass(frozen=True)
class CommOrders:
    """Per-server communication orders.

    ``incoming[k]`` lists the sources feeding ``k`` (``INPUT`` for entry
    nodes) in reception order; ``outgoing[k]`` lists the destinations
    (``OUTPUT`` for exit nodes) in emission order.
    """

    incoming: Mapping[str, Tuple[str, ...]]
    outgoing: Mapping[str, Tuple[str, ...]]

    @staticmethod
    def canonical(graph: ExecutionGraph) -> "CommOrders":
        """Orders following the graph's stored (sorted) adjacency."""
        incoming = {
            k: tuple(graph.predecessors(k)) or (INPUT,) for k in graph.nodes
        }
        outgoing = {
            k: tuple(graph.successors(k)) or (OUTPUT,) for k in graph.nodes
        }
        return CommOrders(incoming, outgoing)


def _durations(costs: CostModel) -> Dict[Operation, Fraction]:
    graph = costs.graph
    dur: Dict[Operation, Fraction] = {}
    for node in graph.nodes:
        dur[comp_op(node)] = costs.ccomp(node)
    for a, b in costs.comm_edges():
        dur[comm_op(a, b)] = costs.comm_time(a, b)
    return dur


def server_sequence(node: str, orders: CommOrders) -> List[Operation]:
    """The cyclic operation sequence of server *node* under *orders*."""
    seq: List[Operation] = [comm_op(p, node) for p in orders.incoming[node]]
    seq.append(comp_op(node))
    seq.extend(comm_op(node, s) for s in orders.outgoing[node])
    return seq


def inorder_event_graph(
    graph: ExecutionGraph,
    orders: Optional[CommOrders] = None,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> EventGraph:
    """Uniform constraint graph of the INORDER steady state."""
    if orders is None:
        orders = CommOrders.canonical(graph)
    costs = CostModel(graph, platform, mapping)
    dur = _durations(costs)
    eg = EventGraph()
    for node in graph.nodes:
        seq = server_sequence(node, orders)
        for a, b in zip(seq, seq[1:]):
            eg.add_constraint(a, b, dur[a], height=0)
        eg.add_constraint(seq[-1], seq[0], dur[seq[-1]], height=1)
    return eg


def inorder_period_for_orders(
    graph: ExecutionGraph,
    orders: CommOrders,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """Optimal INORDER period for fixed communication orders (exact, MCR).

    Example (on the Figure-1 graph the critical-path greedy orders reach
    the overall optimum 23/3; the canonical sorted orders only reach 9)::

        >>> from repro.workloads import fig1_example
        >>> graph = fig1_example().graph
        >>> inorder_period_for_orders(graph, greedy_orders(graph))
        Fraction(23, 3)
        >>> inorder_period_for_orders(graph, CommOrders.canonical(graph))
        Fraction(9, 1)
    """
    eg = inorder_event_graph(graph, orders, platform=platform, mapping=mapping)
    return minimum_period(eg)


def inorder_schedule_for_orders(
    graph: ExecutionGraph,
    orders: CommOrders,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """Concrete operation list at the orders' optimal period.

    Example::

        >>> from repro.workloads import fig1_example
        >>> graph = fig1_example().graph
        >>> plan = inorder_schedule_for_orders(graph, greedy_orders(graph))
        >>> plan.period, plan.is_valid()
        (Fraction(23, 3), True)
    """
    costs = CostModel(graph, platform, mapping)
    dur = _durations(costs)
    eg = inorder_event_graph(graph, orders, platform=platform, mapping=mapping)
    lam = minimum_period(eg)
    begins = earliest_times(eg, lam)
    times = {op: (b, b + dur[op]) for op, b in begins.items()}
    ol = OperationList(times, lam=lam)
    return Plan(graph, ol, CommModel.INORDER, platform=platform, mapping=costs.mapping)


# ---------------------------------------------------------------------------
# Order selection
# ---------------------------------------------------------------------------

def greedy_orders(
    graph: ExecutionGraph,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    costs: Optional[CostModel] = None,
) -> CommOrders:
    """Critical-path heuristic orders.

    Outgoing messages are sent to the successor with the longest remaining
    downstream work first (feeding the critical path early); incoming
    messages are received from the earliest-available producer first.
    Pass a prebuilt *costs* (for the same graph/platform/mapping) to skip
    rebuilding the cost model.
    """
    if costs is None:
        costs = CostModel(graph, platform, mapping)
    # downstream[k]: longest (comp + comm) path from the start of k's
    # computation to the end of the final output communication.
    downstream: Dict[str, Fraction] = {}
    for node in reversed(graph.topological_order):
        succs = graph.successors(node)
        if succs:
            tail = max(costs.comm_time(node, s) + downstream[s] for s in succs)
        else:
            tail = costs.comm_time(node, OUTPUT)
        downstream[node] = costs.ccomp(node) + tail
    # upstream[k]: longest path from time 0 to the end of k's computation.
    upstream: Dict[str, Fraction] = {}
    for node in graph.topological_order:
        preds = graph.predecessors(node)
        if preds:
            head = max(upstream[p] + costs.comm_time(p, node) for p in preds)
        else:
            head = costs.comm_time(INPUT, node)
        upstream[node] = head + costs.ccomp(node)

    incoming: Dict[str, Tuple[str, ...]] = {}
    outgoing: Dict[str, Tuple[str, ...]] = {}
    for node in graph.nodes:
        preds = list(graph.predecessors(node))
        if preds:
            preds.sort(key=lambda p: (upstream[p], p))
            incoming[node] = tuple(preds)
        else:
            incoming[node] = (INPUT,)
        succs = list(graph.successors(node))
        if succs:
            succs.sort(key=lambda s: (-downstream[s], s))
            outgoing[node] = tuple(succs)
        else:
            outgoing[node] = (OUTPUT,)
    return CommOrders(incoming, outgoing)


def iter_all_orders(graph: ExecutionGraph) -> Iterator[CommOrders]:
    """All per-server order combinations (exponential; small graphs only)."""
    nodes = list(graph.nodes)
    in_perm_lists: List[List[Tuple[str, ...]]] = []
    out_perm_lists: List[List[Tuple[str, ...]]] = []
    for node in nodes:
        preds = graph.predecessors(node) or (INPUT,)
        succs = graph.successors(node) or (OUTPUT,)
        in_perm_lists.append([tuple(p) for p in itertools.permutations(preds)])
        out_perm_lists.append([tuple(s) for s in itertools.permutations(succs)])
    for in_combo in itertools.product(*in_perm_lists):
        for out_combo in itertools.product(*out_perm_lists):
            yield CommOrders(
                dict(zip(nodes, in_combo)), dict(zip(nodes, out_combo))
            )


def order_space_size(graph: ExecutionGraph) -> int:
    """Number of order combinations :func:`iter_all_orders` would yield.

    Example::

        >>> from repro.workloads import fig1_example
        >>> order_space_size(fig1_example().graph)   # C1 and C5 have degree 2
        4
    """
    total = 1
    for node in graph.nodes:
        total *= math.factorial(max(1, len(graph.predecessors(node))))
        total *= math.factorial(max(1, len(graph.successors(node))))
    return total


def _serialized_fallback(
    graph: ExecutionGraph,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """A trivially valid INORDER plan: one data set at a time.

    The greedy serialized latency schedule with ``lambda = makespan``
    satisfies every INORDER constraint (all operations live in one period
    window).  Used when chosen communication orders deadlock.
    """
    from .latency import oneport_latency_schedule

    plan = oneport_latency_schedule(
        graph, CommModel.INORDER, platform=platform, mapping=mapping
    )
    return plan


def exact_inorder_period(
    graph: ExecutionGraph,
    *,
    max_configs: int = 100_000,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Tuple[Fraction, Plan]:
    """Optimal INORDER orchestration by exhaustive order enumeration.

    Exact but exponential in the in/out degrees (the problem is NP-hard,
    Theorem 1); guarded by *max_configs*.  Order combinations that deadlock
    (rendezvous cycles: a positive height-0 constraint cycle) are skipped —
    they admit no schedule at any period.

    Example (the paper's "surprising" fractional optimum, above the
    lower bound of 7; the facade path is ``solve(graph, model="inorder",
    method="exhaustive")``)::

        >>> from repro.workloads import fig1_example
        >>> lam, plan = exact_inorder_period(fig1_example().graph)
        >>> lam, plan.is_valid()
        (Fraction(23, 3), True)
    """
    space = order_space_size(graph)
    if space > max_configs:
        raise ValueError(
            f"order space has {space} configurations (> max_configs="
            f"{max_configs}); use inorder_schedule() for the heuristic"
        )
    best_lam: Optional[Fraction] = None
    best_orders: Optional[CommOrders] = None
    floor = CostModel(graph, platform, mapping).period_lower_bound(CommModel.INORDER)
    for orders in iter_all_orders(graph):
        try:
            lam = inorder_period_for_orders(
                graph, orders, platform=platform, mapping=mapping
            )
        except InfeasibleScheduleError:
            continue
        if best_lam is None or lam < best_lam:
            best_lam, best_orders = lam, orders
            if lam == floor:
                break  # cannot do better than the lower bound
    if best_orders is None:  # every ordering deadlocked (not expected)
        plan = _serialized_fallback(graph, platform, mapping)
        return plan.period, plan
    return best_lam, inorder_schedule_for_orders(
        graph, best_orders, platform=platform, mapping=mapping
    )


def inorder_schedule(
    graph: ExecutionGraph,
    *,
    exact_threshold: int = 5_000,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """Best-effort INORDER orchestration.

    Uses exhaustive order search when the order space is small, the greedy
    critical-path orders otherwise; falls back to a fully serialized
    schedule if the heuristic orders deadlock.

    Example (what ``solve(graph, model="inorder")`` runs)::

        >>> from repro.workloads import fig1_example
        >>> inorder_schedule(fig1_example().graph).period
        Fraction(23, 3)
    """
    if order_space_size(graph) <= exact_threshold:
        _, plan = exact_inorder_period(
            graph, max_configs=exact_threshold, platform=platform, mapping=mapping
        )
        return plan
    try:
        return inorder_schedule_for_orders(
            graph,
            greedy_orders(graph, platform=platform, mapping=mapping),
            platform=platform,
            mapping=mapping,
        )
    except InfeasibleScheduleError:
        return _serialized_fallback(graph, platform, mapping)


__all__ = [
    "CommOrders",
    "exact_inorder_period",
    "greedy_orders",
    "inorder_event_graph",
    "inorder_period_for_orders",
    "inorder_schedule",
    "inorder_schedule_for_orders",
    "iter_all_orders",
    "order_space_size",
    "server_sequence",
]
