"""OUTORDER orchestration: out-of-order one-port schedules.

The OUTORDER model keeps the one-port / no-overlap server discipline but
lets a server interleave operations of *different* data sets — e.g. receive
data set ``n + 1`` while it still has to forward data set ``n``.  Finding
the optimal operation list is NP-hard (Theorem 1, Proposition 2); this
module provides:

* the lower bound ``max_k (Cin + Ccomp + Cout)``;
* a *repair* scheduler: wrap the greedy single-data-set schedule modulo a
  candidate period and push operations forward (cyclically) until all
  modular conflicts disappear — this recovers the paper's optimal
  period-7 schedule on the Section-2.3 example;
* fallback to the INORDER orchestration (every INORDER operation list is
  OUTORDER-valid), so the result is never worse than INORDER.

When the achieved period equals the lower bound the schedule is *certified
optimal* (as in the Section-2.3 example: 7 = 2 + 4 + 1 on server C5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    Mapping,
    OUTPUT,
    Operation,
    OperationList,
    Plan,
    Platform,
    comm_op,
    comp_op,
    modular_residue,
    validate,
)
from .inorder import inorder_schedule
from .latency import oneport_latency_schedule

ZERO = Fraction(0)


def outorder_period_bound(
    graph: ExecutionGraph,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """``max_k (Cin + Ccomp + Cout)`` — the OUTORDER period lower bound.

    Example (Figure 1: every server works ``1 + 4 + 2`` or less)::

        >>> from repro.workloads import fig1_example
        >>> outorder_period_bound(fig1_example().graph)
        Fraction(7, 1)
    """
    return CostModel(graph, platform, mapping).period_lower_bound(CommModel.OUTORDER)


def _server_ops(graph: ExecutionGraph) -> Dict[str, List[Operation]]:
    out: Dict[str, List[Operation]] = {}
    for node in graph.nodes:
        ops: List[Operation] = [
            comm_op(p, node) for p in (graph.predecessors(node) or (INPUT,))
        ]
        ops.append(comp_op(node))
        ops.extend(comm_op(node, s) for s in (graph.successors(node) or (OUTPUT,)))
        out[node] = ops
    return out


def _propagate_precedence(
    graph: ExecutionGraph,
    begins: Dict[Operation, Fraction],
    durations: Dict[Operation, Fraction],
) -> None:
    """Push begins forward so data-set-0 precedence holds (in place)."""
    for node in graph.topological_order:
        cop = comp_op(node)
        for p in graph.predecessors(node) or (INPUT,):
            op = comm_op(p, node)
            if p != INPUT:
                src = comp_op(p)
                begins[op] = max(begins[op], begins[src] + durations[src])
            begins[cop] = max(begins[cop], begins[op] + durations[op])
        for s in graph.successors(node) or (OUTPUT,):
            op = comm_op(node, s)
            begins[op] = max(begins[op], begins[cop] + durations[cop])


def _find_conflict(
    server_ops: Dict[str, List[Operation]],
    begins: Dict[Operation, Fraction],
    durations: Dict[Operation, Fraction],
    lam: Fraction,
) -> Optional[Tuple[Operation, Operation]]:
    """First pair of operations overlapping modulo *lam*, or ``None``."""
    for node, ops in server_ops.items():
        for i in range(len(ops)):
            a = ops[i]
            da = durations[a]
            if da == 0:
                continue
            for j in range(i + 1, len(ops)):
                b = ops[j]
                db = durations[b]
                if db == 0:
                    continue
                gap = modular_residue(begins[b] - begins[a], lam)
                if gap < da or modular_residue(-gap, lam) < db:
                    return a, b
    return None


def _clearing_delay(
    keep_begin: Fraction,
    keep_dur: Fraction,
    push_begin: Fraction,
    lam: Fraction,
) -> Fraction:
    """Minimal forward shift placing *push* right after *keep*'s occurrence.

    Returns 0 when the two operations cannot coexist at this period at all
    (their durations exceed ``lam`` together).
    """
    return modular_residue(keep_dur - (push_begin - keep_begin), lam)


def repair_schedule(
    graph: ExecutionGraph,
    base: OperationList,
    lam: Fraction,
    *,
    max_rounds: int = 2000,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Optional[OperationList]:
    """Wrap *base* at period *lam*, resolving modular conflicts by search.

    Depth-first search: at every conflict, either participant may be pushed
    forward (cyclically) to just clear the other, followed by data-set-0
    precedence propagation.  States are pruned on repeated residue
    signatures; *max_rounds* caps the total number of expansions.  Returns
    a validated OUTORDER operation list or ``None``.
    """
    durations: Dict[Operation, Fraction] = {}
    for op in base.operations():
        durations[op] = base.duration(op)
        if durations[op] > lam:
            return None  # an operation longer than the period can never fit
    server_ops = _server_ops(graph)
    ops_order = sorted(base.operations())
    visited: set = set()
    budget = [max_rounds]

    def signature(begins: Dict[Operation, Fraction]) -> Tuple:
        return tuple(modular_residue(begins[op], lam) for op in ops_order)

    def dfs(
        begins: Dict[Operation, Fraction], depth: int = 0
    ) -> Optional[OperationList]:
        if budget[0] <= 0 or depth > 200:
            return None
        budget[0] -= 1
        _propagate_precedence(graph, begins, durations)
        sig = signature(begins)
        if sig in visited:
            return None
        visited.add(sig)
        conflict = _find_conflict(server_ops, begins, durations, lam)
        if conflict is None:
            ol = OperationList(
                {op: (b, b + durations[op]) for op, b in begins.items()}, lam=lam
            )
            if validate(
                graph, ol, CommModel.OUTORDER, platform=platform, mapping=mapping
            ).ok:
                return ol
            return None
        a, b = conflict
        # Prefer pushing communications over computations (cheap to move),
        # then the operation with the later begin.
        choices = sorted(
            ((a, b), (b, a)),
            key=lambda pair: (pair[1][0] != "comm", -begins[pair[1]]),
        )
        for keep, push in choices:
            delay = _clearing_delay(
                begins[keep], durations[keep], begins[push], lam
            )
            if delay == 0:
                continue  # cannot coexist at this period
            child = dict(begins)
            child[push] = child[push] + delay
            result = dfs(child, depth + 1)
            if result is not None:
                return result
        return None

    return dfs({op: base.begin(op) for op in base.operations()})


def outorder_schedule(
    graph: ExecutionGraph,
    *,
    n_candidates: int = 8,
    max_rounds: int = 500,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    costs: Optional[CostModel] = None,
) -> Plan:
    """Best-effort OUTORDER orchestration (lower bound first, then repair).

    Tries the repair scheduler at the lower bound and at a few periods
    interpolated towards the INORDER optimum; falls back to the INORDER
    operation list (always OUTORDER-valid).

    Example (out-of-order interleaving beats INORDER's 23/3 on Figure 1
    and meets the bound of 7; facade: ``solve(graph, model="outorder")``)::

        >>> from repro.workloads import fig1_example
        >>> plan = outorder_schedule(fig1_example().graph)
        >>> plan.period, is_certified_optimal(plan)
        (Fraction(7, 1), True)
    """
    if costs is None:
        costs = CostModel(graph, platform, mapping)
    lb = costs.period_lower_bound(CommModel.OUTORDER)
    inorder_plan = inorder_schedule(graph, platform=platform, mapping=mapping)
    fallback = Plan(
        graph,
        inorder_plan.operation_list,
        CommModel.OUTORDER,
        platform=platform,
        mapping=inorder_plan.mapping,
    )
    if inorder_plan.period == lb:
        return fallback
    base = oneport_latency_schedule(
        graph, platform=platform, mapping=mapping
    ).operation_list
    candidates: List[Fraction] = [lb]
    span = inorder_plan.period - lb
    for k in range(1, n_candidates):
        candidates.append(lb + span * k / n_candidates)
    for lam in candidates:
        repaired = repair_schedule(
            graph, base, lam, max_rounds=max_rounds, platform=platform, mapping=mapping
        )
        if repaired is not None:
            return Plan(
                graph,
                repaired,
                CommModel.OUTORDER,
                platform=platform,
                mapping=inorder_plan.mapping,
            )
    return fallback


def is_certified_optimal(plan: Plan) -> bool:
    """True when the plan's period meets the OUTORDER lower bound.

    Example::

        >>> from repro.workloads import fig1_example
        >>> is_certified_optimal(outorder_schedule(fig1_example().graph))
        True
    """
    return plan.period == outorder_period_bound(plan.graph, plan.platform, plan.mapping)


__all__ = [
    "is_certified_optimal",
    "outorder_period_bound",
    "outorder_schedule",
    "repair_schedule",
]
