"""One-port-with-overlap analysis tools for the Section-3 counter-examples.

Appendix B.2 and B.3 compare *multi-port* against *one-port*
communications while keeping computation/communication overlap.  In that
hybrid discipline each server owns a full-duplex pair of ports: at most
one incoming and at most one outgoing communication at a time, while
computations proceed independently.

This module provides

* :func:`oneport_overlap_period` — an achievable one-port-overlap period
  via the event-graph/MCR machinery (each port processes its messages in a
  fixed cyclic order); an *upper bound* on the optimal one-port period;
* :func:`saturated_bipartite_window_feasible` — the exact decision
  procedure behind counter-example B.2's latency claim: can all cross
  communications of a saturated bipartite cut be packed, one-port, into a
  window equal to the per-port load?  Completeness follows the paper's own
  argument: in such a window no port may idle, so message begins are the
  (integral) prefix sums of each port's order;
* :func:`b3_oneport_period12_feasible` — the exact decision procedure
  behind B.3's period claim: a period-12 one-port steady state forces the
  saturated ports (senders C1, C2, C3 and receivers C5, C6, C7) to run
  back-to-back; we enumerate all cyclic orders, propagate the implied
  begin times, and check the arithmetic-progression structure the
  saturated senders require plus the remaining slack placements.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    OUTPUT,
    comm_op,
    comp_op,
    modular_residue,
)
from ..cyclic import EventGraph, minimum_period
from .inorder import CommOrders, greedy_orders

ZERO = Fraction(0)


def oneport_overlap_event_graph(
    graph: ExecutionGraph,
    orders: Optional[CommOrders] = None,
    *,
    costs: Optional[CostModel] = None,
) -> EventGraph:
    """Event graph where each server has separate send and receive ports.

    Computation overlaps communications; it only keeps its data-set
    precedence (after all receives, before all sends) and must not overlap
    itself across periods (a height-1 self-loop).
    """
    if costs is None:
        costs = CostModel(graph)
    if orders is None:
        orders = greedy_orders(graph, costs=costs)
    eg = EventGraph()
    for node in graph.nodes:
        cop = comp_op(node)
        eg.add_constraint(cop, cop, costs.ccomp(node), height=1)
        in_ops = [comm_op(p, node) for p in orders.incoming[node]]
        out_ops = [comm_op(node, s) for s in orders.outgoing[node]]
        for op in in_ops:
            eg.add_constraint(op, cop, costs.message_size(op[1], node), height=0)
        for op in out_ops:
            eg.add_constraint(cop, op, costs.ccomp(node), height=0)
        for seq in (in_ops, out_ops):
            if not seq:
                continue
            for a, b in zip(seq, seq[1:]):
                eg.add_constraint(a, b, _dur(costs, a), height=0)
            eg.add_constraint(seq[-1], seq[0], _dur(costs, seq[-1]), height=1)
    return eg


def _dur(costs: CostModel, op) -> Fraction:
    _, src, dst = op
    return costs.message_size(src, dst)


def oneport_overlap_period(
    graph: ExecutionGraph,
    orders: Optional[CommOrders] = None,
    *,
    costs: Optional[CostModel] = None,
) -> Fraction:
    """Achievable one-port-overlap period for the given (or greedy) orders.

    Example (Figure 1 under one-port with overlap: computations hide the
    communications, so the bound ``max(Cin, Ccomp, Cout) = 4`` is met)::

        >>> from repro.workloads import fig1_example
        >>> oneport_overlap_period(fig1_example().graph)
        Fraction(4, 1)
    """
    return minimum_period(oneport_overlap_event_graph(graph, orders, costs=costs))


# ---------------------------------------------------------------------------
# B.2: saturated bipartite window (latency separation)
# ---------------------------------------------------------------------------

def saturated_bipartite_window_feasible(
    graph: ExecutionGraph,
    senders: Sequence[str],
    receivers: Sequence[str],
    *,
    costs: Optional[CostModel] = None,
) -> bool:
    """Can the cut's messages be one-port-scheduled in a load-equal window?

    Requires every sender's total outgoing cut volume and every receiver's
    total incoming cut volume to be equal (the *saturated* case of B.2:
    all loads are 6).  In a window of exactly that length no port may
    idle, so each sender's k-th message starts at ``k * size`` after the
    window opens and each receiver's begins are the prefix sums of its
    chosen order.  We enumerate receiver orders and check each sender's
    required begins are exactly its no-idle slots.
    """
    if costs is None:
        costs = CostModel(graph)
    sender_size = {s: costs.outsize(s) for s in senders}
    load = None
    for s in senders:
        vol = sender_size[s] * len(graph.successors(s))
        if load is None:
            load = vol
        elif vol != load:
            raise ValueError("senders are not uniformly saturated")
    for r in receivers:
        vol = sum(sender_size[p] for p in graph.predecessors(r))
        if vol != load:
            raise ValueError("receivers are not uniformly saturated")
    assert load is not None

    recv_preds: Dict[str, Tuple[str, ...]] = {
        r: graph.predecessors(r) for r in receivers
    }
    # Sender slots: sender s sends m messages, the k-th beginning at k*size.
    slot_sets: Dict[str, Set[Fraction]] = {
        s: {sender_size[s] * k for k in range(len(graph.successors(s)))}
        for s in senders
    }

    receivers = list(receivers)

    def backtrack(i: int, used: Dict[str, Set[Fraction]]) -> bool:
        if i == len(receivers):
            return True
        r = receivers[i]
        preds = recv_preds[r]
        for perm in itertools.permutations(preds):
            t = ZERO
            assignment: List[Tuple[str, Fraction]] = []
            ok = True
            for p in perm:
                if t not in slot_sets[p] or t in used[p]:
                    ok = False
                    break
                assignment.append((p, t))
                t += sender_size[p]
            if not ok:
                continue
            for p, t0 in assignment:
                used[p].add(t0)
            if backtrack(i + 1, used):
                return True
            for p, t0 in assignment:
                used[p].discard(t0)
        return False

    return backtrack(0, {s: set() for s in senders})


def pack_bipartite_window(
    graph: ExecutionGraph,
    senders: Sequence[str],
    receivers: Sequence[str],
    window_start: Fraction,
    window_end: Fraction,
    costs: Optional[CostModel] = None,
) -> Optional[Dict[Tuple[str, str], Fraction]]:
    """One-port packing of the cut's messages into a window (integral grid).

    Backtracking over integer begin times; returns ``{(src, dst): begin}``
    or ``None``.  With slack in the window this finds e.g. the latency-21
    one-port schedule of counter-example B.2 (window [2, 9]).  The integral
    restriction can only miss schedules when message sizes are fractional.
    """
    if costs is None:
        costs = CostModel(graph)
    msgs: List[Tuple[str, str, Fraction]] = []
    recv_set = set(receivers)
    for s in senders:
        for r in graph.successors(s):
            if r in recv_set:
                msgs.append((s, r, costs.outsize(s)))
    # Hardest first: big messages, then busiest endpoints.
    msgs.sort(key=lambda t: (-t[2], t[0], t[1]))
    busy: Dict[str, List[Tuple[Fraction, Fraction]]] = {
        name: [] for name in list(senders) + list(receivers)
    }
    assignment: Dict[Tuple[str, str], Fraction] = {}

    def fits(name: str, b: Fraction, e: Fraction) -> bool:
        return all(e <= b2 or b >= e2 for b2, e2 in busy[name])

    def backtrack(k: int) -> bool:
        if k == len(msgs):
            return True
        s, r, size = msgs[k]
        t = window_start
        while t + size <= window_end:
            if fits(s, t, t + size) and fits(r, t, t + size):
                busy[s].append((t, t + size))
                busy[r].append((t, t + size))
                assignment[(s, r)] = t
                if backtrack(k + 1):
                    return True
                busy[s].pop()
                busy[r].pop()
                del assignment[(s, r)]
            t += 1
        return False

    if backtrack(0):
        return dict(assignment)
    return None


# ---------------------------------------------------------------------------
# B.3: saturated cyclic schedule at period 12 (period separation)
# ---------------------------------------------------------------------------

def _circular_intervals_disjoint(
    intervals: Sequence[Tuple[Fraction, Fraction]], lam: Fraction
) -> bool:
    """Are the cyclic intervals ``[begin, begin+dur)`` pairwise disjoint?"""
    for i in range(len(intervals)):
        b1, d1 = intervals[i]
        for j in range(i + 1, len(intervals)):
            b2, d2 = intervals[j]
            if (
                modular_residue(b2 - b1, lam) < d1
                or modular_residue(b1 - b2, lam) < d2
            ):
                return False
    return True


def _free_slot_exists(
    intervals: Sequence[Tuple[Fraction, Fraction]],
    need: Fraction,
    lam: Fraction,
) -> List[Fraction]:
    """Candidate begins (gap starts) where a *need*-long op fits cyclically."""
    if not intervals:
        return [ZERO]
    pts = sorted((modular_residue(b, lam), d) for b, d in intervals)
    candidates = []
    for k, (b, d) in enumerate(pts):
        end = b + d
        nxt = pts[(k + 1) % len(pts)][0] + (lam if k + 1 == len(pts) else ZERO)
        if nxt - end >= need:
            candidates.append(modular_residue(end, lam))
    return candidates


def b3_oneport_period12_feasible(
    graph: ExecutionGraph, *, costs: Optional[CostModel] = None
) -> bool:
    """Exact feasibility of a one-port period-12 steady state on B.3.

    The saturated send ports (C1, C2, C3) and receive ports (C5, C6, C7)
    leave no idle time, so all begin times are pinned once the cyclic
    orders are chosen: we anchor C1's message to C5 at time 0, enumerate
    C1's slot assignment and the three saturated receivers' cyclic orders,
    derive every other begin, and check that C2's and C3's begins form the
    no-idle arithmetic progressions their saturation requires, and that
    the slack ports (C4 send, C8 receive) admit a consistent placement of
    the remaining messages.
    """
    lam = Fraction(12)
    if costs is None:
        costs = CostModel(graph)
    sizes = {s: costs.outsize(s) for s in ("C1", "C2", "C3", "C4")}
    if sorted(sizes.values()) != [2, 3, 3, 4]:
        raise ValueError("not the B.3 instance")
    sat_receivers = ("C5", "C6", "C7")

    # C1 slots {0, 3, 6, 9}; anchor C5 at slot 0.
    for rest in itertools.permutations(("C6", "C7", "C8")):
        c1_time = {"C5": ZERO}
        for k, r in enumerate(rest, start=1):
            c1_time[r] = Fraction(3) * k
        # Saturated receivers: cyclic order starting at the C1 message.
        for orders in itertools.product(
            itertools.permutations(("C2", "C3", "C4")), repeat=3
        ):
            begin: Dict[Tuple[str, str], Fraction] = {}
            for r, order in zip(sat_receivers, orders):
                t = c1_time[r]
                begin[("C1", r)] = t
                t = modular_residue(t + sizes["C1"], lam)
                for p in order:
                    begin[(p, r)] = t
                    t = modular_residue(t + sizes[p], lam)
            # C2 saturated: begins must be {p, p+3, p+6, p+9} mod 12.
            c2 = sorted(begin[("C2", r)] for r in sat_receivers)
            if len(set(c2)) != 3:
                continue
            res = {modular_residue(x, Fraction(3)) for x in c2}
            if len(res) != 1:
                continue
            c2_slots = {modular_residue(c2[0] + 3 * k, lam) for k in range(4)}
            if not set(c2).issubset(c2_slots):
                continue
            c2_c8 = (c2_slots - set(c2)).pop()
            # C3 saturated with three messages of size 4: {q, q+4, q+8}.
            c3 = {begin[("C3", r)] for r in sat_receivers}
            if len(c3) != 3:
                continue
            q = min(c3)
            if c3 != {q, modular_residue(q + 4, lam), modular_residue(q + 8, lam)}:
                continue
            # C4 (slack sender): three fixed messages + one free (to C8).
            c4_fixed = [(begin[("C4", r)], sizes["C4"]) for r in sat_receivers]
            if not _circular_intervals_disjoint(c4_fixed, lam):
                continue
            c4_candidates = _free_slot_exists(c4_fixed, sizes["C4"], lam)
            # C8 (slack receiver): C1 and C2 messages fixed, C4 free.
            c8_fixed = [
                (c1_time["C8"], sizes["C1"]),
                (c2_c8, sizes["C2"]),
            ]
            if not _circular_intervals_disjoint(c8_fixed, lam):
                continue
            placed = False
            for t in c4_candidates:
                if _circular_intervals_disjoint(
                    c8_fixed + [(t, sizes["C4"])], lam
                ) and _circular_intervals_disjoint(
                    c4_fixed + [(t, sizes["C4"])], lam
                ):
                    placed = True
                    break
            # The C4->C8 message must also clear C8's fixed messages: try
            # candidate slots from C8's perspective as well.
            if not placed:
                for t in _free_slot_exists(c8_fixed, sizes["C4"], lam):
                    if _circular_intervals_disjoint(
                        c4_fixed + [(t, sizes["C4"])], lam
                    ) and _circular_intervals_disjoint(
                        c8_fixed + [(t, sizes["C4"])], lam
                    ):
                        placed = True
                        break
            if placed:
                return True
    return False


__all__ = [
    "b3_oneport_period12_feasible",
    "oneport_overlap_event_graph",
    "oneport_overlap_period",
    "pack_bipartite_window",
    "saturated_bipartite_window_feasible",
]
