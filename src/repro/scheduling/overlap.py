"""Period-optimal orchestration for the OVERLAP model (Theorem 1 / Prop 1).

Given an execution graph, the optimal period equals the lower bound
``T = max_k max(Cin(k), Ccomp(k), Cout(k))`` and is reached by a simple
construction: every communication with full-bandwidth transfer time ``t``
is assigned the constant bandwidth ratio ``t / T`` — it therefore lasts
exactly ``T`` time units — and data set 0 traverses the graph greedily
(each communication starts as soon as the producer's computation finishes;
each computation starts as soon as the last incoming communication
finishes).  On any server the incoming ratios sum to ``Cin(k) / T <= 1``
and the outgoing ratios to ``Cout(k) / T <= 1``, so the multi-port
capacity is never exceeded and the pattern repeats every ``T`` time units
without conflict.

The construction — and hence Theorem 1 — generalises verbatim to
heterogeneous platforms: with ``Cin``/``Ccomp``/``Cout`` already expressed
as *times* (sizes over bandwidths, work over speeds), the same ratio
assignment achieves ``T`` for any server speeds and link bandwidths.

The construction optimises the *period only*; the resulting latency is
inflated (every message is stretched to ``T``).  Latency-oriented OVERLAP
schedules live in :mod:`repro.scheduling.latency`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    Mapping,
    OUTPUT,
    Operation,
    OperationList,
    Plan,
    Platform,
    comm_op,
    comp_op,
)

ZERO = Fraction(0)


def overlap_period_bound(
    graph: ExecutionGraph,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Fraction:
    """The optimal OVERLAP period ``T`` of *graph* (Theorem 1).

    Example (the Section 2.3 instance)::

        >>> from repro.workloads import fig1_example
        >>> overlap_period_bound(fig1_example().graph)
        Fraction(4, 1)
    """
    return CostModel(graph, platform, mapping).period_lower_bound(CommModel.OVERLAP)


def schedule_period_overlap(
    graph: ExecutionGraph,
    period: Optional[Fraction] = None,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
) -> Plan:
    """Build the Theorem-1 operation list achieving the optimal period.

    *period* may stretch the schedule to any value ``>= T`` (useful when a
    caller wants a common period across plans); by default the optimal
    ``T`` is used.

    Example (``solve(graph, model="overlap")`` calls this scheduler)::

        >>> from repro.workloads import fig1_example
        >>> plan = schedule_period_overlap(fig1_example().graph)
        >>> plan.period, plan.is_valid()
        (Fraction(4, 1), True)
    """
    if mapping is not None and not mapping.is_injective:
        raise ValueError(
            "the Theorem-1 construction dedicates one server per service; "
            "shared-server mappings have no concrete scheduler (their "
            "aggregated bound is the repro.concurrent readout)"
        )
    costs = CostModel(graph, platform, mapping)
    T = costs.period_lower_bound(CommModel.OVERLAP)
    if period is not None:
        if period < T:
            raise ValueError(f"period {period} below the optimal bound {T}")
        T = period
    if T <= 0:
        raise ValueError("degenerate instance: optimal period is 0")

    times: Dict[Operation, Tuple[Fraction, Fraction]] = {}
    comp_end: Dict[str, Fraction] = {}
    for node in graph.topological_order:
        preds = graph.predecessors(node)
        if preds:
            ready = ZERO
            for p in preds:
                op = comm_op(p, node)
                begin = comp_end[p]
                times[op] = (begin, begin + T)
                ready = max(ready, begin + T)
        else:
            times[comm_op(INPUT, node)] = (ZERO, T)
            ready = T
        times[comp_op(node)] = (ready, ready + costs.ccomp(node))
        comp_end[node] = ready + costs.ccomp(node)
    for node in graph.exit_nodes:
        begin = comp_end[node]
        times[comm_op(node, OUTPUT)] = (begin, begin + T)

    ol = OperationList(times, lam=T)
    return Plan(graph, ol, CommModel.OVERLAP, platform=platform, mapping=costs.mapping)


__all__ = ["overlap_period_bound", "schedule_period_overlap"]
