"""Bound computations and gap reports for plans and execution graphs."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from ..core import ALL_MODELS, CommModel, CostModel, ExecutionGraph, Plan


@dataclass(frozen=True)
class PeriodBounds:
    """Per-model period lower bounds of one execution graph."""

    overlap: Fraction
    inorder: Fraction
    outorder: Fraction

    @classmethod
    def of(cls, graph: ExecutionGraph) -> "PeriodBounds":
        costs = CostModel(graph)
        return cls(
            overlap=costs.period_lower_bound(CommModel.OVERLAP),
            inorder=costs.period_lower_bound(CommModel.INORDER),
            outorder=costs.period_lower_bound(CommModel.OUTORDER),
        )


def period_gap(plan: Plan) -> Fraction:
    """Relative gap between a plan's period and its model lower bound."""
    lb = CostModel(plan.graph).period_lower_bound(plan.model)
    if lb == 0:
        return Fraction(0)
    return (plan.period - lb) / lb


def latency_gap(plan: Plan) -> Fraction:
    """Relative gap between a plan's latency and the critical-path bound."""
    lb = CostModel(plan.graph).latency_lower_bound()
    if lb == 0:
        return Fraction(0)
    return (plan.latency - lb) / lb


def bound_summary(graph: ExecutionGraph) -> Dict[str, Fraction]:
    """All Section-2 bounds of one graph, keyed for reporting."""
    costs = CostModel(graph)
    return {
        "period_lb_overlap": costs.period_lower_bound(CommModel.OVERLAP),
        "period_lb_oneport": costs.period_lower_bound(CommModel.INORDER),
        "period_lb_comm_only": costs.communication_period_bound(),
        "latency_lb": costs.latency_lower_bound(),
        "total_work": costs.total_work(),
        "total_communication": costs.total_communication(),
    }


__all__ = ["PeriodBounds", "bound_summary", "latency_gap", "period_gap"]
