"""Bounds, the complexity-results table, and reporting utilities."""

from .bounds import PeriodBounds, bound_summary, latency_gap, period_gap
from .complexity import (
    RESULTS,
    SPECIAL_CASES,
    ComplexityResult,
    count_by_complexity,
    render_table,
)
from .reporting import format_value, markdown_table, text_table

__all__ = [
    "ComplexityResult",
    "PeriodBounds",
    "RESULTS",
    "SPECIAL_CASES",
    "bound_summary",
    "count_by_complexity",
    "format_value",
    "latency_gap",
    "markdown_table",
    "period_gap",
    "render_table",
    "text_table",
]
