"""Aligned text tables for benchmark output and EXPERIMENTS.md rows."""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, Fraction]


def format_value(value: Cell, *, digits: int = 4) -> str:
    """Human-readable rendering: exact for small fractions, float otherwise."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        if value.denominator <= 1000:
            return f"{value.numerator}/{value.denominator}"
        return f"{float(value):.{digits}g}"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def text_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Monospace table with per-column alignment (first column left)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([format_value(c) for c in row])
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines = []
    for ri, row in enumerate(rendered):
        cells = [
            row[0].ljust(widths[0]),
            *(row[i].rjust(widths[i]) for i in range(1, len(row))),
        ]
        lines.append("  ".join(cells))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(format_value(c) for c in row) + " |")
    return "\n".join(lines)


__all__ = ["format_value", "markdown_table", "text_table"]
