"""The paper's 12 complexity results as a data structure (its "Table 1").

Three models x two problem layers (orchestration given an execution
graph, and full plan minimisation) x two objectives.  Each entry records
the complexity class, where the paper proves it, and which artefact of
this repository exercises it — a polynomial algorithm or an executable
reduction gadget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core import CommModel


@dataclass(frozen=True)
class ComplexityResult:
    objective: str  # "period" | "latency"
    layer: str  # "orchestration" | "minimization"
    model: CommModel
    complexity: str  # "polynomial" | "NP-hard"
    paper_ref: str
    artefact: str


RESULTS: Tuple[ComplexityResult, ...] = (
    ComplexityResult(
        "period", "orchestration", CommModel.OVERLAP, "polynomial",
        "Theorem 1 / Proposition 1",
        "repro.scheduling.overlap.schedule_period_overlap",
    ),
    ComplexityResult(
        "period", "orchestration", CommModel.OUTORDER, "NP-hard",
        "Theorem 1 / Proposition 2 (Figure 9)",
        "repro.reductions.orchestration_period",
    ),
    ComplexityResult(
        "period", "orchestration", CommModel.INORDER, "NP-hard",
        "Theorem 1 / Proposition 3 (Figure 9)",
        "repro.reductions.orchestration_period",
    ),
    ComplexityResult(
        "period", "minimization", CommModel.OVERLAP, "NP-hard",
        "Theorem 2 / Proposition 5 (Figure 10)",
        "repro.reductions.minperiod_overlap",
    ),
    ComplexityResult(
        "period", "minimization", CommModel.OUTORDER, "NP-hard",
        "Theorem 2 / Proposition 6 (Figure 11)",
        "repro.reductions.minperiod_oneport",
    ),
    ComplexityResult(
        "period", "minimization", CommModel.INORDER, "NP-hard",
        "Theorem 2 / Proposition 7 (Figure 11)",
        "repro.reductions.minperiod_oneport",
    ),
    ComplexityResult(
        "latency", "orchestration", CommModel.OUTORDER, "NP-hard",
        "Theorem 3 / Proposition 9 (Figure 12)",
        "repro.reductions.orchestration_latency",
    ),
    ComplexityResult(
        "latency", "orchestration", CommModel.INORDER, "NP-hard",
        "Theorem 3 / Proposition 10 (Figure 12)",
        "repro.reductions.orchestration_latency",
    ),
    ComplexityResult(
        "latency", "orchestration", CommModel.OVERLAP, "NP-hard",
        "Theorem 3 / Proposition 11 (Figure 12)",
        "repro.reductions.orchestration_latency",
    ),
    ComplexityResult(
        "latency", "minimization", CommModel.OUTORDER, "NP-hard",
        "Theorem 4 / Proposition 13",
        "repro.reductions.minlatency",
    ),
    ComplexityResult(
        "latency", "minimization", CommModel.INORDER, "NP-hard",
        "Theorem 4 / Proposition 14",
        "repro.reductions.minlatency",
    ),
    ComplexityResult(
        "latency", "minimization", CommModel.OVERLAP, "NP-hard",
        "Theorem 4 / Proposition 15",
        "repro.reductions.minlatency",
    ),
)

#: Polynomial special cases (not part of the 12 headline results).
SPECIAL_CASES: Tuple[Tuple[str, str, str], ...] = (
    ("MinPeriod on linear chains, all models", "Proposition 8",
     "repro.optimize.chains.minperiod_chain"),
    ("MinLatency on linear chains, all models", "Proposition 16",
     "repro.optimize.chains.minlatency_chain"),
    ("Latency orchestration on trees", "Proposition 12 (Algorithm 1)",
     "repro.scheduling.latency.tree_latency"),
    ("Optimal MinPeriod plan can be a forest", "Proposition 4",
     "repro.optimize.exhaustive (forest vs DAG search)"),
    ("MinLatency restricted to forests is NP-hard", "Proposition 17",
     "repro.reductions.forest_latency"),
)


def render_table() -> str:
    """The 12-result table as aligned text (regenerated, not hard-coded)."""
    header = f"{'objective':<9} {'layer':<14} {'model':<9} {'complexity':<11} reference"
    lines = [header, "-" * len(header)]
    for r in RESULTS:
        lines.append(
            f"{r.objective:<9} {r.layer:<14} {str(r.model):<9} "
            f"{r.complexity:<11} {r.paper_ref}"
        )
    return "\n".join(lines)


def count_by_complexity() -> Tuple[int, int]:
    """``(n_polynomial, n_np_hard)`` — the paper reports (1, 11)."""
    poly = sum(1 for r in RESULTS if r.complexity == "polynomial")
    return poly, len(RESULTS) - poly


__all__ = [
    "ComplexityResult",
    "RESULTS",
    "SPECIAL_CASES",
    "count_by_complexity",
    "render_table",
]
