"""Periodic (cyclic) scheduling substrate: event graphs + max cycle ratio."""

from .eventgraph import ConstraintEdge, EventGraph
from .mcr import (
    InfeasibleScheduleError,
    brute_force_mcr,
    earliest_times,
    is_feasible,
    minimum_period,
)

__all__ = [
    "ConstraintEdge",
    "EventGraph",
    "InfeasibleScheduleError",
    "brute_force_mcr",
    "earliest_times",
    "is_feasible",
    "minimum_period",
]
