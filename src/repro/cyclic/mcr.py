"""Exact maximum-cycle-ratio solver for uniform constraint graphs.

The constraint system ``t_v >= t_u + w_e - lambda * h_e`` is feasible iff the
graph with arc lengths ``w_e - lambda * h_e`` has no strictly positive cycle.
Hence the minimal feasible period is::

    lambda* = max over directed cycles C of  sum_e w_e / sum_e h_e

with the convention that cycles of total height 0 must satisfy
``sum w <= 0`` (otherwise no period works and the system is infeasible).

The solver uses exact rational *cycle raising*: starting from a lower bound,
repeatedly run a longest-path Bellman–Ford with reduced costs
``w - lambda * h``; every strictly positive cycle found raises ``lambda`` to
that cycle's ratio.  Each iteration pins ``lambda`` to the ratio of an
actual simple cycle, so the loop terminates with the exact maximum ratio —
no floating point, no epsilon.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core.service import Numeric, as_fraction
from .eventgraph import ConstraintEdge, EventGraph

ZERO = Fraction(0)


class InfeasibleScheduleError(ValueError):
    """The constraint graph has a positive cycle of height 0."""


def _find_positive_cycle(
    n: int, edges: List[ConstraintEdge], lam: Fraction
) -> Optional[Tuple[Fraction, int]]:
    """Return ``(sum_w, sum_h)`` of a strictly positive cycle, else ``None``.

    Longest-path Bellman–Ford from a virtual source connected to every
    event with length 0; a relaxation surviving ``n`` full passes exposes a
    positive cycle, which is extracted through the predecessor array.
    """
    if n == 0 or not edges:
        return None
    dist: List[Fraction] = [ZERO] * n
    pred: List[int] = [-1] * n  # index into `edges`
    # Pre-extract hot-loop data; when everything is integral, plain ints
    # make the relaxation passes several times faster than Fractions.
    arcs = [(e.src, e.dst, e.weight - lam * e.height) for e in edges]
    if all(r.denominator == 1 for _, _, r in arcs):
        arcs = [(u, v, int(r)) for u, v, r in arcs]
        dist = [0] * n  # type: ignore[list-item]
    last_pass: List[int] = []
    for _ in range(n):
        last_pass = []
        for ei, (src, dst, reduced) in enumerate(arcs):
            cand = dist[src] + reduced
            if cand > dist[dst]:
                dist[dst] = cand
                pred[dst] = ei
                last_pass.append(dst)
        if not last_pass:
            return None
    # Some node updated in the final pass leads backwards into a cycle of
    # the predecessor graph; every such cycle has strictly positive reduced
    # weight.  Walk with a visited set for robustness.
    for start in last_pass:
        seen: Dict[int, int] = {}
        order: List[int] = []
        node = start
        while node not in seen and pred[node] != -1:
            seen[node] = len(order)
            order.append(node)
            node = edges[pred[node]].src
        if pred[node] == -1 and node not in seen:
            continue  # chain ended without cycling; try another candidate
        # nodes from seen[node] onwards form the cycle
        cycle_nodes = order[seen[node]:]
        cycle_w = ZERO
        cycle_h = 0
        for v in cycle_nodes:
            e = edges[pred[v]]
            cycle_w += e.weight
            cycle_h += e.height
        return cycle_w, cycle_h
    raise AssertionError("relaxation persisted but no cycle was extracted")


def minimum_period(graph: EventGraph, floor: Numeric = 0) -> Fraction:
    """Smallest ``lambda >= floor`` making *graph*'s constraints feasible.

    Raises :class:`InfeasibleScheduleError` when a positive cycle of height
    0 exists (no period can satisfy the constraints).
    """
    lam = as_fraction(floor)
    n = graph.n_events
    edges = graph.edges
    while True:
        found = _find_positive_cycle(n, edges, lam)
        if found is None:
            return lam
        cycle_w, cycle_h = found
        if cycle_h == 0:
            raise InfeasibleScheduleError(
                f"positive cycle of height 0 with total weight {cycle_w}"
            )
        ratio = cycle_w / cycle_h
        if ratio <= lam:  # safety: should be strictly positive progress
            raise AssertionError(
                "cycle raising failed to make progress "
                f"(lambda={lam}, cycle ratio={ratio})"
            )
        lam = ratio


def is_feasible(graph: EventGraph, lam: Numeric) -> bool:
    """Is the constraint system satisfiable at period *lam*?"""
    found = _find_positive_cycle(graph.n_events, graph.edges, as_fraction(lam))
    return found is None


def earliest_times(graph: EventGraph, lam: Numeric) -> Dict[object, Fraction]:
    """Earliest event times at period *lam* (all ``>= 0``), by event label.

    This is the longest path from a virtual time-0 source under reduced
    costs; *lam* must be feasible.
    """
    lam = as_fraction(lam)
    n = graph.n_events
    dist: List[Fraction] = [ZERO] * n
    edges = graph.edges
    for _ in range(n):
        changed = False
        for e in edges:
            cand = dist[e.src] + e.weight - lam * e.height
            if cand > dist[e.dst]:
                dist[e.dst] = cand
                changed = True
        if not changed:
            break
    else:
        if _find_positive_cycle(n, edges, lam) is not None:
            raise InfeasibleScheduleError(f"period {lam} is infeasible")
    return {graph.label(i): dist[i] for i in range(n)}


def brute_force_mcr(graph: EventGraph) -> Optional[Fraction]:
    """Reference implementation: enumerate all simple cycles (tests only).

    Returns the maximum ratio over simple cycles with positive height, or
    ``None`` when the graph has no such cycle.  Raises
    :class:`InfeasibleScheduleError` on a positive cycle of height 0.
    Exponential — only for cross-checking :func:`minimum_period` on small
    random graphs.
    """
    import networkx as nx

    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.n_events))
    for e in graph.edges:
        g.add_edge(e.src, e.dst, weight=e.weight, height=e.height)
    best: Optional[Fraction] = None
    for cycle in nx.simple_cycles(g):
        nodes = list(cycle)
        m = len(nodes)
        # For multigraphs, enumerate parallel-edge choices along the cycle.
        choices: List[List[Tuple[Fraction, int]]] = []
        for i in range(m):
            u, v = nodes[i], nodes[(i + 1) % m]
            opts = [
                (data["weight"], data["height"])
                for data in g.get_edge_data(u, v).values()
            ]
            choices.append(opts)
        import itertools

        for combo in itertools.product(*choices):
            w = sum((c[0] for c in combo), ZERO)
            h = sum(c[1] for c in combo)
            if h == 0:
                if w > 0:
                    raise InfeasibleScheduleError(
                        f"positive cycle of height 0 with total weight {w}"
                    )
                continue
            ratio = w / h
            if best is None or ratio > best:
                best = ratio
    return best


__all__ = [
    "InfeasibleScheduleError",
    "minimum_period",
    "is_feasible",
    "earliest_times",
    "brute_force_mcr",
]
