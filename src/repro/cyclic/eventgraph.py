"""Uniform (cyclic) constraint graphs for periodic scheduling.

A periodic schedule assigns each *event* ``v`` a begin time ``t_v`` for data
set 0, the occurrence for data set ``n`` happening at ``t_v + n * lambda``.
A *uniform constraint* is an edge ``u -> v`` with weight ``w`` and height
``h`` meaning::

    t_v >= t_u + w - lambda * h

i.e. "the occurrence of ``v`` for data set ``n`` starts at least ``w`` time
units after the occurrence of ``u`` for data set ``n - h``".  Height-0 edges
are ordinary precedence constraints inside one data set; height-1 edges link
consecutive data sets (e.g. a server starting its next cycle).

The minimal feasible ``lambda`` is the **maximum cycle ratio**
``max_C sum(w) / sum(h)`` over directed cycles ``C`` — see
:mod:`repro.cyclic.mcr`.  This classical construction (event graphs /
max-plus algebra) is exactly what the paper's Section 2.3 example needs to
produce the optimal INORDER period of ``23/3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.service import Numeric, as_fraction


@dataclass(frozen=True)
class ConstraintEdge:
    """One uniform constraint ``t_v >= t_u + weight - lambda * height``."""

    src: int
    dst: int
    weight: Fraction
    height: int


class EventGraph:
    """A mutable uniform constraint graph over hashable event labels."""

    def __init__(self) -> None:
        self._labels: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self.edges: List[ConstraintEdge] = []

    # -- construction -----------------------------------------------------
    def add_event(self, label: Hashable) -> int:
        """Register *label* (idempotent); returns its dense index."""
        idx = self._index.get(label)
        if idx is None:
            idx = len(self._labels)
            self._index[label] = idx
            self._labels.append(label)
        return idx

    def add_constraint(
        self, src: Hashable, dst: Hashable, weight: Numeric, height: int = 0
    ) -> None:
        """Add ``t_dst >= t_src + weight - lambda * height``."""
        if height < 0:
            raise ValueError(f"height must be >= 0, got {height}")
        u = self.add_event(src)
        v = self.add_event(dst)
        self.edges.append(ConstraintEdge(u, v, as_fraction(weight), height))

    # -- queries ------------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self._labels)

    @property
    def labels(self) -> Tuple[Hashable, ...]:
        return tuple(self._labels)

    def index(self, label: Hashable) -> int:
        return self._index[label]

    def label(self, idx: int) -> Hashable:
        return self._labels[idx]

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventGraph({self.n_events} events, {len(self.edges)} constraints)"


__all__ = ["ConstraintEdge", "EventGraph"]
