"""Seeded synthetic workload generators.

The paper evaluates on abstract service collections; these generators
produce the families its motivation describes (query optimisation over web
services, stream filtering): mixtures of *filters* (``sigma < 1``) and
*expanders* (``sigma >= 1``) with log-uniform-ish costs, random precedence
DAGs, plus structured families (chains, stars, fork-joins, layered
bipartite graphs) used by the benchmarks.

All randomness flows through :class:`numpy.random.Generator` seeded
explicitly; all emitted numbers are exact rationals with bounded
denominators so downstream scheduling stays exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import Application, ExecutionGraph, Link, Platform, Server, make_application

DEFAULT_DENOMINATOR = 16

#: Speed/bandwidth values the platform generator draws from (kept to a
#: small rational menu so downstream arithmetic stays exact and readable).
SPEED_CHOICES = (Fraction(1, 2), Fraction(1), Fraction(2), Fraction(4))
BANDWIDTH_CHOICES = (Fraction(1, 4), Fraction(1, 2), Fraction(1), Fraction(2))


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_services(
    n: int,
    seed=0,
    *,
    filter_fraction: float = 0.6,
    cost_range: Tuple[int, int] = (1, 64),
    denominator: int = DEFAULT_DENOMINATOR,
    prefix: str = "C",
) -> List[Tuple[str, Fraction, Fraction]]:
    """``n`` random ``(name, cost, selectivity)`` triples.

    Costs are drawn log-uniformly over ``cost_range`` (quantised to
    ``1/denominator``); a ``filter_fraction`` share of services get a
    selectivity in ``(0, 1)``, the rest in ``[1, 4)``.
    """
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    lo, hi = cost_range
    if not (0 < lo <= hi):
        raise ValueError(f"invalid cost range {cost_range}")
    out: List[Tuple[str, Fraction, Fraction]] = []
    for i in range(n):
        log_cost = rng.uniform(np.log(lo), np.log(hi))
        cost = Fraction(
            max(1, round(float(np.exp(log_cost)) * denominator)), denominator
        )
        if rng.random() < filter_fraction:
            sel = Fraction(int(rng.integers(1, denominator)), denominator)
        else:
            sel = 1 + Fraction(int(rng.integers(0, 3 * denominator)), denominator)
        out.append((f"{prefix}{i}", cost, sel))
    return out


def random_application(
    n: int,
    seed=0,
    *,
    filter_fraction: float = 0.6,
    cost_range: Tuple[int, int] = (1, 64),
    precedence_density: float = 0.0,
    denominator: int = DEFAULT_DENOMINATOR,
) -> Application:
    """A random application, optionally with random precedence constraints.

    Precedence edges are sampled forward along a random order with the
    given density, guaranteeing acyclicity.
    """
    rng = _rng(seed)
    specs = random_services(
        n,
        rng,
        filter_fraction=filter_fraction,
        cost_range=cost_range,
        denominator=denominator,
    )
    precedence: List[Tuple[str, str]] = []
    if precedence_density > 0:
        order = rng.permutation(n)
        for bi in range(1, n):
            for ai in range(bi):
                if rng.random() < precedence_density:
                    precedence.append(
                        (f"C{order[ai]}", f"C{order[bi]}")
                    )
    return make_application(specs, precedence)


def random_execution_graph(
    app: Application, seed=0, *, density: float = 0.3
) -> ExecutionGraph:
    """A random DAG execution graph over *app*.

    Precedence constraints are always included; random forward edges are
    sampled along a randomised topological order of the precedence graph
    so the result stays acyclic.
    """
    rng = _rng(seed)
    names = list(app.names)
    # Randomised topological order consistent with the precedence edges.
    succs = {n: [] for n in names}
    indeg = {n: 0 for n in names}
    for a, b in app.precedence:
        succs[a].append(b)
        indeg[b] += 1
    ready = [n for n in names if indeg[n] == 0]
    order: List[str] = []
    while ready:
        pick = int(rng.integers(0, len(ready)))
        node = ready.pop(pick)
        order.append(node)
        for nxt in succs[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    edges: List[Tuple[str, str]] = []
    for j in range(1, len(order)):
        for i in range(j):
            if rng.random() < density:
                edges.append((order[i], order[j]))
    base = set(app.precedence)
    return ExecutionGraph(app, base | set(edges))


def random_forest(app: Application, seed=0, *, root_prob: float = 0.3) -> ExecutionGraph:
    """A random forest execution graph (every node has <= 1 predecessor)."""
    rng = _rng(seed)
    if app.precedence:
        raise ValueError("random_forest does not support precedence constraints")
    names = list(app.names)
    order = [names[i] for i in rng.permutation(len(names))]
    parents = {}
    for idx, node in enumerate(order):
        if idx == 0 or rng.random() < root_prob:
            parents[node] = None
        else:
            parents[node] = order[int(rng.integers(0, idx))]
    return ExecutionGraph.from_parents(app, parents)


def random_chain(app: Application, seed=0) -> ExecutionGraph:
    """A uniformly random chain over all services of *app*."""
    rng = _rng(seed)
    if app.precedence:
        raise ValueError("random_chain does not support precedence constraints")
    names = list(app.names)
    order = [names[i] for i in rng.permutation(len(names))]
    return ExecutionGraph.chain(app, order)


def alternating_platform(n: int, *, prefix: str = "S") -> Platform:
    """``n`` servers with speeds cycling 1, 2, 1/2 (deterministic).

    The platform behind the catalog's ``b1het``/``b2het``/``b3het``
    variants and the ``make bench-platform`` table — one definition so the
    benchmarks measure exactly the shipped workloads' platform.
    """
    speeds = [(Fraction(1), Fraction(2), Fraction(1, 2))[i % 3] for i in range(n)]
    return Platform.of(speeds=speeds, prefix=prefix)


def random_platform(
    n: int,
    seed=0,
    *,
    speed_choices: Sequence[Fraction] = SPEED_CHOICES,
    bandwidth_choices: Sequence[Fraction] = BANDWIDTH_CHOICES,
    link_density: float = 0.3,
    prefix: str = "S",
) -> Platform:
    """A random heterogeneous platform: ``n`` servers, sparse link overrides.

    Speeds are drawn uniformly from *speed_choices*; a ``link_density``
    share of server pairs get a bandwidth override from
    *bandwidth_choices* (the rest use the default bandwidth 1).  Fully
    deterministic given *seed*.

    Example::

        >>> p = random_platform(4, seed=1)
        >>> len(p), p.is_unit
        (4, False)
    """
    rng = _rng(seed)
    if n <= 0:
        raise ValueError("n must be positive")
    servers = [
        Server(f"{prefix}{i}", speed_choices[int(rng.integers(0, len(speed_choices)))])
        for i in range(1, n + 1)
    ]
    links = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < link_density:
                bw = bandwidth_choices[int(rng.integers(0, len(bandwidth_choices)))]
                links.append(Link(servers[i].name, servers[j].name, bw))
    return Platform(servers, links)


# ---------------------------------------------------------------------------
# Structured families
# ---------------------------------------------------------------------------

def fork_join_instance(
    n_branches: int,
    seed=0,
    *,
    branch_cost_range: Tuple[int, int] = (1, 32),
) -> Tuple[Application, ExecutionGraph]:
    """A fork-join: one source, ``n_branches`` parallel services, one sink.

    This is the shape of the paper's latency-hardness gadgets (Figure 12).
    """
    rng = _rng(seed)
    specs = [("fork", 1, 1)]
    lo, hi = branch_cost_range
    for i in range(n_branches):
        specs.append((f"B{i}", int(rng.integers(lo, hi + 1)), 1))
    specs.append(("join", 1, 1))
    app = make_application(specs)
    edges = [("fork", f"B{i}") for i in range(n_branches)]
    edges += [(f"B{i}", "join") for i in range(n_branches)]
    return app, ExecutionGraph(app, edges)


def layered_instance(
    widths: Sequence[int],
    seed=0,
    *,
    denominator: int = 8,
) -> Tuple[Application, ExecutionGraph]:
    """A layered graph: every node feeds every node of the next layer."""
    rng = _rng(seed)
    specs: List[Tuple[str, Fraction, Fraction]] = []
    layers: List[List[str]] = []
    for li, width in enumerate(widths):
        layer = []
        for wi in range(width):
            name = f"L{li}N{wi}"
            cost = Fraction(int(rng.integers(1, 4 * denominator)), denominator)
            sel = Fraction(int(rng.integers(1, 2 * denominator)), denominator)
            specs.append((name, cost, sel))
            layer.append(name)
        layers.append(layer)
    app = make_application(specs)
    edges = [
        (a, b)
        for la, lb in zip(layers, layers[1:])
        for a in la
        for b in lb
    ]
    return app, ExecutionGraph(app, edges)


def star_instance(
    n_leaves: int, seed=0, *, hub_selectivity: Fraction = Fraction(1, 2)
) -> Tuple[Application, ExecutionGraph]:
    """One cheap filtering hub feeding ``n_leaves`` expensive services."""
    rng = _rng(seed)
    specs = [("hub", 1, hub_selectivity)]
    specs += [
        (f"S{i}", int(rng.integers(4, 32)), 1 + Fraction(int(rng.integers(0, 8)), 8))
        for i in range(n_leaves)
    ]
    app = make_application(specs)
    return app, ExecutionGraph(app, [("hub", f"S{i}") for i in range(n_leaves)])


__all__ = [
    "alternating_platform",
    "random_services",
    "random_application",
    "random_execution_graph",
    "random_forest",
    "random_chain",
    "random_platform",
    "fork_join_instance",
    "layered_instance",
    "star_instance",
]
