"""Every named instance of the paper, as executable fixtures.

* :func:`fig1_example` — the Section 2.3 example (five services of cost 4,
  selectivity 1) together with the paper's hand-built operation lists:
  the latency-21 schedule, the OVERLAP period-4 schedule, the OUTORDER
  period-7 schedule and the INORDER period-``23/3`` schedule.
* :func:`b1_counterexample` — Appendix B.1 (Figure 4): 202 services showing
  that the communication-free optimal structure (a chain of filters feeding
  all expanders) is no longer optimal once communications are modelled.
* :func:`b2_latency_ports` — Appendix B.2 (Figure 5): 12 services whose
  multi-port latency (20) beats every one-port schedule.
* :func:`b3_period_ports` — Appendix B.3 (Figure 6): 8 services whose
  multi-port period (12) beats every one-port schedule.  The paper sets all
  costs to 1, which makes ``Ccomp`` of the join services 72 and contradicts
  the claimed period of 12 (a slip — the argument is purely about
  communications).  ``corrected=True`` (default) sets the join costs to
  ``1/6`` so that computations exactly match the communication bound and 12
  is the genuine OVERLAP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import (
    Application,
    ExecutionGraph,
    INPUT,
    OUTPUT,
    OperationList,
    comm_op,
    comp_op,
    make_application,
)

F = Fraction


@dataclass(frozen=True)
class PaperInstance:
    """A named instance: application + execution graph + expected values."""

    name: str
    description: str
    application: Application
    graph: ExecutionGraph
    expected: Dict[str, Fraction] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Section 2.3 / Figure 1
# ---------------------------------------------------------------------------

def fig1_example() -> PaperInstance:
    """Five services of cost 4 and selectivity 1; the Figure-1 graph."""
    app = make_application([(f"C{i}", 4, 1) for i in range(1, 6)])
    graph = ExecutionGraph(
        app,
        [("C1", "C2"), ("C1", "C4"), ("C2", "C3"), ("C3", "C5"), ("C4", "C5")],
    )
    return PaperInstance(
        name="fig1",
        description="Section 2.3 example (Figure 1)",
        application=app,
        graph=graph,
        expected={
            "latency": F(21),
            "period_overlap": F(4),
            "period_outorder": F(7),
            "period_inorder": F(23, 3),
        },
    )


def _fig1_latency_times() -> Dict[object, Tuple[Fraction, Fraction]]:
    return {
        comm_op(INPUT, "C1"): (F(0), F(1)),
        comp_op("C1"): (F(1), F(5)),
        comm_op("C1", "C2"): (F(5), F(6)),
        comm_op("C1", "C4"): (F(6), F(7)),
        comp_op("C2"): (F(6), F(10)),
        comm_op("C2", "C3"): (F(10), F(11)),
        comp_op("C3"): (F(11), F(15)),
        comm_op("C3", "C5"): (F(15), F(16)),
        comp_op("C4"): (F(7), F(11)),
        comm_op("C4", "C5"): (F(11), F(12)),
        comp_op("C5"): (F(16), F(20)),
        comm_op("C5", OUTPUT): (F(20), F(21)),
    }


def fig1_latency_operation_list() -> OperationList:
    """The paper's latency-21 schedule (valid for all three models)."""
    return OperationList(_fig1_latency_times(), lam=F(21))


def fig1_overlap_period5_operation_list() -> OperationList:
    """Same times, ``lambda = 5``: a period-5 OVERLAP schedule (paper text)."""
    return OperationList(_fig1_latency_times(), lam=F(5))


def fig1_overlap_period4_operation_list() -> OperationList:
    """The paper's optimal OVERLAP schedule: period 4.

    Relative to the latency schedule, ``lambda = 4`` and the communication
    ``C4 -> C5`` moves to ``[12, 13]``.
    """
    times = _fig1_latency_times()
    times[comm_op("C4", "C5")] = (F(12), F(13))
    return OperationList(times, lam=F(4))


def fig1_outorder_period7_operation_list() -> OperationList:
    """The paper's optimal OUTORDER schedule: period 7.

    ``BeginComm(4,5) = 14`` and ``BeginCalc(4) = 8``; C4 then has idle time
    but every server's operations fit the period, out of data-set order.
    """
    times = _fig1_latency_times()
    times[comm_op("C4", "C5")] = (F(14), F(15))
    times[comp_op("C4")] = (F(8), F(12))
    return OperationList(times, lam=F(7))


def fig1_inorder_period_23_3_operation_list() -> OperationList:
    """The paper's optimal INORDER schedule: period 23/3.

    The idle time is split between C1, C4 and C5 (2/3, 1+2/3 and 2/3), which
    is what makes the optimal period fractional — the paper calls the value
    "surprising".
    """
    times = _fig1_latency_times()
    times[comm_op("C1", "C4")] = (F(6) + F(2, 3), F(7) + F(2, 3))
    times[comp_op("C4")] = (F(7) + F(2, 3), F(11) + F(2, 3))
    times[comm_op("C4", "C5")] = (F(13) + F(1, 3), F(14) + F(1, 3))
    return OperationList(times, lam=F(23, 3))


# ---------------------------------------------------------------------------
# Appendix B.1 / Figure 4
# ---------------------------------------------------------------------------

def b1_application() -> Application:
    """202 services: two near-unit filters and 200 heavy expanders."""
    sigma = F(9999, 10000)
    specs: List[Tuple[str, Fraction, Fraction]] = [
        ("C1", F(100), sigma),
        ("C2", F(100), sigma),
    ]
    specs += [(f"C{i}", F(100) / sigma, F(100)) for i in range(3, 203)]
    return make_application(specs)


def b1_counterexample() -> PaperInstance:
    """The optimal plan *with* communication costs (Figure 4): two fans."""
    app = b1_application()
    edges = [("C1", f"C{i}") for i in range(3, 103)]
    edges += [("C2", f"C{i}") for i in range(103, 203)]
    return PaperInstance(
        name="b1",
        description="Appendix B.1 (Figure 4): communication costs change the optimum",
        application=app,
        graph=ExecutionGraph(app, edges),
        expected={"period_overlap": F(100)},
    )


def b1_nocomm_plan_graph() -> ExecutionGraph:
    """The communication-free optimum: chain C1 -> C2, C2 feeds everyone.

    Under the OVERLAP model this graph's period is ``200 * 0.9999^2`` — the
    outgoing communications of C2 blow up, which is the paper's point.
    """
    app = b1_application()
    edges = [("C1", "C2")] + [("C2", f"C{i}") for i in range(3, 203)]
    return ExecutionGraph(app, edges)


# ---------------------------------------------------------------------------
# Appendix B.2 / Figure 5
# ---------------------------------------------------------------------------

def b2_latency_ports() -> PaperInstance:
    """12 unit-cost services; multi-port latency 20, one-port latency > 20.

    Selectivities: ``sigma_2 = sigma_3 = 2``, ``sigma_4 = sigma_5 = sigma_6
    = 3``, all others 1.  Each join service C7..C12 reads from C1, from one
    of {C2, C3} and from one of {C4, C5, C6}, so each receives messages of
    sizes 1 + 2 + 3 = 6 and each sender emits a total volume of 6.
    """
    specs = [("C1", 1, 1), ("C2", 1, 2), ("C3", 1, 2)]
    specs += [(f"C{i}", 1, 3) for i in (4, 5, 6)]
    specs += [(f"C{i}", 1, 1) for i in range(7, 13)]
    app = make_application(specs)
    edges: List[Tuple[str, str]] = []
    edges += [("C1", f"C{j}") for j in range(7, 13)]
    edges += [("C2", "C7"), ("C2", "C8"), ("C2", "C9")]
    edges += [("C3", "C10"), ("C3", "C11"), ("C3", "C12")]
    edges += [("C4", "C7"), ("C4", "C10")]
    edges += [("C5", "C8"), ("C5", "C11")]
    edges += [("C6", "C9"), ("C6", "C12")]
    return PaperInstance(
        name="b2",
        description="Appendix B.2 (Figure 5): multi-port beats one-port on latency",
        application=app,
        graph=ExecutionGraph(app, edges),
        expected={"latency_multiport": F(20)},
    )


def b2_multiport_operation_list() -> OperationList:
    """The latency-20 multi-port schedule described in B.2.

    All C1..C6 computations run in [2, 3]... more precisely: input messages
    in [0, 1], computations in [1, 2], all 18 cross communications share the
    window [2, 8] (each at ratio size/6), joins compute in [8, 14] and the
    output messages (size 6 each) occupy [14, 20].
    """
    inst = b2_latency_ports()
    graph = inst.graph
    times: Dict[object, Tuple[Fraction, Fraction]] = {}
    for i in range(1, 7):
        times[comm_op(INPUT, f"C{i}")] = (F(0), F(1))
        times[comp_op(f"C{i}")] = (F(1), F(2))
    for a, b in sorted(graph.edges):
        times[comm_op(a, b)] = (F(2), F(8))
    for j in range(7, 13):
        times[comp_op(f"C{j}")] = (F(8), F(14))
        times[comm_op(f"C{j}", OUTPUT)] = (F(14), F(20))
    return OperationList(times, lam=F(20))


# ---------------------------------------------------------------------------
# Appendix B.3 / Figure 6
# ---------------------------------------------------------------------------

def b3_period_ports(corrected: bool = True) -> PaperInstance:
    """8 services; multi-port period 12, one-port period > 12.

    The paper's literal instance (``corrected=False``) sets every cost and
    every join selectivity to 1, which makes ``Ccomp(C5..C7) = 72`` and the
    join output messages 72 units — both above the claimed period 12.  The
    separation argument only concerns the cross communications, so the
    corrected instance (default) scales the join costs to ``1/6`` and join
    selectivities to ``1/6`` (``2/3`` for C8) so that *every* ``Cexec``
    equals at most 12 and 12 really is the optimal multi-port period, while
    the one-port infeasibility argument is untouched (the binding Cin/Cout
    loads of 12 on the cross edges are identical).
    """
    if corrected:
        join = [("C5", F(1, 6), F(1, 6)), ("C6", F(1, 6), F(1, 6)),
                ("C7", F(1, 6), F(1, 6)), ("C8", F(1, 6), F(2, 3))]
    else:
        join = [(f"C{i}", F(1), F(1)) for i in (5, 6, 7, 8)]
    specs = [("C1", 1, 3), ("C2", 1, 3), ("C3", 1, 4), ("C4", 1, 2)] + join
    app = make_application(specs)
    edges: List[Tuple[str, str]] = []
    for src in ("C1", "C2", "C4"):
        edges += [(src, f"C{j}") for j in (5, 6, 7, 8)]
    edges += [("C3", f"C{j}") for j in (5, 6, 7)]
    return PaperInstance(
        name="b3",
        description="Appendix B.3 (Figure 6): multi-port beats one-port on period",
        application=app,
        graph=ExecutionGraph(app, edges),
        expected={"period_multiport": F(12)},
    )


__all__ = [
    "PaperInstance",
    "fig1_example",
    "fig1_latency_operation_list",
    "fig1_overlap_period5_operation_list",
    "fig1_overlap_period4_operation_list",
    "fig1_outorder_period7_operation_list",
    "fig1_inorder_period_23_3_operation_list",
    "b1_application",
    "b1_counterexample",
    "b1_nocomm_plan_graph",
    "b2_latency_ports",
    "b2_multiport_operation_list",
    "b3_period_ports",
]
