"""Concurrent multi-application mapping on shared servers.

The regime of the paper's sequels: several filtering applications compete
for one platform, several services may share one server.  This subpackage
provides the containers and readouts; the shared placement search lives in
:mod:`repro.optimize.placement` (:func:`~repro.optimize.placement.optimize_shared_mapping`)
and the planner front door is :func:`repro.planner.solve_concurrent`.

    >>> from repro import ExecutionGraph, Mapping, Platform, make_application
    >>> from repro.concurrent import ConcurrentCosts, MultiApplication
    >>> g = ExecutionGraph.empty(make_application([("X", 2, 1)]))
    >>> multi = MultiApplication([("a", g), ("b", g)])
    >>> costs = ConcurrentCosts(
    ...     multi, Platform.homogeneous(1),
    ...     Mapping.shared({"a.X": "S1", "b.X": "S1"}))
    >>> costs.system_period(), costs.app_period("a")
    (Fraction(4, 1), Fraction(2, 1))
"""

from .costs import ConcurrentCosts
from .multiapp import SEPARATOR, ConcurrentApp, Member, MultiApplication

__all__ = [
    "ConcurrentApp",
    "ConcurrentCosts",
    "Member",
    "MultiApplication",
    "SEPARATOR",
]
