"""Concurrent applications sharing one platform (the paper's sequels).

The paper maps one filtering application with one service per server; its
sequels (Benoit, Casanova, Rehn-Sonigo & Robert, *Resource Allocation
Strategies for In-Network Stream Processing*, 2008, and *Resource
Allocation for Multiple Concurrent In-Network Stream-Processing
Applications*, 2009) study **several applications competing for one
platform**, with multiple services per server.  :class:`MultiApplication`
is the container for that regime: it bundles ``K`` named applications
(each with a fixed execution graph and an optional period target
``rho_a``) and exposes the *combined instance* — one disjoint-union
execution graph over namespaced services — that the shared-server
machinery (:class:`~repro.core.CostModel` aggregation,
:func:`~repro.optimize.placement.optimize_shared_mapping`) operates on.

Service names are namespaced ``<app>.<service>`` in the combined graph;
ownership is tracked explicitly, so original names may contain anything.

Example::

    >>> from repro import ExecutionGraph, make_application
    >>> a = ExecutionGraph.chain(make_application([("X", 1, "1/2"), ("Y", 4, 1)]),
    ...                          ["X", "Y"])
    >>> b = ExecutionGraph.empty(make_application([("Z", 3, 1)]))
    >>> multi = MultiApplication([("left", a), ("right", b)])
    >>> multi.names
    ('left', 'right')
    >>> multi.combined_graph.nodes
    ('left.X', 'left.Y', 'right.Z')
    >>> multi.owner("left.Y"), multi.local_name("left.Y")
    ('left', 'Y')
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple, Union

from ..core import (
    Application,
    ExecutionGraph,
    Mapping,
    Service,
    as_fraction,
)

#: Joins application and service names in the combined graph.
SEPARATOR = "."


@dataclass(frozen=True)
class ConcurrentApp:
    """One member application: a name, a fixed execution graph, a target.

    ``period_target`` is the sequels' ``rho_a`` — the period the
    application must sustain.  ``None`` means "no individual target"
    (the common-period objective applies).
    """

    name: str
    graph: ExecutionGraph
    period_target: Optional[Fraction] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be a non-empty string")
        if SEPARATOR in self.name:
            raise ValueError(
                f"application name {self.name!r} must not contain {SEPARATOR!r} "
                f"(it namespaces the combined service names)"
            )
        if self.period_target is not None:
            target = as_fraction(self.period_target)
            if target <= 0:
                raise ValueError(
                    f"application {self.name!r}: period target must be > 0, "
                    f"got {target}"
                )
            object.__setattr__(self, "period_target", target)


Member = Union[ConcurrentApp, Tuple[str, ExecutionGraph], ExecutionGraph]


def _coerce_member(member: Member, index: int) -> ConcurrentApp:
    if isinstance(member, ConcurrentApp):
        return member
    if isinstance(member, ExecutionGraph):
        return ConcurrentApp(f"app{index}", member)
    name, graph = member
    return ConcurrentApp(name, graph)


class MultiApplication:
    """``K`` concurrent applications as one combined shared-server instance.

    Parameters
    ----------
    members:
        :class:`ConcurrentApp` objects, ``(name, graph)`` pairs, or bare
        :class:`~repro.core.ExecutionGraph` objects (auto-named
        ``app0``, ``app1``, ...).  Names must be unique.  Zero members is
        allowed — the *empty system* every application has been evicted
        from (see :mod:`repro.dynamic`); its combined graph has no
        services, its period is 0 and it is trivially feasible.
    """

    def __init__(self, members: Sequence[Member]) -> None:
        apps = tuple(_coerce_member(m, i) for i, m in enumerate(members))
        names = [a.name for a in apps]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate application names: {dupes}")
        self.members: Tuple[ConcurrentApp, ...] = apps
        self._by_name: Dict[str, ConcurrentApp] = {a.name: a for a in apps}
        self._owner: Dict[str, str] = {}
        self._local: Dict[str, str] = {}
        services = []
        precedence = []
        app_graphs: Dict[str, ExecutionGraph] = {}
        all_edges = []
        for app in apps:
            graph = app.graph
            rename = {
                svc: f"{app.name}{SEPARATOR}{svc}" for svc in graph.application.names
            }
            for svc in graph.application:
                combined = rename[svc.name]
                services.append(Service(combined, svc.cost, svc.selectivity))
                self._owner[combined] = app.name
                self._local[combined] = svc.name
            app_precedence = [
                (rename[a], rename[b]) for a, b in graph.application.precedence
            ]
            precedence.extend(app_precedence)
            app_edges = [(rename[a], rename[b]) for a, b in graph.edges]
            all_edges.extend(app_edges)
            app_application = Application(
                tuple(
                    Service(rename[s.name], s.cost, s.selectivity)
                    for s in graph.application
                ),
                frozenset(app_precedence),
            )
            app_graphs[app.name] = ExecutionGraph(app_application, app_edges)
        self.combined_application = Application(
            tuple(services), frozenset(precedence)
        )
        self.combined_graph = ExecutionGraph(self.combined_application, all_edges)
        self._app_graphs = app_graphs

    # -- queries --------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __getitem__(self, name: str) -> ConcurrentApp:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no application named {name!r}") from None

    @property
    def total_services(self) -> int:
        """Total service count over all applications."""
        return len(self.combined_application)

    def app_graph(self, name: str) -> ExecutionGraph:
        """The member's execution graph over *namespaced* service names."""
        self[name]
        return self._app_graphs[name]

    def owner(self, combined_service: str) -> str:
        """The application owning a combined (namespaced) service name."""
        try:
            return self._owner[combined_service]
        except KeyError:
            raise KeyError(f"no combined service {combined_service!r}") from None

    def local_name(self, combined_service: str) -> str:
        """The original (per-application) name of a combined service."""
        self.owner(combined_service)
        return self._local[combined_service]

    def app_services(self, name: str) -> Tuple[str, ...]:
        """The combined (namespaced) service names of one application."""
        return self.app_graph(name).nodes

    def weights(self) -> Optional[Dict[str, Fraction]]:
        """``1 / rho_a`` per combined service, or ``None`` without targets.

        These are the weights that turn the aggregated per-server load
        into a *utilisation* (see
        :class:`~repro.concurrent.costs.ConcurrentCosts`).  Targets are
        all-or-nothing: a partially targeted instance raises, because an
        untargeted application has no defined demand rate — silently
        defaulting it to ``rho_a = 1`` would let one missing target drive
        the whole feasibility verdict.
        """
        if all(a.period_target is None for a in self.members):
            return None
        missing = sorted(
            a.name for a in self.members if a.period_target is None
        )
        if missing:
            raise ValueError(
                f"period targets must cover every application; "
                f"missing: {missing}"
            )
        out: Dict[str, Fraction] = {}
        for app in self.members:
            weight = Fraction(1) / app.period_target
            for svc in self.app_services(app.name):
                out[svc] = weight
        return out

    def combined_mapping(
        self, per_app: Dict[str, Union[Mapping, Dict[str, str]]]
    ) -> Mapping:
        """Assemble a shared combined mapping from per-application mappings.

        *per_app* maps each application name to a mapping over that
        application's **original** service names.  The result is a
        shared-capable :class:`~repro.core.Mapping` over combined names —
        co-location across applications (or within one) is allowed.

        Example::

            >>> from repro import ExecutionGraph, make_application
            >>> g = ExecutionGraph.empty(make_application([("X", 1, 1)]))
            >>> multi = MultiApplication([("a", g), ("b", g)])
            >>> m = multi.combined_mapping({"a": {"X": "S1"}, "b": {"X": "S1"}})
            >>> m.is_injective, m.services_on("S1")
            (False, ('a.X', 'b.X'))
        """
        assignment: Dict[str, str] = {}
        for name in self.names:
            local = per_app.get(name)
            if local is None:
                raise KeyError(f"no mapping given for application {name!r}")
            for svc, srv in local.items():
                assignment[f"{name}{SEPARATOR}{svc}"] = srv
        missing = sorted(set(self.combined_graph.nodes) - set(assignment))
        if missing:
            raise ValueError(f"combined mapping misses services: {missing}")
        return Mapping.shared(assignment)

    def restrict_mapping(self, mapping: Mapping, name: str) -> Mapping:
        """One application's slice of a combined mapping, original names.

        The slice stays shared-capable: two services of the *same*
        application may share a server.
        """
        return Mapping.shared(
            {
                self._local[svc]: mapping.server(svc)
                for svc in self.app_services(name)
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{a.name}({len(a.graph.nodes)})" for a in self.members
        )
        return f"MultiApplication({inner})"


__all__ = ["ConcurrentApp", "Member", "MultiApplication", "SEPARATOR"]
