"""Aggregated cost readouts for concurrent applications on shared servers.

:class:`ConcurrentCosts` evaluates one shared mapping of a
:class:`~repro.concurrent.multiapp.MultiApplication` on a platform and
exposes the quantities the sequels optimise:

* the **system period** — the smallest common period every application can
  sustain simultaneously: ``max_u Cexec(u)`` over per-server aggregated
  ``Cin``/``Ccomp``/``Cout`` (intra-server edges free);
* **per-application periods** — what each application's services demand of
  their servers, contention from other applications excluded (with each
  application alone on the platform under the same placement, this is its
  Theorem-1 optimal period);
* **per-application latencies** — contention-free critical paths through
  each application's graph, intra-server edges free;
* **per-server utilisation** under per-application period targets
  ``rho_a``: each service's load weighs ``1 / rho_a``; the mapping is
  feasible iff every server's utilisation is at most 1.

All values are exact :class:`~fractions.Fraction` arithmetic, delegated to
the shared-mapping :class:`~repro.core.CostModel` aggregation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from ..core import CommModel, CostModel, Mapping, Platform
from .multiapp import MultiApplication

ZERO = Fraction(0)
ONE = Fraction(1)


class ConcurrentCosts:
    """Readouts of one shared mapping of a multi-application instance.

    Parameters
    ----------
    multi:
        The concurrent applications (combined graph, targets).
    platform:
        Server speeds and link bandwidths (unit platforms allowed — the
        co-location structure still matters).
    mapping:
        A shared-capable :class:`~repro.core.Mapping` over the *combined*
        (namespaced) service names.
    model:
        Communication model; OVERLAP is the regime the sequels' bounds are
        exact for, the one-port models use the serialised sum.
    """

    def __init__(
        self,
        multi: MultiApplication,
        platform: Platform,
        mapping: Mapping,
        *,
        model: CommModel = CommModel.OVERLAP,
    ) -> None:
        self.multi = multi
        self.platform = platform
        self.mapping = mapping
        self.model = model
        self.costs = CostModel(multi.combined_graph, platform, mapping)
        self._weights = multi.weights()

    # -- system-wide -----------------------------------------------------------
    def system_period(self) -> Fraction:
        """The minimal common period: ``max_u Cexec(u)`` aggregated.

        An empty system (no services mapped — e.g. every application
        evicted) sustains any period, so the bound degenerates to ``0``.
        """
        if not self.costs.used_servers():
            return ZERO
        return self.costs.period_lower_bound(self.model)

    def server_loads(self) -> Dict[str, Fraction]:
        """Per used server: aggregated ``Cexec(u)`` (absolute time)."""
        return {
            u: self.costs.server_cexec(u, self.model)
            for u in self.costs.used_servers()
        }

    # -- per-application -------------------------------------------------------
    def _app_sums(
        self, name: str
    ) -> Dict[str, Tuple[Fraction, Fraction, Fraction]]:
        """Per-server (Cin, Ccomp, Cout) sums of one application's services."""
        sums: Dict[str, Tuple[Fraction, Fraction, Fraction]] = {}
        for svc in self.multi.app_services(name):
            server = self.mapping.server(svc)
            cin, ccomp, cout = (
                self.costs.cin(svc),
                self.costs.ccomp(svc),
                self.costs.cout(svc),
            )
            old = sums.get(server, (ZERO, ZERO, ZERO))
            sums[server] = (old[0] + cin, old[1] + ccomp, old[2] + cout)
        return sums

    def _combine(self, cin: Fraction, ccomp: Fraction, cout: Fraction) -> Fraction:
        if self.model.overlaps_compute:
            return max(cin, ccomp, cout)
        return cin + ccomp + cout

    def app_period(self, name: str) -> Fraction:
        """The period application *name* demands under this placement.

        ``max_u`` of the application's own aggregated per-server load —
        the Theorem-1 bound of the application run alone with the same
        placement (other applications' services excluded, intra-server
        edges of the application itself still free).
        """
        return max(
            self._combine(*sums) for sums in self._app_sums(name).values()
        )

    def app_latency(self, name: str) -> Fraction:
        """Contention-free critical-path latency of application *name*."""
        sub_mapping = Mapping.shared(
            {
                svc: self.mapping.server(svc)
                for svc in self.multi.app_services(name)
            }
        )
        sub = CostModel(self.multi.app_graph(name), self.platform, sub_mapping)
        return sub.latency_lower_bound()

    def app_periods(self) -> Dict[str, Fraction]:
        return {name: self.app_period(name) for name in self.multi.names}

    def app_latencies(self) -> Dict[str, Fraction]:
        return {name: self.app_latency(name) for name in self.multi.names}

    # -- utilisation under period targets --------------------------------------
    def server_utilisation(self, server: str) -> Fraction:
        """Weighted load of *server*: each service weighs ``1 / rho_a``.

        Under OVERLAP the three directions (receive, compute, send) are
        independent engines, so the utilisation is their max; under the
        one-port models the server serialises everything, so they add.
        Without targets every service weighs ``1``, so the "utilisation"
        degenerates to the absolute aggregated load.
        """
        weights = self._weights or {}
        cin = ccomp = cout = ZERO
        for svc in self.costs.server_services(server):
            w = weights.get(svc, ONE)
            cin += self.costs.cin(svc) * w
            ccomp += self.costs.ccomp(svc) * w
            cout += self.costs.cout(svc) * w
        return self._combine(cin, ccomp, cout)

    def max_utilisation(self) -> Fraction:
        """``max_u`` utilisation — the sequels' load-balance objective.

        The empty system (no services mapped) loads no server at all, so
        its utilisation is ``0`` — not a ``max()`` over zero servers.
        """
        used = self.costs.used_servers()
        if not used:
            return ZERO
        return max(self.server_utilisation(u) for u in used)

    def is_feasible(self) -> bool:
        """Every period target satisfiable: max utilisation at most 1.

        Without targets every finite mapping is feasible (the system
        period is finite); with targets, feasibility is the sequels'
        steady-state condition ``utilisation(u) <= 1`` on every server.
        """
        if self._weights is None:
            return True
        return self.max_utilisation() <= 1


__all__ = ["ConcurrentCosts"]
