"""Discrete-event execution of a plan over a finite stream of data sets.

The validators in :mod:`repro.core.validation` check the Appendix-A rules
symbolically (modulo ``lambda``).  This engine is the corresponding
*digital twin*: it expands the cyclic operation list into concrete
occurrences for ``n`` data sets, replays them on simulated servers and
links, and independently re-checks every constraint on the expanded
timeline — no modular arithmetic involved.  It also measures what the
paper defines operationally:

* the **empirical period**: the interval between completions of
  consecutive data sets in steady state;
* the **latency of each data set**: completion minus the data set's
  release ``n * lambda``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    INPUT,
    OUTPUT,
    Operation,
    OperationList,
    Plan,
    comm_op,
    comp_op,
    is_comm,
)

ZERO = Fraction(0)


@dataclass
class SimulationResult:
    """Outcome of replaying a plan for ``n_datasets`` consecutive data sets."""

    n_datasets: int
    completion_times: List[Fraction]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def empirical_period(self) -> Optional[Fraction]:
        """Completion-to-completion gap (constant for a cyclic schedule)."""
        if len(self.completion_times) < 2:
            return None
        gaps = {
            b - a
            for a, b in zip(self.completion_times, self.completion_times[1:])
        }
        if len(gaps) == 1:
            return gaps.pop()
        return None  # non-constant completion gaps

    @property
    def latencies(self) -> List[Fraction]:
        """Per-data-set latency relative to the cyclic release times."""
        return [
            t - i * (self.completion_times[1] - self.completion_times[0])
            if len(self.completion_times) > 1
            else t
            for i, t in enumerate(self.completion_times)
        ]


def _server_occurrences(
    graph: ExecutionGraph,
    ol: OperationList,
    node: str,
    n_datasets: int,
) -> List[Tuple[Fraction, Fraction, Operation, int]]:
    ops: List[Operation] = [
        comm_op(p, node) for p in (graph.predecessors(node) or (INPUT,))
    ]
    ops.append(comp_op(node))
    ops.extend(comm_op(node, s) for s in (graph.successors(node) or (OUTPUT,)))
    occ: List[Tuple[Fraction, Fraction, Operation, int]] = []
    for op in ops:
        if op not in ol:
            continue
        for n in range(n_datasets):
            occ.append((ol.begin_n(op, n), ol.end_n(op, n), op, n))
    occ.sort(key=lambda t: (t[0], t[1]))
    return occ


def simulate_plan(plan: Plan, n_datasets: int = 8) -> SimulationResult:
    """Replay *plan* for *n_datasets* data sets and re-check all constraints."""
    if n_datasets < 1:
        raise ValueError(
            f"simulate_plan needs n_datasets >= 1, got {n_datasets} "
            f"(an empty replay would report a vacuous SimulationResult)"
        )
    graph, ol, model = plan.graph, plan.operation_list, plan.model
    violations: List[str] = []

    # 1. per-data-set precedence on the expanded timeline
    for n in range(n_datasets):
        for node in graph.nodes:
            cop = comp_op(node)
            for p in graph.predecessors(node) or (INPUT,):
                op = comm_op(p, node)
                if op in ol and cop in ol and ol.end_n(op, n) > ol.begin_n(cop, n):
                    violations.append(
                        f"data set {n}: {op} ends after computation of {node!r} begins"
                    )
            for s in graph.successors(node) or (OUTPUT,):
                op = comm_op(node, s)
                if op in ol and cop in ol and ol.begin_n(op, n) < ol.end_n(cop, n):
                    violations.append(
                        f"data set {n}: {op} begins before computation of {node!r} ends"
                    )

    # 2. resource exclusion / bandwidth on the expanded timeline
    if model.multiport:
        costs = CostModel(graph, plan.platform, plan.mapping)
        for node in graph.nodes:
            for direction in ("in", "out"):
                events: List[Tuple[Fraction, int, Fraction]] = []
                if direction == "in":
                    edges = [(p, node) for p in graph.predecessors(node) or (INPUT,)]
                else:
                    edges = [(node, s) for s in graph.successors(node) or (OUTPUT,)]
                for a, b in edges:
                    op = comm_op(a, b)
                    if op not in ol:
                        continue
                    d = ol.duration(op)
                    if d <= 0:
                        continue
                    ratio = costs.comm_time(a, b) / d
                    for n in range(n_datasets):
                        events.append((ol.begin_n(op, n), 1, ratio))
                        events.append((ol.end_n(op, n), -1, ratio))
                events.sort(key=lambda t: (t[0], t[1]))
                load = ZERO
                for _, sign, ratio in events:
                    load += sign * ratio
                    if load > 1:
                        violations.append(
                            f"server {node!r}: {direction} bandwidth exceeded"
                        )
                        break
    else:
        for node in graph.nodes:
            occ = _server_occurrences(graph, ol, node, n_datasets)
            for (b1, e1, op1, n1), (b2, e2, op2, n2) in zip(occ, occ[1:]):
                if b2 < e1:
                    violations.append(
                        f"server {node!r}: {op1} (data set {n1}) overlaps "
                        f"{op2} (data set {n2}) on the expanded timeline"
                    )
                    break
        if model.in_order:
            for node in graph.nodes:
                in_ops = [
                    comm_op(p, node)
                    for p in (graph.predecessors(node) or (INPUT,))
                    if comm_op(p, node) in ol
                ]
                out_ops = [
                    comm_op(node, s)
                    for s in (graph.successors(node) or (OUTPUT,))
                    if comm_op(node, s) in ol
                ]
                for n in range(n_datasets - 1):
                    last_out = max(
                        (ol.end_n(op, n) for op in out_ops), default=None
                    )
                    first_in = min(
                        (ol.begin_n(op, n + 1) for op in in_ops), default=None
                    )
                    if (
                        last_out is not None
                        and first_in is not None
                        and last_out > first_in
                    ):
                        violations.append(
                            f"server {node!r}: data set {n + 1} starts before "
                            f"data set {n} is fully emitted (INORDER)"
                        )
                        break

    completions = []
    final_ops = [op for op in ol.operations() if is_comm(op) and op[2] == OUTPUT]
    if not final_ops:
        final_ops = list(ol.operations())
    for n in range(n_datasets):
        completions.append(max(ol.end_n(op, n) for op in final_ops))
    return SimulationResult(n_datasets, completions, violations)


__all__ = ["SimulationResult", "simulate_plan"]
