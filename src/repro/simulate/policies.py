"""Policy-driven runtime simulation (no pre-computed operation list).

A real deployment does not ship a clairvoyant operation list: each server
just follows the INORDER discipline — receive the data set's inputs in a
fixed local order, compute, send the outputs in a fixed local order — with
synchronous (rendezvous) communications.  Because every server repeats a
fixed operation sequence and communications are rendezvous, the system is
a *marked graph*: occurrence times obey a max-plus recurrence, which this
module iterates directly.

The asymptotic throughput of such a recurrence is governed by the maximum
cycle ratio of the very event graph built by
:func:`repro.scheduling.inorder.inorder_event_graph` — simulating the
policy and measuring the steady-state period therefore cross-validates the
MCR machinery against an independent execution semantics (and the tests do
exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import (
    CostModel,
    ExecutionGraph,
    Mapping,
    Operation,
    OUTPUT,
    Platform,
    comm_op,
    is_comm,
)
from ..scheduling.inorder import CommOrders, greedy_orders, server_sequence

ZERO = Fraction(0)

#: One observed operation occurrence: ``(op, dataset, start, end, size)``.
#: ``size`` is the data volume the operation touched (message size for
#: communications, input size for computations) — the quantity a real
#: deployment can meter, and what :mod:`repro.calibrate` fits against.
OpRecord = Tuple[Operation, int, Fraction, Fraction, Fraction]


@dataclass
class PolicyTrace:
    """Execution trace of the rendezvous INORDER policy.

    ``records`` is empty unless the simulation ran with ``record=True``;
    then it holds one :data:`OpRecord` per operation occurrence — the raw
    material of :func:`repro.calibrate.records_from_policy`.
    """

    completion_times: List[Fraction]
    records: List[OpRecord] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.records is None:
            self.records = []

    def steady_state_period(self, warmup: Optional[int] = None) -> Fraction:
        """Asymptotic completion rate.

        ASAP execution of a marked graph becomes *ultimately periodic*: the
        completion gaps settle into a repeating cycle whose mean equals the
        maximum cycle ratio (max-plus spectral theory) — e.g. the paper's
        Section-2.3 example cycles through gaps ``7, 7, 9`` with mean
        ``23/3``.  We detect the gap cycle at the tail and return its exact
        mean, falling back to a plain tail average.

        ``warmup`` discards the first *warmup* completions from the tail
        average (default: the first half).  It must be non-negative; a
        value of ``n - 1`` or more would leave no gap to average, so it is
        clamped to ``n - 2`` (at least one gap always survives).
        """
        n = len(self.completion_times)
        if n < 2:
            raise ValueError("need at least two data sets")
        if warmup is not None and warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        gaps = [
            b - a
            for a, b in zip(self.completion_times, self.completion_times[1:])
        ]
        for p in range(1, len(gaps) // 3 + 1):
            if gaps[-p:] == gaps[-2 * p : -p]:
                return sum(gaps[-p:], Fraction(0)) / p
        if warmup is None:
            warmup = n // 2
        warmup = min(warmup, n - 2)
        span = self.completion_times[-1] - self.completion_times[warmup]
        return span / (n - 1 - warmup)

    @property
    def latency_first(self) -> Fraction:
        return self.completion_times[0]


def simulate_inorder_policy(
    graph: ExecutionGraph,
    n_datasets: int = 32,
    orders: Optional[CommOrders] = None,
    *,
    platform: Optional[Platform] = None,
    mapping: Optional[Mapping] = None,
    record: bool = False,
) -> PolicyTrace:
    """Run the rendezvous INORDER policy for *n_datasets* data sets.

    Max-plus recurrence: the *k*-th operation of server *s* for data set
    *n* starts when (a) the previous operation of *s* for data set *n* is
    done, (b) the server finished data set ``n - 1`` entirely, and (c) for
    communications, the peer server reached the same operation.  The trace
    records when each data set's last output communication completes.

    *platform*/*mapping* scale every duration through the
    :class:`~repro.core.CostModel` (``None`` keeps the paper's unit
    platform, bit-for-bit).  ``record=True`` additionally keeps one
    :data:`OpRecord` per operation occurrence — the measured trace that
    :mod:`repro.calibrate` fits cost models from.
    """
    if n_datasets < 1:
        raise ValueError(f"need n_datasets >= 1, got {n_datasets}")
    if orders is None:
        orders = greedy_orders(graph)
    costs = CostModel(graph, platform, mapping)
    sequences: Dict[str, List[Operation]] = {
        node: server_sequence(node, orders) for node in graph.nodes
    }
    durations: Dict[Operation, Fraction] = {}
    sizes: Dict[Operation, Fraction] = {}
    for node in graph.nodes:
        for op in sequences[node]:
            if op in durations:
                continue
            if is_comm(op):
                durations[op] = costs.comm_time(op[1], op[2])
                sizes[op] = costs.message_size(op[1], op[2])
            else:
                durations[op] = costs.ccomp(op[1])
                sizes[op] = costs.ancestor_selectivity(op[1])

    completion: List[Fraction] = []
    records: List[OpRecord] = []
    last_cycle_end: Dict[str, Fraction] = {node: ZERO for node in graph.nodes}
    for dataset in range(n_datasets):
        # Iterate to a fixpoint: rendezvous operations couple two server
        # chains, so repeated sweeps settle all start times (monotone,
        # bounded — a longest-path computation in disguise).
        start: Dict[Operation, Fraction] = {}
        changed = True
        while changed:
            changed = False
            for node in graph.nodes:
                t = last_cycle_end[node]
                for op in sequences[node]:
                    s = max(t, start.get(op, ZERO))
                    if start.get(op) != s:
                        start[op] = s
                        changed = True
                    t = s + durations[op]
        end = {op: s + durations[op] for op, s in start.items()}
        if record:
            for op in sorted(start, key=lambda o: (start[o], o)):
                records.append((op, dataset, start[op], end[op], sizes[op]))
        for node in graph.nodes:
            last_cycle_end[node] = max(end[op] for op in sequences[node])
        finals = [end[op] for op in end if is_comm(op) and op[2] == OUTPUT]
        completion.append(max(finals if finals else end.values()))
    return PolicyTrace(completion, records)


__all__ = ["OpRecord", "PolicyTrace", "simulate_inorder_policy"]
