"""Discrete-event simulation: plan replay and runtime policies."""

from .engine import SimulationResult, simulate_plan
from .policies import OpRecord, PolicyTrace, simulate_inorder_policy

__all__ = [
    "OpRecord",
    "PolicyTrace",
    "SimulationResult",
    "simulate_inorder_policy",
    "simulate_plan",
]
