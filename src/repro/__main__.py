"""``python -m repro`` — command-line front end to the planner facade.

Subcommands
-----------
``solve``       Solve one workload for one objective/model/method.
``profile``     cProfile one solve and print the top cumulative hot spots
                (evidence for performance work).
``compare``     Solve a workload over a grid of objectives × models × methods.
``batch``       Solve many workloads at once, sharded over worker processes
                (per-shard evaluation caches are merged back).
``concurrent``  Map several applications (``+``-separated workload specs)
                onto one shared platform — services may share servers.
``gallery``     Batch-solve the paper's named instances and report achieved
                versus expected values.
``serve``       Run the long-lived planner daemon (JSON-lines over
                stdin/stdout and optionally TCP) with request coalescing,
                micro-batching and a warm evaluation cache.
``replay``      Play a scenario trace (flash crowd, diurnal load, rolling
                maintenance, or a CSV) through warm-started re-planning
                and compare against the cold re-solve baseline.
``calibrate``   Fit service costs, selectivities, server speeds and link
                bandwidths from measured traces (a CSV of comp/comm
                records, or seeded synthetic traces of a workload) and
                print the fitted parameters with uncertainty intervals.
``list``        Show the known workload specs and registered solvers.

Examples::

    python -m repro solve fig1 --objective period --model inorder
    python -m repro solve fig1 --platform het4
    python -m repro solve noisy:n=6,seed=4 --robust worst_case:eps=1/10,k=12
    python -m repro calibrate fig1 --datasets 6 --noise 1/20
    python -m repro calibrate --trace measured.csv --json
    python -m repro solve random:n=9,seed=4 --exactness exact   # no fast path
    python -m repro profile random:n=9,seed=4 --method branch-and-bound
    python -m repro solve random:n=6,seed=3 --method local-search
    python -m repro compare fig1 --objectives period,latency
    python -m repro batch fig1 b1 random:n=9,seed=1 --processes 4
    python -m repro concurrent fig1+fig1 --platform hom:n=3
    python -m repro concurrent fig1+random:n=4,seed=1 --platform het4 \\
        --targets 16,8
    python -m repro gallery --platform --json
    python -m repro serve --workers 2 --tcp 127.0.0.1:0
    python -m repro replay flash:n=20,seed=7 --platform hom:n=4 --budget 2
    python -m repro replay maint:dwell=10 --platform tree:racks=2,servers=2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .core import ALL_MODELS
from .analysis.reporting import format_value, text_table
from .planner import (
    PlanResult,
    Workload,
    load_concurrent_workload,
    load_platform,
    load_workload,
    platform_names,
    registry,
    solve,
    solve_concurrent,
    solve_many,
    workload_names,
)


def _split(text: str, *, all_values: Sequence[str]) -> List[str]:
    """Parse a comma list, expanding the ``all`` shorthand."""
    items = [t.strip() for t in text.split(",") if t.strip()]
    if items == ["all"]:
        return list(all_values)
    return items


def _result_row(result: PlanResult) -> list:
    scheduled = result.scheduled_value
    return [
        result.objective,
        str(result.model),
        result.method,
        result.platform_label,
        result.value,
        scheduled if scheduled is not None else "-",
        ("yes" if result.plan.is_valid() else "NO")
        if result.plan is not None
        else "-",
        result.stats.evaluations,
        result.stats.cache_hits,
        f"{result.stats.wall_time * 1000:.1f}",
    ]


_HEADERS = [
    "objective", "model", "method", "platform", "value", "scheduled", "valid",
    "evals", "hits", "ms",
]


def _emit(results: List[PlanResult], workload: Workload, as_json: bool) -> None:
    if as_json:
        payload = {
            "workload": workload.name,
            "results": [r.as_dict() for r in results],
        }
        if workload.expected:
            payload["expected"] = {k: str(v) for k, v in workload.expected.items()}
        print(json.dumps(payload, indent=2))
        return
    print(f"workload: {workload.name} — {workload.description}")
    if workload.expected:
        expected = ", ".join(
            f"{k}={format_value(v)}" for k, v in sorted(workload.expected.items())
        )
        print(f"expected (paper): {expected}")
    print()
    print(text_table(_HEADERS, [_result_row(r) for r in results]))


def _problem(workload: Workload, remap: bool):
    if remap or workload.graph is None:
        return workload.application
    return workload.graph


def _platform_args(workload: Workload, spec):
    """Resolve (platform, mapping) for a solve.

    An explicit ``--platform`` spec wins (and drops the workload's pinned
    mapping, which only makes sense on its bundled platform); otherwise the
    workload's bundled platform/mapping apply.
    """
    if spec:
        return load_platform(spec), None
    return workload.platform, workload.mapping


def cmd_solve(args: argparse.Namespace) -> int:
    workload = load_workload(args.workload)
    platform, mapping = _platform_args(workload, args.platform)
    results = [
        solve(
            _problem(workload, args.remap),
            objective=objective,
            model=model,
            method=args.method,
            effort=args.effort,
            schedule=not args.no_schedule,
            platform=platform,
            mapping=mapping,
            exactness=args.exactness,
            deadline=args.deadline,
            robust=args.robust,
        )
        for objective in _split(args.objective, all_values=["period", "latency"])
        for model in _split(args.model, all_values=[m.value for m in ALL_MODELS])
    ]
    _emit(results, workload, args.json)
    if args.robust and not args.json:
        for result in results:
            extras = result.stats.extras.get("robust", {})
            print(
                f"\nrobust [{result.objective}/{result.model}]: "
                f"{extras.get('spec')} — {extras.get('candidates')} candidate "
                f"plan(s), winner {'is' if extras.get('winner_is_nominal') else 'is NOT'} "
                f"the nominal optimum (nominal plan scores "
                f"{extras.get('nominal_plan_score')})"
            )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    batch = solve_many(
        args.workloads,
        objective=args.objective,
        model=args.model,
        method=args.method,
        effort=args.effort,
        schedule=not args.no_schedule,
        platform=load_platform(args.platform) if args.platform else None,
        processes=args.processes,
        exactness=args.exactness,
        deadline=args.deadline,
    )
    if args.json:
        print(json.dumps(batch.as_dict(), indent=2))
        return 0
    rows = [
        [spec, *_result_row(r)]
        for spec, r in zip(args.workloads, batch.results)
    ]
    print(text_table(["workload", *_HEADERS], rows))
    stats = batch.stats
    print(
        f"\n{len(batch.results)} workloads over {batch.shards} shard(s) "
        f"({batch.processes} process(es)): {stats.evaluations} evaluations, "
        f"{stats.cache_hits} cache hits, {batch.merged_entries} cache entries "
        f"merged, {stats.wall_time:.2f} s"
    )
    return 0


def _parse_targets(text, names):
    """``--targets``: ``a0-fig1=16,a1-fig1=8`` or positional ``16,8``."""
    if not text:
        return None
    items = [t.strip() for t in text.split(",") if t.strip()]
    if not items:
        raise ValueError(f"--targets {text!r} contains no values")
    if all("=" in t for t in items):
        targets = {}
        for item in items:
            key, value = item.split("=", 1)
            targets[key.strip()] = value.strip()
        return targets
    if any("=" in t for t in items):
        raise ValueError(
            "mixed --targets syntax: use either name=value pairs or one "
            "positional value per application"
        )
    if len(items) != len(names):
        raise ValueError(
            f"--targets lists {len(items)} value(s) for {len(names)} "
            f"application(s); expected one per application (in order: "
            f"{', '.join(names)})"
        )
    return dict(zip(names, items))


def cmd_concurrent(args: argparse.Namespace) -> int:
    workload = load_concurrent_workload(args.workload)
    result = solve_concurrent(
        workload.multi,
        platform=load_platform(args.platform),
        model=args.model,
        targets=_parse_targets(args.targets, list(workload.multi.names)),
        exactness=args.exactness,
    )
    if args.json:
        print(json.dumps(
            {"workload": workload.name, "result": result.as_dict()}, indent=2
        ))
        return 0
    print(f"workload: {workload.name} — {workload.description}")
    print(result.summary())
    print()
    rows = [
        [
            name,
            len(result.multi[name].graph.nodes),
            result.app_periods[name],
            result.app_latencies[name],
            result.multi[name].period_target or "-",
        ]
        for name in result.multi.names
    ]
    print(text_table(
        ["application", "services", "period", "latency", "target"], rows
    ))
    print()
    loads = ", ".join(
        f"{u}={format_value(v)}" for u, v in sorted(result.server_loads.items())
    )
    print(f"server loads: {loads}")
    shared = [
        f"{u}:[{','.join(result.mapping.services_on(u))}]"
        for u in result.mapping.used_servers()
        if len(result.mapping.services_on(u)) > 1
    ]
    if shared:
        print(f"shared servers: {'  '.join(shared)}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one solve; print the top cumulative hot spots.

    Caches are cleared first so the profile reflects cold work, not memo
    lookups — the evidence future performance PRs should start from.
    """
    import cProfile
    import pstats

    from .planner import clear_default_cache

    workload = load_workload(args.workload)
    platform, mapping = _platform_args(workload, args.platform)
    problem = _problem(workload, args.remap)
    clear_default_cache()
    profiler = cProfile.Profile()
    profiler.enable()
    result = solve(
        problem,
        objective=args.objective,
        model=args.model,
        method=args.method,
        effort=args.effort,
        schedule=not args.no_schedule,
        platform=platform,
        mapping=mapping,
        exactness=args.exactness,
    )
    profiler.disable()
    print(
        f"workload: {workload.name} — {args.objective}/{args.model} via "
        f"{result.method}: value {format_value(result.value)} in "
        f"{result.stats.wall_time * 1000:.1f} ms "
        f"({result.stats.evaluations} evaluations)"
    )
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


#: Methods applicable to a fixed execution graph (orchestration).
_GRAPH_METHODS = ["auto", "exhaustive", "heuristic", "bound"]


def cmd_compare(args: argparse.Namespace) -> int:
    workload = load_workload(args.workload)
    problem = _problem(workload, args.remap)
    platform, mapping = _platform_args(workload, args.platform)
    # "all" must expand to methods the problem shape actually accepts:
    # solver names for applications, orchestration efforts for graphs.
    all_methods = _GRAPH_METHODS if problem is workload.graph \
        else list(registry.names())
    results = [
        solve(
            problem,
            objective=objective,
            model=model,
            method=method,
            schedule=not args.no_schedule,
            platform=platform,
            mapping=mapping,
            exactness=args.exactness,
        )
        for objective in _split(args.objectives, all_values=["period", "latency"])
        for model in _split(args.models, all_values=[m.value for m in ALL_MODELS])
        for method in _split(args.methods, all_values=all_methods)
    ]
    _emit(results, workload, args.json)
    return 0


#: What the gallery solves per instance: (objective, models) — restricted
#: to what each appendix instance is about (and what stays fast at n=202).
_GALLERY = [
    ("fig1", [("period", ["overlap", "inorder", "outorder"]), ("latency", ["overlap"])]),
    ("b1", [("period", ["overlap"])]),
    ("b2", [("latency", ["overlap"])]),
    ("b3", [("period", ["overlap"])]),
]

#: The heterogeneous wing (``gallery --platform``): the paper instances on
#: their alternating-speed variants plus the platform-dependent-optimum
#: demo, each bundling its own platform (and pinned mapping when large).
_GALLERY_HET = [
    ("hetdemo", [("period", ["overlap"])]),
    ("b1het", [("period", ["overlap"])]),
    ("b2het", [("latency", ["overlap"])]),
    ("b3het", [("period", ["overlap"])]),
]


def cmd_gallery(args: argparse.Namespace) -> int:
    payload = []
    gallery = _GALLERY + (_GALLERY_HET if args.platform else [])
    for spec, runs in gallery:
        workload = load_workload(spec)
        results: List[PlanResult] = []
        for objective, models in runs:
            for model in models:
                results.append(
                    solve(
                        workload.problem,
                        objective=objective,
                        model=model,
                        platform=workload.platform,
                        mapping=workload.mapping,
                    )
                )
        if args.json:
            payload.append(
                {
                    "workload": workload.name,
                    "description": workload.description,
                    "expected": {k: str(v) for k, v in workload.expected.items()},
                    "results": [r.as_dict(include_graph=False) for r in results],
                }
            )
        else:
            _emit(results, workload, as_json=False)
            print()
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the planner daemon until EOF or a ``shutdown`` request."""
    import asyncio

    from .serve import ServeConfig, serve_forever

    if args.no_stdio and not args.tcp:
        raise ValueError("--no-stdio needs --tcp (no transport left)")
    options = dict(
        workers=args.workers,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_ttl=args.cache_ttl,
        result_entries=args.result_entries,
        result_ttl=args.result_ttl,
        snapshot_path=args.snapshot,
    )
    if args.cache_entries is not None:
        options["cache_entries"] = args.cache_entries
    config = ServeConfig(**options)
    asyncio.run(
        serve_forever(config, stdio=not args.no_stdio, tcp=args.tcp)
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a scenario trace through warm-started re-planning."""
    from .dynamic import load_trace, replay
    from .planner.facade import _coerce_model

    platform = load_platform(args.platform)
    trace = load_trace(args.trace, platform)
    if args.save_csv:
        trace.save_csv(args.save_csv)
    report = replay(
        trace,
        platform,
        budget=args.budget,
        model=_coerce_model(args.model),
        exactness=args.exactness,
        compare_cold=not args.no_cold,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    print(report.summary_table())
    print()
    for key, value in report.aggregates().items():
        print(f"  {key}: {value}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit cost-model parameters from measured or synthetic traces."""
    import json as _json

    from .calibrate import CalibrationTrace, fit_trace, synthetic_records
    from .core import Mapping as _Mapping, as_fraction

    traces = [CalibrationTrace.load_csv(path) for path in args.trace]
    trace = CalibrationTrace()
    for t in traces:
        trace = trace + t

    if args.workload:
        workload = load_workload(args.workload)
        platform, mapping = _platform_args(workload, args.platform)
        graph = workload.graph
        if graph is None:
            graph = solve(
                workload.application, platform=platform, mapping=mapping,
                schedule=False,
            ).graph
        noise = as_fraction(args.noise)
        if platform is None:
            trace = trace + CalibrationTrace(synthetic_records(
                graph, n_datasets=args.datasets, noise=noise, seed=args.seed,
            ))
        else:
            # Several rotated mappings observe each service on several
            # servers — that is what breaks the cost/speed gauge.
            names = list(workload.application.names)
            servers = sorted(s.name for s in platform.servers)
            if mapping is None:
                mapping = _Mapping.default(names, platform)
            base = {name: mapping.server(name) for name in names}
            for rotation in range(max(1, args.mappings)):
                if rotation == 0:
                    assignment = base
                else:
                    assignment = {
                        name: servers[
                            (servers.index(base[name]) + rotation) % len(servers)
                        ]
                        for name in names
                    }
                trace = trace + CalibrationTrace(synthetic_records(
                    graph, platform, _Mapping(assignment),
                    n_datasets=args.datasets, noise=noise,
                    seed=args.seed + rotation, start=rotation * args.datasets,
                ))
    if not trace.records:
        raise ValueError(
            "nothing to fit: give a workload spec and/or at least one "
            "--trace CSV"
        )

    fit = fit_trace(trace, estimator=args.estimator)
    payload = fit.as_dict()
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(_json.dumps(payload, indent=2))
    else:
        print(fit.report())
        if args.out:
            print(f"\nfitted parameters written to {args.out}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads (named instances take no options; families take key=value):")
    for name in workload_names():
        print(f"  {name}")
    print("\nplatforms (--platform; named or family:key=value):")
    for name in platform_names():
        print(f"  {name}")
    print("\nsolvers (for applications / --remap):")
    for spec in sorted(registry, key=lambda s: s.name):
        print(f"  {spec.name:<14} {spec.description}")
    print("\norchestration methods (fixed graphs): auto, exhaustive, heuristic, bound")
    print(
        "\nconcurrent workloads: '+'-join workload specs (fig1+fig1, "
        "fig1+random:n=4,seed=1) for the `concurrent` subcommand"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Mapping filtering streaming applications with communication "
            "costs (SPAA 2009) — planner CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", help="workload spec, e.g. fig1 or random:n=6,seed=3")
        p.add_argument("--json", action="store_true", help="emit JSON instead of text")
        p.add_argument(
            "--remap",
            action="store_true",
            help="search over execution graphs even when the workload fixes one",
        )
        p.add_argument(
            "--no-schedule",
            action="store_true",
            help="skip building the concrete operation list",
        )
        p.add_argument(
            "--platform",
            default=None,
            help="platform spec, e.g. het4, demo2, hom:n=8 or het:n=6,seed=1 "
            "(default: the workload's bundled platform, if any)",
        )
        p.add_argument(
            "--exactness",
            default=None,
            choices=["exact", "certified", "fast"],
            help="numeric tier: certified (default — float fast path, "
            "bit-for-bit exact results), exact (Fractions everywhere), or "
            "fast (float tier, uncertified values)",
        )

    p_solve = sub.add_parser("solve", help="solve one workload")
    add_common(p_solve)
    p_solve.add_argument("--objective", default="period", help="period, latency, a comma list, or all")
    p_solve.add_argument("--model", default="overlap", help="overlap, inorder, outorder, a comma list, or all")
    p_solve.add_argument("--method", default="auto", help="solver name or auto")
    p_solve.add_argument("--effort", default=None, help="bound, heuristic, or exact")
    p_solve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="anytime wall-clock budget: race the solver portfolio and "
        "return the best certified plan found in time",
    )
    p_solve.add_argument(
        "--robust", default=None, metavar="SPEC",
        help="plan under parameter uncertainty: a robust spec such as "
        "worst_case:eps=1/10,k=12, expected:eps=1/20, or "
        "quantile:q=9/10,eps=1/10,seed=3 (eps sets cost and selectivity "
        "intervals; also cost=, sel=, speed=, bw=, k=, seed=)",
    )
    p_solve.set_defaults(fn=cmd_solve)

    p_prof = sub.add_parser(
        "profile", help="cProfile one solve; print the top hot spots"
    )
    add_common(p_prof)
    p_prof.add_argument("--objective", default="period", help="period or latency")
    p_prof.add_argument("--model", default="overlap", help="overlap, inorder or outorder")
    p_prof.add_argument("--method", default="auto", help="solver name or auto")
    p_prof.add_argument("--effort", default=None, help="bound, heuristic, or exact")
    p_prof.add_argument(
        "--top", type=int, default=20,
        help="how many rows of the profile to print (default 20)",
    )
    p_prof.add_argument(
        "--sort", default="cumulative",
        help="pstats sort key (cumulative, tottime, calls, ...)",
    )
    p_prof.set_defaults(fn=cmd_profile)

    p_batch = sub.add_parser(
        "batch", help="solve many workloads, sharded over worker processes"
    )
    p_batch.add_argument(
        "workloads", nargs="+",
        help="workload specs, e.g. fig1 b1 random:n=9,seed=3",
    )
    p_batch.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_batch.add_argument("--objective", default="period", help="period or latency")
    p_batch.add_argument("--model", default="overlap", help="overlap, inorder or outorder")
    p_batch.add_argument("--method", default="auto", help="solver name or auto")
    p_batch.add_argument("--effort", default=None, help="bound, heuristic, or exact")
    p_batch.add_argument(
        "--no-schedule", action="store_true",
        help="skip building the concrete operation lists",
    )
    p_batch.add_argument(
        "--platform", default=None,
        help="platform spec applied to every workload "
        "(default: each workload's bundled platform, if any)",
    )
    p_batch.add_argument(
        "--processes", type=int, default=None,
        help="worker processes (default: min(cpu count, #workloads); 1 = serial)",
    )
    p_batch.add_argument(
        "--exactness", default=None,
        choices=["exact", "certified", "fast"],
        help="numeric tier (default: certified)",
    )
    p_batch.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-workload anytime budget (portfolio racing; see solve)",
    )
    p_batch.set_defaults(fn=cmd_batch)

    p_con = sub.add_parser(
        "concurrent",
        help="map several applications onto one shared-server platform",
    )
    p_con.add_argument(
        "workload",
        help="'+'-separated workload specs, e.g. fig1+fig1 or "
        "fig1+random:n=4,seed=1",
    )
    p_con.add_argument(
        "--platform", required=True,
        help="platform spec the applications compete for, e.g. hom:n=3 "
        "or het:n=4,seed=1 (may have fewer servers than services)",
    )
    p_con.add_argument(
        "--model", default="overlap",
        help="overlap (exact aggregated bound), inorder or outorder",
    )
    p_con.add_argument(
        "--targets", default=None,
        help="per-application period targets: name=value pairs or one "
        "value per application in order, e.g. 16,8 — switches the "
        "objective to max per-server utilisation",
    )
    p_con.add_argument(
        "--exactness", default=None,
        choices=["exact", "certified", "fast"],
        help="numeric tier of the placement search (default: certified)",
    )
    p_con.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_con.set_defaults(fn=cmd_concurrent)

    p_cmp = sub.add_parser("compare", help="grid of objectives x models x methods")
    add_common(p_cmp)
    p_cmp.add_argument("--objectives", default="period", help="comma list or all")
    p_cmp.add_argument("--models", default="all", help="comma list or all")
    p_cmp.add_argument("--methods", default="auto", help="comma list or all")
    p_cmp.set_defaults(fn=cmd_compare)

    p_gal = sub.add_parser("gallery", help="batch-solve the paper's named instances")
    p_gal.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_gal.add_argument(
        "--platform",
        action="store_true",
        help="also solve the heterogeneous variants (b1het/b2het/b3het, hetdemo)",
    )
    p_gal.set_defaults(fn=cmd_gallery)

    p_srv = sub.add_parser(
        "serve",
        help="run the planner daemon (JSON-lines over stdio and/or TCP)",
    )
    p_srv.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="also listen on TCP (port 0 picks a free port; the bound "
        "address is announced on stderr)",
    )
    p_srv.add_argument(
        "--no-stdio", action="store_true",
        help="do not serve stdin/stdout (requires --tcp)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for sharding micro-batches (default 0: "
        "solve in-process against the shared warm cache)",
    )
    p_srv.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="how long a request waits for batch company (default 0.005)",
    )
    p_srv.add_argument(
        "--max-batch", type=int, default=16,
        help="flush a batch group at this many requests (default 16)",
    )
    p_srv.add_argument(
        "--cache-entries", type=int, default=None,
        help="evaluation-cache capacity (LRU beyond this; default 200000)",
    )
    p_srv.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="evaluation-cache entry lifetime (default: no expiry)",
    )
    p_srv.add_argument(
        "--result-entries", type=int, default=4096,
        help="finished-solve result-cache capacity (default 4096)",
    )
    p_srv.add_argument(
        "--result-ttl", type=float, default=None, metavar="SECONDS",
        help="result-cache entry lifetime (default: no expiry)",
    )
    p_srv.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="evaluation-cache snapshot file: loaded on start, written "
        "on graceful shutdown",
    )
    p_srv.set_defaults(fn=cmd_serve)

    p_rep = sub.add_parser(
        "replay",
        help="replay a scenario trace through warm-started re-planning",
    )
    p_rep.add_argument(
        "trace",
        help="trace spec: a generator family (flash:n=50,seed=7, "
        "diurnal:apps=3,cycles=1, maint:dwell=10,gap=5) or a CSV file "
        "(@path or anything ending in .csv)",
    )
    p_rep.add_argument(
        "--platform", required=True,
        help="platform spec the events play out on, e.g. hom:n=4 or "
        "tree:racks=2,servers=2,up_bw=1/2 (maint traces need a "
        "topology with more than one group)",
    )
    p_rep.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="max voluntary migrations per event (default: unlimited; "
        "forced evacuations and admissions are always free)",
    )
    p_rep.add_argument(
        "--model", default="overlap",
        help="overlap (exact aggregated bound), inorder or outorder",
    )
    p_rep.add_argument(
        "--exactness", default=None,
        choices=["exact", "certified", "fast"],
        help="numeric tier of the placement search (default: certified)",
    )
    p_rep.add_argument(
        "--no-cold", action="store_true",
        help="skip the per-event cold re-solve baseline (faster; the "
        "period/move ratios become unavailable)",
    )
    p_rep.add_argument(
        "--save-csv", default=None, metavar="PATH",
        help="also write the (possibly generated) trace to a CSV file",
    )
    p_rep.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_rep.set_defaults(fn=cmd_replay)

    p_cal = sub.add_parser(
        "calibrate",
        help="fit costs/selectivities/speeds/bandwidths from traces",
    )
    p_cal.add_argument(
        "workload", nargs="?", default=None,
        help="workload spec to generate synthetic traces for (optional "
        "when --trace supplies measured records)",
    )
    p_cal.add_argument(
        "--trace", action="append", default=[], metavar="CSV",
        help="measured trace CSV (columns: time,dataset,kind,service,"
        "server,src,dst,src_server,dst_server,size,duration); repeatable "
        "— traces concatenate",
    )
    p_cal.add_argument(
        "--platform", default=None,
        help="platform spec the synthetic traces run on (default: the "
        "workload's bundled platform, if any)",
    )
    p_cal.add_argument(
        "--datasets", type=int, default=4,
        help="datasets per synthetic trace (default 4)",
    )
    p_cal.add_argument(
        "--noise", default="0", metavar="FRACTION",
        help="relative measurement noise on synthetic durations, e.g. "
        "1/20 (default 0: fits recover the true parameters exactly)",
    )
    p_cal.add_argument(
        "--mappings", type=int, default=2,
        help="rotated service-to-server mappings to synthesise on a "
        "platform — several mappings break the cost/speed gauge "
        "(default 2)",
    )
    p_cal.add_argument(
        "--seed", type=int, default=0, help="noise seed (default 0)",
    )
    p_cal.add_argument(
        "--estimator", default="median", choices=["median", "mean"],
        help="point estimator for fitted parameters (default median)",
    )
    p_cal.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the fitted parameters as JSON to this file",
    )
    p_cal.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p_cal.set_defaults(fn=cmd_calibrate)

    p_list = sub.add_parser("list", help="show workloads and registered solvers")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        return 0  # output piped into a pager/head that exited early
    except ZeroDivisionError:
        print(
            "error: zero denominator in a fractional value (e.g. bw=1/0)",
            file=sys.stderr,
        )
        return 2
    except (ValueError, KeyError, NotImplementedError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
