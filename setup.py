"""Package metadata for the SPAA 2009 reproduction.

Installing in editable mode puts ``repro`` on the path (no more
``PYTHONPATH=src``) and installs the ``repro`` console script::

    pip install -e .
    repro solve fig1 --model inorder
"""

import pathlib

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).parent
README = HERE / "README.md"

setup(
    name="repro-filtering-streams",
    version="1.1.0",
    description=(
        "Reproduction of 'Mapping Filtering Streaming Applications with "
        "Communication Costs' (Agrawal, Benoit, Dufosse, Robert; SPAA 2009)"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "pytest-cov"]},
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
    classifiers=[
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
