#!/usr/bin/env python
"""Query optimisation over web services — the paper's motivating workload.

A stream of records is filtered by independent web-service predicates
(Srivastava et al.'s setting, the paper's reference [1]).  We compare four
MinPeriod strategies under the OVERLAP model, all through the planner
facade (one solver registry, one shared evaluation cache):

* ``nocomm`` — the communication-free optimum of [1] (chain of filters +
  parallel expanders), re-evaluated with communication costs;
* ``chain`` — the chain greedy of Proposition 8;
* ``local-search`` — the greedy forest builder with reparenting search;
* ``exhaustive`` — the exact forest optimum (Proposition 4), ground truth.

Run:  python examples/query_optimization.py
"""

from repro.analysis import text_table
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application


def main() -> None:
    rows = []
    cache = EvaluationCache()  # shared across methods: identical graphs score once
    for seed in range(5):
        # Random predicate services: mostly selective (filters), a few
        # result-enriching joins (expanders).
        app = random_application(
            5, seed=seed, filter_fraction=0.7, cost_range=(1, 32)
        )
        by_method = {
            method: solve(
                app,
                objective="period",
                model="overlap",
                method=method,
                cache=cache,
                schedule=False,
            )
            for method in ("exhaustive", "chain", "local-search", "nocomm")
        }
        exact = by_method["exhaustive"].value
        base = by_method["nocomm"].value
        rows.append(
            (
                f"workload {seed}",
                exact,
                by_method["chain"].value,
                by_method["local-search"].value,
                base,
                f"{float(base / exact):.2f}x",
            )
        )
    print("MinPeriod under OVERLAP (lower is better):\n")
    print(
        text_table(
            [
                "instance",
                "exact",
                "chain (Prop 8)",
                "greedy+LS",
                "no-comm baseline",
                "baseline gap",
            ],
            rows,
        )
    )
    print(
        f"\nshared evaluation cache: {cache.misses} objective computations, "
        f"{cache.hits} served from memo"
    )
    print(
        "\nThe communication-free structure of [1] can be arbitrarily bad "
        "once communications are charged (Appendix B.1 pushes the gap to "
        "2x on its 202-service instance; see "
        "benchmarks/test_bench_b1_commcost.py)."
    )


if __name__ == "__main__":
    main()
