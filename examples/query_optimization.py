#!/usr/bin/env python
"""Query optimisation over web services — the paper's motivating workload.

A stream of records is filtered by independent web-service predicates
(Srivastava et al.'s setting, the paper's reference [1]).  We compare four
MinPeriod strategies under the OVERLAP model:

* the communication-free optimum of [1] (chain of filters + parallel
  expanders), re-evaluated with communication costs;
* the chain greedy of Proposition 8;
* the greedy forest builder with local search;
* the exact exhaustive forest optimum (Proposition 4) as ground truth.

Run:  python examples/query_optimization.py
"""

from repro.analysis import text_table
from repro.core import CommModel
from repro.optimize import (
    exhaustive_minperiod,
    greedy_minperiod,
    local_search_minperiod,
    minperiod_chain,
    nocomm_optimal_period_plan,
    period_objective,
)
from repro.workloads.generators import random_application


def main() -> None:
    rows = []
    for seed in range(5):
        # Random predicate services: mostly selective (filters), a few
        # result-enriching joins (expanders).
        app = random_application(
            5, seed=seed, filter_fraction=0.7, cost_range=(1, 32)
        )
        exact_val, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        chain_val, _ = minperiod_chain(app, CommModel.OVERLAP)
        greedy_val, greedy_graph = greedy_minperiod(app, CommModel.OVERLAP)
        ls_val, _ = local_search_minperiod(greedy_graph, CommModel.OVERLAP)
        _, base_graph = nocomm_optimal_period_plan(app)
        base_val = period_objective(base_graph, CommModel.OVERLAP)
        rows.append(
            (
                f"workload {seed}",
                exact_val,
                chain_val,
                ls_val,
                base_val,
                f"{float(base_val / exact_val):.2f}x",
            )
        )
    print("MinPeriod under OVERLAP (lower is better):\n")
    print(
        text_table(
            [
                "instance",
                "exact",
                "chain (Prop 8)",
                "greedy+LS",
                "no-comm baseline",
                "baseline gap",
            ],
            rows,
        )
    )
    print(
        "\nThe communication-free structure of [1] can be arbitrarily bad "
        "once communications are charged (Appendix B.1 pushes the gap to "
        "2x on its 202-service instance; see "
        "benchmarks/test_bench_b1_commcost.py)."
    )


if __name__ == "__main__":
    main()
