#!/usr/bin/env python
"""Quickstart: define a filtering application and solve it via the facade.

Builds a five-service filtering workflow, orchestrates a hand-chosen
execution graph under the paper's three communication models through
``repro.planner.solve``, and then lets the planner *search* for a better
graph (the mapping problem).

Run:  python examples/quickstart.py
      (the CLI offers the same facade over named paper instances,
      e.g.: python -m repro solve fig1 --model all)
"""

from fractions import Fraction

from repro import CommModel, CostModel, ExecutionGraph, make_application
from repro.analysis import text_table
from repro.planner import compare, solve


def main() -> None:
    # A small stream-processing pipeline: two selective filters, one
    # enrichment step that expands records, and two downstream consumers.
    app = make_application(
        [
            ("dedup", 2, Fraction(1, 2)),      # drops half the records
            ("classify", 4, Fraction(3, 4)),   # drops a quarter
            ("enrich", 3, Fraction(3, 2)),     # adds fields (expands)
            ("index", 5, 1),
            ("archive", 1, 1),
        ]
    )

    # An execution graph: filters first, then the expander, then both
    # consumers read the enriched stream.
    graph = ExecutionGraph(
        app,
        [
            ("dedup", "classify"),
            ("classify", "enrich"),
            ("enrich", "index"),
            ("enrich", "archive"),
        ],
    )

    costs = CostModel(graph)
    print("Execution graph:", sorted(graph.edges))
    print()

    # Orchestration: the graph is fixed; solve() runs each model's
    # scheduler and returns the achieved period with a validated plan.
    rows = []
    for result in compare(graph, objectives=["period"]):
        rows.append(
            (
                str(result.model),
                costs.period_lower_bound(result.model),
                result.value,
                "yes" if result.plan.is_valid() else "NO",
            )
        )
    print(text_table(["model", "period bound", "achieved", "valid"], rows))
    print()

    latency = solve(graph, objective="latency", model="overlap")
    print(
        f"latency: critical-path bound {costs.latency_lower_bound()} — "
        f"scheduled plan achieves {latency.value} "
        f"(valid: {latency.plan.is_valid()})"
    )
    print()

    # Mapping: hand the *application* to the planner and it searches over
    # execution graphs (exhaustive here, since n = 5 is small).
    mapped = solve(app, objective="period", model="overlap")
    print(
        f"planner ({mapped.method}) finds period {mapped.value} "
        f"with edges {sorted(mapped.graph.edges)}"
    )


if __name__ == "__main__":
    main()
