#!/usr/bin/env python
"""Quickstart: define a filtering application, schedule it, inspect plans.

Builds a five-service filtering workflow, maps it under the paper's three
communication models, and prints the resulting periods/latencies together
with their lower bounds.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import CommModel, CostModel, ExecutionGraph, make_application
from repro.analysis import text_table
from repro.scheduling import (
    inorder_schedule,
    oneport_latency_schedule,
    outorder_schedule,
    schedule_period_overlap,
)


def main() -> None:
    # A small stream-processing pipeline: two selective filters, one
    # enrichment step that expands records, and two downstream consumers.
    app = make_application(
        [
            ("dedup", 2, Fraction(1, 2)),      # drops half the records
            ("classify", 4, Fraction(3, 4)),   # drops a quarter
            ("enrich", 3, Fraction(3, 2)),     # adds fields (expands)
            ("index", 5, 1),
            ("archive", 1, 1),
        ]
    )

    # An execution graph: filters first, then the expander, then both
    # consumers read the enriched stream.
    graph = ExecutionGraph(
        app,
        [
            ("dedup", "classify"),
            ("classify", "enrich"),
            ("enrich", "index"),
            ("enrich", "archive"),
        ],
    )

    costs = CostModel(graph)
    print("Execution graph:", sorted(graph.edges))
    print()

    rows = []
    overlap = schedule_period_overlap(graph)
    rows.append(
        (
            "OVERLAP",
            costs.period_lower_bound(CommModel.OVERLAP),
            overlap.period,
            "yes" if overlap.validate().ok else "NO",
        )
    )
    inorder = inorder_schedule(graph)
    rows.append(
        (
            "INORDER",
            costs.period_lower_bound(CommModel.INORDER),
            inorder.period,
            "yes" if inorder.validate().ok else "NO",
        )
    )
    outorder = outorder_schedule(graph)
    rows.append(
        (
            "OUTORDER",
            costs.period_lower_bound(CommModel.OUTORDER),
            outorder.period,
            "yes" if outorder.validate().ok else "NO",
        )
    )
    print(text_table(["model", "period bound", "achieved", "valid"], rows))
    print()

    latency_plan = oneport_latency_schedule(graph)
    print(
        f"latency: critical-path bound {costs.latency_lower_bound()} — "
        f"serialized schedule achieves {latency_plan.latency} "
        f"(valid: {latency_plan.validate().ok})"
    )


if __name__ == "__main__":
    main()
