#!/usr/bin/env python
"""Gallery: every worked example of the paper, recomputed end to end.

* Section 2.3 (Figure 1): latency 21; periods 4 / 7 / 23-thirds.
* Appendix B.1 (Figure 4): communication costs flip the optimal structure.
* Appendix B.2 (Figure 5): multi-port latency 20, one-port > 20.
* Appendix B.3 (Figure 6): multi-port period 12, one-port > 12.

Run:  python examples/paper_gallery.py
"""

from repro.analysis import text_table
from repro.core import CommModel, CostModel, validate
from repro.scheduling import (
    b3_oneport_period12_feasible,
    exact_inorder_period,
    oneport_latency_schedule,
    outorder_schedule,
    overlap_latency_layered,
    saturated_bipartite_window_feasible,
    schedule_period_overlap,
)
from repro.workloads.paper import (
    b1_counterexample,
    b1_nocomm_plan_graph,
    b2_latency_ports,
    b3_period_ports,
    fig1_example,
    fig1_inorder_period_23_3_operation_list,
)


def section_2_3() -> None:
    inst = fig1_example()
    print("== Section 2.3 / Figure 1 ==")
    lat = oneport_latency_schedule(inst.graph)
    over = schedule_period_overlap(inst.graph)
    inorder_lam, _ = exact_inorder_period(inst.graph)
    out = outorder_schedule(inst.graph)
    rows = [
        ("latency (all models)", inst.expected["latency"], lat.latency),
        ("period OVERLAP", inst.expected["period_overlap"], over.period),
        ("period OUTORDER", inst.expected["period_outorder"], out.period),
        ("period INORDER", inst.expected["period_inorder"], inorder_lam),
    ]
    print(text_table(["quantity", "paper", "recomputed"], rows))
    ol = fig1_inorder_period_23_3_operation_list()
    print(
        "paper's hand-built 23/3 operation list validates:",
        validate(inst.graph, ol, CommModel.INORDER).ok,
    )
    print()


def appendix_b1() -> None:
    print("== Appendix B.1 / Figure 4 ==")
    good = b1_counterexample()
    bad = b1_nocomm_plan_graph()
    rows = [
        (
            "two-fan plan (comm-aware optimum)",
            CostModel(good.graph).period_lower_bound(CommModel.OVERLAP),
        ),
        (
            "chain plan (no-comm optimum) under OVERLAP",
            CostModel(bad).period_lower_bound(CommModel.OVERLAP),
        ),
    ]
    print(text_table(["plan", "OVERLAP period"], rows))
    print()


def appendix_b2() -> None:
    print("== Appendix B.2 / Figure 5 ==")
    inst = b2_latency_ports()
    plan = overlap_latency_layered(inst.graph)
    feasible = saturated_bipartite_window_feasible(
        inst.graph,
        [f"C{i}" for i in range(1, 7)],
        [f"C{j}" for j in range(7, 13)],
    )
    print(f"multi-port latency (window scheduler): {plan.latency} (paper: 20)")
    print(f"one-port schedule of latency 20 exists: {feasible} (paper: no)")
    print()


def appendix_b3() -> None:
    print("== Appendix B.3 / Figure 6 ==")
    inst = b3_period_ports(corrected=True)
    plan = schedule_period_overlap(inst.graph)
    print(f"multi-port period (Theorem 1): {plan.period} (paper: 12)")
    print(
        "one-port period-12 steady state exists:",
        b3_oneport_period12_feasible(inst.graph),
        "(paper: no)",
    )
    print()


def main() -> None:
    section_2_3()
    appendix_b1()
    appendix_b2()
    appendix_b3()


if __name__ == "__main__":
    main()
