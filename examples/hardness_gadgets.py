#!/usr/bin/env python
"""Tour of the executable NP-hardness reductions (Figures 9-12).

Each gadget turns an RN3DM (permutation sums) instance into a scheduling
instance whose optimum hits a threshold K exactly when the RN3DM instance
is solvable.  This script builds both a solvable and an unsolvable
instance and shows the thresholds separating.

Run:  python examples/hardness_gadgets.py
"""

from repro.analysis import text_table
from repro.reductions import (
    minlatency,
    minperiod_oneport,
    minperiod_overlap,
    orchestration_latency,
    orchestration_period,
)
from repro.reductions.rn3dm import RN3DMInstance, is_solvable, solve


def main() -> None:
    good = RN3DMInstance((2, 4, 6))      # lambda1 = lambda2 = identity
    bad = RN3DMInstance((2, 2, 8, 8))    # two positions demand 1+1: clash
    print(f"solvable instance   A = {good.A}: certificate {solve(good)}")
    print(f"unsolvable instance A = {bad.A}: solvable? {is_solvable(bad)}")
    print()

    rows = []

    g9 = orchestration_period.build(good)
    b9 = orchestration_period.build(bad)
    rows.append(
        (
            "Fig 9: one-port period orchestration",
            f"K = {g9.K}",
            f"{orchestration_period.forward_period(g9)}",
            str(orchestration_period.decision(b9)),
        )
    )

    g10 = minperiod_overlap.build(good)
    b10 = minperiod_overlap.build(bad)
    rows.append(
        (
            "Fig 10: MinPeriod-OVERLAP",
            f"K = {g10.K}",
            "<= K" if minperiod_overlap.forward_period(g10) <= g10.K else "> K",
            str(minperiod_overlap.structure_restricted_decision(b10)),
        )
    )

    g11 = minperiod_oneport.build(good)
    b11 = minperiod_oneport.build(bad)
    rows.append(
        (
            "Fig 11: MinPeriod one-port",
            f"K = {g11.K}",
            "<= K" if minperiod_oneport.forward_period(g11) <= g11.K else "> K",
            str(minperiod_oneport.structure_restricted_decision(b11)),
        )
    )

    g12 = orchestration_latency.build(good)
    b12 = orchestration_latency.build(bad)
    rows.append(
        (
            "Fig 12: latency orchestration",
            f"K = {g12.K}",
            f"{orchestration_latency.optimal_latency(g12)}",
            str(orchestration_latency.decision(b12)),
        )
    )

    gl = minlatency.build(good)
    bl = minlatency.build(bad)
    rows.append(
        (
            "Props 13-15: MinLatency",
            f"K = {float(gl.K):.4f}",
            "<= K" if minlatency.optimal_fork_join_latency(gl) <= gl.K else "> K",
            str(minlatency.decision(bl)),
        )
    )

    print(
        text_table(
            ["reduction", "threshold", "solvable: optimum", "unsolvable: <= K?"],
            rows,
        )
    )
    print(
        "\nEvery 'unsolvable' column must read False: the gadget optimum "
        "crosses K exactly when RN3DM is solvable — the paper's Theorems "
        "1-4, executed."
    )


if __name__ == "__main__":
    main()
