#!/usr/bin/env python
"""Compare the three communication models on synthetic streaming workloads.

For each random execution graph the planner facade computes the achieved
period under OVERLAP (optimal, Theorem 1), INORDER (exact/greedy MCR
orchestration) and OUTORDER (repair scheduler), plus the one-port lower
bound — showing both the model ordering and the occasional "23/3
phenomenon" where INORDER cannot meet its bound.

Run:  python examples/model_comparison.py
"""

from repro.analysis import text_table
from repro.core import ALL_MODELS, CommModel, CostModel
from repro.planner import solve
from repro.simulate import simulate_plan
from repro.workloads.generators import layered_instance, random_application, random_execution_graph


def random_sweep() -> None:
    print("Random DAG workloads (5 services):\n")
    rows = []
    for seed in range(6):
        app = random_application(5, seed=seed)
        graph = random_execution_graph(app, seed=seed + 50, density=0.4)
        lb = CostModel(graph).period_lower_bound(CommModel.INORDER)
        by_model = {
            model: solve(graph, objective="period", model=model)
            for model in ALL_MODELS
        }
        # Cross-check each scheduled plan on the discrete-event engine.
        for result in by_model.values():
            sim = simulate_plan(result.plan, n_datasets=4)
            assert sim.ok, sim.violations
        rows.append(
            (
                f"seed {seed}",
                by_model[CommModel.OVERLAP].value,
                by_model[CommModel.OUTORDER].value,
                by_model[CommModel.INORDER].value,
                lb,
            )
        )
    print(
        text_table(
            ["instance", "OVERLAP", "OUTORDER", "INORDER", "one-port bound"],
            rows,
        )
    )
    print()


def layered_workload() -> None:
    print("Layered (stage-parallel) workload, 3 x 3 x 3 services:\n")
    app, graph = layered_instance([3, 3, 3], seed=4)
    rows = []
    for model in ALL_MODELS:
        result = solve(graph, objective="period", model=model)
        lb = CostModel(graph).period_lower_bound(model)
        rows.append(
            (str(model), lb, result.value, str(result.plan.validate().ok))
        )
    print(text_table(["model", "bound", "achieved", "valid"], rows))


def main() -> None:
    random_sweep()
    layered_workload()


if __name__ == "__main__":
    main()
