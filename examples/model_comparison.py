#!/usr/bin/env python
"""Compare the three communication models on synthetic streaming workloads.

For each random execution graph we compute the achieved period under
OVERLAP (optimal, Theorem 1), INORDER (exact/greedy MCR orchestration) and
OUTORDER (repair scheduler), plus the one-port lower bound — showing both
the model ordering and the occasional "23/3 phenomenon" where INORDER
cannot meet its bound.

Run:  python examples/model_comparison.py
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel
from repro.scheduling import (
    inorder_schedule,
    outorder_schedule,
    schedule_period_overlap,
)
from repro.simulate import simulate_plan
from repro.workloads.generators import layered_instance, random_application, random_execution_graph


def random_sweep() -> None:
    print("Random DAG workloads (5 services):\n")
    rows = []
    for seed in range(6):
        app = random_application(5, seed=seed)
        graph = random_execution_graph(app, seed=seed + 50, density=0.4)
        lb = CostModel(graph).period_lower_bound(CommModel.INORDER)
        p_over = schedule_period_overlap(graph)
        p_in = inorder_schedule(graph)
        p_out = outorder_schedule(graph)
        # Cross-check each plan on the discrete-event engine.
        for plan in (p_over, p_in, p_out):
            sim = simulate_plan(plan, n_datasets=4)
            assert sim.ok, sim.violations
        rows.append(
            (f"seed {seed}", p_over.period, p_out.period, p_in.period, lb)
        )
    print(
        text_table(
            ["instance", "OVERLAP", "OUTORDER", "INORDER", "one-port bound"],
            rows,
        )
    )
    print()


def layered_workload() -> None:
    print("Layered (stage-parallel) workload, 3 x 3 x 3 services:\n")
    app, graph = layered_instance([3, 3, 3], seed=4)
    rows = []
    for label, plan in (
        ("OVERLAP", schedule_period_overlap(graph)),
        ("INORDER", inorder_schedule(graph)),
        ("OUTORDER", outorder_schedule(graph)),
    ):
        lb = CostModel(graph).period_lower_bound(plan.model)
        rows.append((label, lb, plan.period, str(plan.validate().ok)))
    print(text_table(["model", "bound", "achieved", "valid"], rows))


def main() -> None:
    random_sweep()
    layered_workload()


if __name__ == "__main__":
    main()
