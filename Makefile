# Development targets. `make test` is the tier-1 gate.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test coverage bench bench-platform bench-search bench-concurrent \
	bench-batched bench-serve bench-topology bench-dynamic bench-robust \
	bench-compare serve-smoke profile docs gallery install

test:            ## unit + integration tests and benchmark assertions
	$(PYTHON) -m pytest -x -q

coverage:        ## tests with a coverage report and an 85% floor on src/repro
	$(PYTHON) -m pytest tests -q --cov=repro --cov-report=term-missing \
		--cov-report=xml:benchmarks/results/coverage.xml --cov-fail-under=85

bench:           ## regenerate the paper tables under benchmarks/results/
	$(PYTHON) -m pytest benchmarks -q

bench-platform:  ## heterogeneous-platform scaling table (platform_scaling.txt)
	$(PYTHON) -m pytest benchmarks/test_bench_platform.py -q

bench-search:    ## branch-and-bound / incremental-delta perf (BENCH_search.json)
	$(PYTHON) -m pytest benchmarks/test_bench_search.py -q
	$(PYTHON) benchmarks/compare_bench.py --stamp

bench-concurrent: ## shared-server multi-app scaling (BENCH_concurrent.json)
	$(PYTHON) -m pytest benchmarks/test_bench_concurrent.py -q
	$(PYTHON) benchmarks/compare_bench.py --stamp

bench-batched:   ## batched-kernel throughput + anytime curve (BENCH_batched.json)
	$(PYTHON) -m pytest benchmarks/test_bench_batched.py -q

bench-serve:     ## planner-daemon load test: rps + p50/p99 per mix (BENCH_serve.json)
	$(PYTHON) -m pytest benchmarks/test_bench_serve.py -q

bench-topology:  ## hierarchical vs flat placement on tree/torus (BENCH_topology.json)
	$(PYTHON) -m pytest benchmarks/test_bench_topology.py -q

bench-dynamic:   ## warm re-planning vs cold re-solve on a flash crowd (BENCH_dynamic.json)
	$(PYTHON) -m pytest benchmarks/test_bench_dynamic.py -q

bench-robust:    ## robust vs nominal degradation sweep (BENCH_robust.json)
	$(PYTHON) -m pytest benchmarks/test_bench_robust.py -q

serve-smoke:     ## start the real daemon subprocess; solve/stats/shutdown round trip
	$(PYTHON) -m pytest tests/test_serve.py -q -m smoke

bench-compare:   ## perf-regression guard: snapshot committed BENCH_*.json, regenerate, diff
	$(PYTHON) benchmarks/compare_bench.py --snapshot
	$(PYTHON) -m pytest benchmarks/test_bench_search.py benchmarks/test_bench_concurrent.py -q
	$(PYTHON) benchmarks/compare_bench.py

profile:         ## cProfile a representative solve (evidence for perf PRs)
	$(PYTHON) -m repro profile random:n=9,seed=4 --method branch-and-bound

docs:            ## execute the documented examples (doctests + quickstarts)
	$(PYTHON) -m pytest tests/test_docs.py -q
	$(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) -m repro gallery > /dev/null
	@echo "docs examples OK"

gallery:         ## batch-solve the paper's named instances
	$(PYTHON) -m repro gallery

install:         ## editable install with the `repro` console script
	$(PYTHON) -m pip install -e .
