"""Tests for period orchestration: OVERLAP (Thm 1), INORDER (MCR), OUTORDER."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommModel, CostModel, ExecutionGraph, make_application
from repro.scheduling import (
    CommOrders,
    exact_inorder_period,
    greedy_orders,
    inorder_period_for_orders,
    inorder_schedule,
    inorder_schedule_for_orders,
    order_space_size,
    outorder_period_bound,
    outorder_schedule,
    overlap_period_bound,
    schedule_period_overlap,
)

F = Fraction


def small_app(n, data, max_cost=6):
    return make_application(
        [
            (
                f"C{i}",
                data.draw(st.integers(0, max_cost)),
                data.draw(st.sampled_from([F(1, 2), F(1), F(2)])),
            )
            for i in range(n)
        ]
    )


def random_dag(app, data):
    names = list(app.names)
    edges = []
    for j in range(1, len(names)):
        for i in range(j):
            if data.draw(st.booleans()):
                edges.append((names[i], names[j]))
    return ExecutionGraph(app, edges)


class TestOverlapScheduler:
    def test_single_service(self):
        app = make_application([("a", 3, F(1, 2))])
        plan = schedule_period_overlap(ExecutionGraph(app, []))
        assert plan.period == 3
        assert plan.validate().ok

    def test_stretched_period(self):
        app = make_application([("a", 3, F(1, 2))])
        plan = schedule_period_overlap(ExecutionGraph(app, []), period=F(10))
        assert plan.period == 10
        assert plan.validate().ok

    def test_below_bound_rejected(self):
        app = make_application([("a", 3, F(1, 2))])
        with pytest.raises(ValueError):
            schedule_period_overlap(ExecutionGraph(app, []), period=F(1))

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_achieves_bound_and_validates(self, data):
        """Theorem 1: the bound is achieved on random DAGs."""
        n = data.draw(st.integers(2, 6))
        app = small_app(n, data)
        graph = random_dag(app, data)
        plan = schedule_period_overlap(graph)
        assert plan.period == overlap_period_bound(graph)
        report = plan.validate()
        assert report.ok, report.violations


class TestInorderScheduler:
    def test_chain_meets_bound(self):
        app = make_application([("a", 2, F(1, 2)), ("b", 4, 2)])
        graph = ExecutionGraph.chain(app, ["a", "b"])
        lam, plan = exact_inorder_period(graph)
        assert lam == CostModel(graph).period_lower_bound(CommModel.INORDER)
        assert plan.validate().ok

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_exact_schedules_validate(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data, max_cost=4)
        graph = random_dag(app, data)
        lam, plan = exact_inorder_period(graph)
        report = plan.validate()
        assert report.ok, report.violations
        assert lam >= CostModel(graph).period_lower_bound(CommModel.INORDER)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_greedy_orders_ge_exact(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data, max_cost=4)
        graph = random_dag(app, data)
        exact_lam, _ = exact_inorder_period(graph)
        greedy_lam = inorder_period_for_orders(graph, greedy_orders(graph))
        assert greedy_lam >= exact_lam

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_chains_always_meet_bound(self, data):
        """Prop 8's premise: on chains the one-port bound is achievable."""
        n = data.draw(st.integers(2, 5))
        app = small_app(n, data)
        graph = ExecutionGraph.chain(app, list(app.names))
        lam = inorder_period_for_orders(graph, CommOrders.canonical(graph))
        assert lam == CostModel(graph).period_lower_bound(CommModel.INORDER)

    def test_order_space_size(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(4)])
        graph = ExecutionGraph(
            app, [("C0", "C1"), ("C0", "C2"), ("C1", "C3"), ("C2", "C3")]
        )
        # C0: 2 successors (2!), C3: 2 predecessors (2!) -> 4
        assert order_space_size(graph) == 4

    def test_exact_guard(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(9)])
        graph = ExecutionGraph(app, [("C0", f"C{i}") for i in range(1, 9)])
        with pytest.raises(ValueError):
            exact_inorder_period(graph, max_configs=10)


class TestOutorderScheduler:
    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_valid_and_bounded(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data, max_cost=4)
        graph = random_dag(app, data)
        plan = outorder_schedule(graph)
        report = plan.validate()
        assert report.ok, report.violations
        assert plan.period >= outorder_period_bound(graph)
        # never worse than INORDER
        inorder_plan = inorder_schedule(graph)
        assert plan.period <= inorder_plan.period

    def test_inorder_list_is_outorder_valid(self):
        from repro.core import validate

        app = make_application([("a", 2, 1), ("b", 3, 1), ("c", 1, 1)])
        graph = ExecutionGraph(app, [("a", "b"), ("a", "c")])
        plan = inorder_schedule(graph)
        assert validate(graph, plan.operation_list, CommModel.OUTORDER).ok
