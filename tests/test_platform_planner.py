"""Planner-level platform tests: cache keys, placement search, facade, CLI.

Covers the regression demanded by the heterogeneous-platform issue: the
evaluation-cache key must discriminate the communication model *and* the
platform/mapping fingerprint (a heterogeneous solve must never be answered
from a homogeneous entry), the placement local search must take strictly
improving reassignment moves, and the documented ``hetdemo`` instance must
produce a *different* optimal execution graph than its homogeneous
counterpart.
"""

from fractions import Fraction

import pytest

from repro import ExecutionGraph, Mapping, Platform, make_application
from repro.core import CommModel, CostModel
from repro.optimize import (
    Effort,
    greedy_mapping,
    iter_mappings,
    mapping_space_size,
    optimize_mapping,
    placement_local_search,
)
from repro.planner import EvaluationCache, evaluation_key, load_platform, solve
from repro.planner.catalog import load_workload, platform_names
from repro.workloads import fig1_example
from repro.__main__ import main as cli_main

F = Fraction


# ---------------------------------------------------------------------------
# Satellite: cache key regression — no cross-model / cross-platform collisions
# ---------------------------------------------------------------------------

class TestCacheKeys:
    def test_key_differs_across_models_with_equal_values(self):
        # INORDER and OUTORDER share the one-port BOUND value (7 on fig1):
        # equal values must still come from distinct entries.
        graph = fig1_example().graph
        cache = EvaluationCache()
        v_in = cache.objective("period", CommModel.INORDER, Effort.BOUND)(graph)
        v_out = cache.objective("period", CommModel.OUTORDER, Effort.BOUND)(graph)
        assert v_in == v_out == F(7)
        assert cache.misses == 2 and cache.hits == 0
        assert evaluation_key(
            "period", graph, CommModel.INORDER, Effort.BOUND
        ) != evaluation_key("period", graph, CommModel.OUTORDER, Effort.BOUND)

    def test_key_differs_across_objective_kinds(self):
        graph = fig1_example().graph
        assert evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.HEURISTIC
        ) != evaluation_key("latency", graph, CommModel.OVERLAP, Effort.HEURISTIC)

    def test_unit_platforms_share_entries_with_none(self):
        graph = fig1_example().graph
        cache = EvaluationCache()
        plain = cache.objective("period", CommModel.OVERLAP)
        unit = cache.objective(
            "period", CommModel.OVERLAP, platform=Platform.homogeneous(5)
        )
        assert plain(graph) == unit(graph) == F(4)
        assert cache.misses == 1 and cache.hits == 1  # deliberate sharing

    def test_heterogeneous_never_hits_homogeneous_entries(self):
        graph = fig1_example().graph
        het = Platform.of(speeds=[1, 2, 1, F(1, 2), 1])
        mapping = Mapping.default(graph.nodes, het)
        cache = EvaluationCache()
        hom_value = cache.objective("period", CommModel.OVERLAP)(graph)
        het_obj = cache.objective(
            "period", CommModel.OVERLAP, platform=het, mapping=mapping
        )
        het_value = het_obj(graph)
        assert cache.misses == 2 and cache.hits == 0
        assert hom_value == F(4) and het_value == F(8)  # C4 runs at speed 1/2

    def test_distinct_mappings_get_distinct_entries(self):
        app = make_application([("A", 1, 1), ("B", 9, 1)])
        graph = ExecutionGraph.empty(app)
        het = Platform.of(speeds=[1, 3])
        cache = EvaluationCache()
        a = cache.objective(
            "period", CommModel.OVERLAP, platform=het,
            mapping=Mapping({"A": "S1", "B": "S2"}),
        )(graph)
        b = cache.objective(
            "period", CommModel.OVERLAP, platform=het,
            mapping=Mapping({"A": "S2", "B": "S1"}),
        )(graph)
        assert cache.misses == 2 and cache.hits == 0
        assert a == F(3) and b == F(9)

    def test_free_mapping_is_keyed_apart_from_pinned(self):
        graph = ExecutionGraph.empty(make_application([("A", 1, 1), ("B", 9, 1)]))
        het = Platform.of(speeds=[1, 3])
        pinned = Mapping({"A": "S2", "B": "S1"})
        key_free = evaluation_key("period", graph, CommModel.OVERLAP, Effort.HEURISTIC, het)
        key_pin = evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.HEURISTIC, het, pinned
        )
        assert key_free != key_pin


# ---------------------------------------------------------------------------
# Satellite: placement search + local-search moves on heterogeneous platforms
# ---------------------------------------------------------------------------

class TestPlacement:
    def test_mapping_space_and_enumeration(self):
        assert mapping_space_size(2, 3) == 6
        assert mapping_space_size(3, 2) == 0
        p = Platform.homogeneous(3)
        assert sum(1 for _ in iter_mappings(("A", "B"), p)) == 6

    def test_greedy_mapping_puts_heavy_work_on_fast_servers(self):
        app = make_application([("A", 1, 1), ("B", 9, 1), ("C", 5, 1)])
        graph = ExecutionGraph.empty(app)
        p = Platform.of(speeds=[1, 4, 2])
        m = greedy_mapping(graph, p)
        assert m.server("B") == "S2" and m.server("C") == "S3" and m.server("A") == "S1"

    def test_reassignment_to_faster_idle_server_is_taken(self):
        # The heavy service starts on a slow server while a strictly faster
        # one idles: the strictly improving move must never be rejected.
        app = make_application([("A", 1, 1), ("B", 9, 1)])
        graph = ExecutionGraph.empty(app)
        platform = Platform.of(speeds=[1, 1, 3])
        objective = lambda m: CostModel(graph, platform, m).period_lower_bound(
            CommModel.OVERLAP
        )
        start = Mapping({"A": "S1", "B": "S2"})
        assert objective(start) == F(9)
        value, best = placement_local_search(graph, objective, start, platform)
        assert best.server("B") == "S3"
        assert value == F(3)

    def test_swap_move_fixes_inverted_assignment(self):
        # No idle server: only the swap neighbourhood can repair this.
        app = make_application([("A", 1, 1), ("B", 9, 1)])
        graph = ExecutionGraph.empty(app)
        platform = Platform.of(speeds=[1, 3])
        objective = lambda m: CostModel(graph, platform, m).period_lower_bound(
            CommModel.OVERLAP
        )
        start = Mapping({"A": "S2", "B": "S1"})
        value, best = placement_local_search(graph, objective, start, platform)
        assert value == F(3) and best.server("B") == "S2"

    def test_optimize_mapping_exhaustive_matches_enumeration(self):
        graph = fig1_example().graph
        het = Platform.of(speeds=[1, 2, 1, F(1, 2), 4], links={("S1", "S3"): F(1, 2)})
        value, mapping = optimize_mapping(
            graph, "period", CommModel.OVERLAP, Effort.HEURISTIC, het
        )
        brute = min(
            CostModel(graph, het, m).period_lower_bound(CommModel.OVERLAP)
            for m in iter_mappings(graph.nodes, het)
        )
        assert value == brute
        assert CostModel(graph, het, mapping).period_lower_bound(
            CommModel.OVERLAP
        ) == value

    def test_optimize_mapping_rejects_undersized_platform(self):
        graph = fig1_example().graph
        with pytest.raises(ValueError):
            optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.HEURISTIC,
                Platform.homogeneous(3),
            )

    def test_greedy_mapping_rejects_undersized_platform(self):
        # zip() must not silently truncate to a partial mapping.
        graph = fig1_example().graph
        with pytest.raises(ValueError):
            greedy_mapping(graph, Platform.homogeneous(3))


# ---------------------------------------------------------------------------
# Facade: paper parity on Platform.homogeneous + the documented separation
# ---------------------------------------------------------------------------

class TestFacadePlatform:
    def test_fig1_reference_values_on_homogeneous_platform(self):
        graph = fig1_example().graph
        hom = Platform.homogeneous(5)
        for model, want in [
            ("overlap", F(4)), ("inorder", F(23, 3)), ("outorder", F(7)),
        ]:
            result = solve(graph, objective="period", model=model, platform=hom)
            assert result.value == want
            assert result.plan is not None and result.plan.is_valid()
        latency = solve(graph, objective="latency", model="inorder", platform=hom)
        assert latency.value == F(21)

    def test_appendix_values_on_homogeneous_platform(self):
        b1 = load_workload("b1")
        assert solve(
            b1.graph, model="overlap",
            platform=Platform.homogeneous(len(b1.application)),
        ).value == F(100)
        b2 = load_workload("b2")
        assert solve(
            b2.graph, objective="latency", model="overlap",
            platform=Platform.homogeneous(12),
        ).value == F(20)
        b3 = load_workload("b3")
        assert solve(
            b3.graph, model="overlap", platform=Platform.homogeneous(8),
        ).value == F(12)

    def test_hetdemo_optimal_graph_differs_from_homogeneous(self):
        # The documented separation instance: on the unit platform the
        # filter chain A->B wins (period 4); on demo2 the 1/100 link makes
        # any edge prohibitive and the empty forest with B on the speed-4
        # server wins (period 2).
        wl = load_workload("hetdemo")
        hom = solve(wl.application, objective="period", model="overlap")
        het = solve(
            wl.application, objective="period", model="overlap",
            platform=wl.platform,
        )
        assert sorted(hom.graph.edges) == [("A", "B")] and hom.value == F(4)
        assert het.graph.edges == frozenset() and het.value == F(2)
        assert het.graph.edges != hom.graph.edges
        assert het.mapping is not None and het.mapping.server("B") == "S2"
        assert het.plan is not None and het.plan.is_valid()
        assert het.value == wl.expected["period_overlap_demo2"]

    def test_platform_spec_strings_resolve(self):
        for spec in platform_names():
            if spec in ("hom", "het"):
                spec = f"{spec}:n=4"
            p = load_platform(spec)
            assert len(p) >= 2
        with pytest.raises(ValueError):
            load_platform("nosuch")
        with pytest.raises(ValueError):
            load_platform("het4:n=2")  # named platforms take no options

    def test_solve_accepts_spec_string_and_mapping_dict(self):
        app = make_application([("A", 1, 1), ("B", 9, 1)])
        result = solve(
            app, objective="period", model="overlap",
            platform="hom:n=2",
        )
        assert result.value == F(9) and result.platform_label == "unit"
        het = solve(
            ExecutionGraph.empty(app), objective="period", model="overlap",
            platform=Platform.of(speeds=[1, 3]), mapping={"A": "S1", "B": "S2"},
        )
        assert het.value == F(3) and het.mapping.server("B") == "S2"

    def test_mapping_without_platform_is_rejected(self):
        app = make_application([("A", 1, 1)])
        with pytest.raises(ValueError):
            solve(app, mapping={"A": "S1"})

    def test_undersized_platform_is_rejected_early(self):
        graph = fig1_example().graph
        with pytest.raises(ValueError):
            solve(graph, platform=Platform.homogeneous(2))

    def test_chain_solver_rescores_on_heterogeneous_platform(self):
        # The chain closed forms assume the unit platform; on demo2 the
        # reported value must be the chain's true platform value (the slow
        # link makes the A->B edge cost 50), not the unit-platform 4.
        wl = load_workload("hetdemo")
        result = solve(
            wl.application, objective="period", model="overlap",
            method="chain", platform=wl.platform,
        )
        assert result.value == F(50)
        assert result.stats.extras["unit_chain_value"] == F(4)
        assert result.scheduled_value == result.value

    def test_simulate_checks_heterogeneous_plans_with_their_platform(self):
        from repro.scheduling.overlap import schedule_period_overlap
        from repro.simulate import simulate_plan

        graph = fig1_example().graph
        het = Platform.of(speeds=[1, 2, 1, F(1, 2), 1], links={("S1", "S2"): F(1, 2)})
        mapping = Mapping.default(graph.nodes, het)
        plan = schedule_period_overlap(graph, platform=het, mapping=mapping)
        result = simulate_plan(plan)
        assert result.ok, result.violations

    def test_het_variants_solve_with_pinned_mapping(self):
        for name, objective in (("b2het", "latency"), ("b3het", "period")):
            wl = load_workload(name)
            assert wl.platform is not None and wl.mapping is not None
            result = solve(
                wl.problem, objective=objective, model="overlap",
                platform=wl.platform, mapping=wl.mapping,
            )
            assert result.value > 0
            assert result.plan is not None and result.plan.is_valid()


# ---------------------------------------------------------------------------
# CLI smoke: --platform on solve and gallery
# ---------------------------------------------------------------------------

class TestCli:
    def test_solve_with_platform_spec(self, capsys):
        assert cli_main(["solve", "hetdemo", "--remap"]) == 0
        out = capsys.readouterr().out
        assert "het(2)" in out

    def test_gallery_platform_smoke(self, capsys):
        assert cli_main(["gallery", "--platform", "--json"]) == 0
        out = capsys.readouterr().out
        for name in ("b1het", "b2het", "b3het", "hetdemo"):
            assert name in out
        assert '"plan_valid": true' in out

    def test_list_mentions_platforms(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "het4" in out and "demo2" in out
