"""Online re-planning: events, warm-started bounded repair, replay.

Covers the PR's tentpole and its satellite bugfixes:

* the empty-system regression — :class:`~repro.concurrent.ConcurrentCosts`
  on a system with no placed services used to raise ``ValueError`` from
  ``max()``; it must read period 0, utilisation 0, feasible;
* event validation, CSV round-trips and the three trace generators
  (flash crowd, diurnal, rolling maintenance);
* :func:`~repro.dynamic.replan` semantics: no-op bit-for-bit stability,
  the voluntary-migration budget, forced evacuations under drains, and
  the feasibility-overrides-budget cold fallback;
* the contention gate, audited per caller: every search that would build
  an :class:`~repro.optimize.IncrementalSharedCosts` on a contended
  topology must dispatch to ``FullPlacementCosts`` instead;
* :func:`~repro.dynamic.replay` aggregates and the ``repro replay`` CLI.
"""

import json
from fractions import Fraction

import pytest

from repro import Mapping, Platform
from repro.__main__ import main as cli_main
from repro.concurrent import ConcurrentApp, ConcurrentCosts, MultiApplication
from repro.core import Application, CommModel, ExecutionGraph
from repro.dynamic import (
    DIURNAL_CURVE,
    DynamicState,
    Event,
    KINDS,
    ScenarioTrace,
    apply_event,
    cold_solve,
    diurnal_trace,
    flash_crowd_trace,
    initial_state,
    load_trace,
    maintenance_trace,
    migration_sizes,
    replan,
    replay,
)
from repro.optimize import (
    IncrementalSharedCosts,
    greedy_shared_mapping,
    optimize_shared_mapping,
)
from repro.optimize.incremental import (
    FullPlacementCosts,
    exact_placement_value,
    placement_evaluator,
)
from repro.planner import load_concurrent_workload, load_platform

F = Fraction


def tree_platform() -> Platform:
    """A contended 2-rack tree: the oversubscribed uplink is shared."""
    platform = load_platform("tree:racks=2,servers=2,up_bw=1/2")
    assert platform.has_contention
    return platform


def admitted_state(platform=None, *, workload="fig1", rho=F(40)) -> DynamicState:
    state = initial_state([], platform=platform or Platform.homogeneous(3))
    return replan(
        state, Event("admit", app="a", workload=workload, rho=rho)
    ).state


# ---------------------------------------------------------------------------
# Satellite bugfix: the empty system
# ---------------------------------------------------------------------------

class TestEmptySystem:
    def test_costs_on_empty_member_do_not_crash(self):
        # Constructible before this PR too: an application with zero
        # services.  max_utilisation() used to raise ValueError from
        # ``max()`` on no used servers; system_period() likewise.
        multi = MultiApplication(
            [ConcurrentApp("a", ExecutionGraph.empty(Application(())))]
        )
        costs = ConcurrentCosts(multi, Platform.homogeneous(2), Mapping.shared({}))
        assert costs.max_utilisation() == 0
        assert costs.system_period() == 0
        assert costs.is_feasible()

    def test_zero_member_multi_application(self):
        multi = MultiApplication([])
        assert len(multi) == 0
        assert multi.total_services == 0
        costs = ConcurrentCosts(multi, Platform.homogeneous(2), Mapping.shared({}))
        assert costs.max_utilisation() == 0
        assert costs.is_feasible()

    def test_optimize_shared_mapping_empty_graph(self):
        multi = MultiApplication([])
        value, mapping = optimize_shared_mapping(
            multi.combined_graph, CommModel.OVERLAP, Platform.homogeneous(2),
            weights=None,
        )
        assert value == 0
        assert dict(mapping.items()) == {}

    def test_evict_to_empty_replay(self):
        # The regression path end to end: the last step reads out the
        # empty system without crashing.
        trace = ScenarioTrace([
            Event("admit", time=0, app="a", workload="fig1", rho=F(40)),
            Event("evict", time=1, app="a"),
        ])
        report = replay(trace, Platform.homogeneous(2))
        last = report.steps[-1]
        assert last.services == 0
        assert last.warm_period == 0
        assert last.warm_feasible
        assert report.final.multi.total_services == 0


# ---------------------------------------------------------------------------
# Events and traces
# ---------------------------------------------------------------------------

class TestEvents:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event("arrive")
        with pytest.raises(ValueError, match="application name"):
            Event("admit", workload="fig1")
        with pytest.raises(ValueError, match="workload spec"):
            Event("admit", app="a")
        with pytest.raises(ValueError, match="rho target"):
            Event("load", app="a")
        with pytest.raises(ValueError, match="rho must be > 0"):
            Event("load", app="a", rho=0)
        with pytest.raises(ValueError, match="at least one server"):
            Event("drain")
        assert Event("noop").label() == "noop"

    def test_labels(self):
        assert Event("admit", app="a", workload="fig1", rho=5).label() == \
            "admit a(rho=5)"
        assert Event("drain", servers=("S1", "S2")).label() == "drain S1,S2"
        assert Event("evict", app="a").label() == "evict a"

    def test_dict_roundtrip(self):
        event = Event("admit", time=F(3, 2), app="a", workload="chain:n=3",
                      rho=F(7, 2))
        assert Event.from_dict(event.as_dict()) == event
        with pytest.raises(ValueError, match="unknown event field"):
            Event.from_dict({"kind": "noop", "bogus": 1})
        with pytest.raises(ValueError, match="'kind'"):
            Event.from_dict({"app": "a"})

    def test_resolve_graph_requires_single_application(self):
        with pytest.raises(ValueError, match="single"):
            Event("admit", app="a", workload="fig1+fig1").resolve_graph()

    def test_csv_roundtrip(self, tmp_path):
        trace = flash_crowd_trace(10, seed=3)
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        assert ScenarioTrace.load_csv(path) == trace
        assert load_trace(f"@{path}") == trace
        assert load_trace(str(path)) == trace

    def test_csv_refuses_programmatic_graphs(self, tmp_path):
        graph = ExecutionGraph.empty(Application(()))
        trace = ScenarioTrace([Event("admit", app="a", graph=graph)])
        with pytest.raises(ValueError, match="cannot round-trip"):
            trace.save_csv(tmp_path / "trace.csv")

    def test_csv_rejects_wrong_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,kind\n0,noop\n")
        with pytest.raises(ValueError, match="needs columns"):
            ScenarioTrace.load_csv(path)

    def test_trace_orders_by_time(self):
        trace = ScenarioTrace([
            Event("noop", time=5), Event("noop", time=1), Event("noop", time=3),
        ])
        assert [e.time for e in trace] == [1, 3, 5]


class TestGenerators:
    def test_flash_crowd_is_deterministic_and_consistent(self):
        trace = flash_crowd_trace(20, seed=11)
        assert len(trace) == 20
        assert trace == flash_crowd_trace(20, seed=11)
        assert trace != flash_crowd_trace(20, seed=12)
        kinds = [e.kind for e in trace]
        assert kinds.count("admit") == 12
        assert kinds.count("load") == 4
        assert kinds.count("evict") == 4
        # Every load/evict targets an application admitted earlier.
        live = set()
        for event in trace:
            if event.kind == "admit":
                assert event.app not in live
                live.add(event.app)
            else:
                assert event.app in live
        with pytest.raises(ValueError, match=">= 5"):
            flash_crowd_trace(4)

    def test_diurnal_follows_the_curve(self):
        trace = diurnal_trace(2, 1, base_rho=F(40))
        admits = [e for e in trace if e.kind == "admit"]
        loads = [e for e in trace if e.kind == "load"]
        assert len(admits) == 2
        assert len(loads) == 2 * (len(DIURNAL_CURVE) - 1)
        assert all(e.rho == F(40) * DIURNAL_CURVE[0] for e in admits)
        # slot 5 is the midday trough: the tightest target of the day
        assert min(e.rho for e in loads) == F(40) * min(DIURNAL_CURVE)

    def test_maintenance_drains_one_group_at_a_time(self):
        platform = tree_platform()
        trace = maintenance_trace(platform)
        groups = platform.topology.groups()
        drains = [e for e in trace if e.kind == "drain"]
        restores = [e for e in trace if e.kind == "restore"]
        assert len(drains) == len(restores) == len(groups)
        assert [d.servers for d in drains] == [tuple(m) for _, m in groups]
        # Each drain is restored before the next group goes down.
        out = set()
        for event in trace:
            if event.kind == "drain":
                assert not out
                out |= set(event.servers)
            else:
                out -= set(event.servers)

    def test_maintenance_refuses_single_group_platforms(self):
        with pytest.raises(ValueError, match="topology groups"):
            maintenance_trace(Platform.homogeneous(3))

    def test_load_trace_families(self):
        assert load_trace("flash:n=10,seed=3") == flash_crowd_trace(10, seed=3)
        assert load_trace("diurnal:apps=2,cycles=2") == diurnal_trace(2, 2)
        platform = tree_platform()
        assert load_trace("maint:dwell=4,gap=1", platform) == \
            maintenance_trace(platform, dwell=4, gap=1)
        with pytest.raises(ValueError, match="needs the platform"):
            load_trace("maint:dwell=4")
        with pytest.raises(ValueError, match="unknown trace family"):
            load_trace("tsunami:n=3")
        with pytest.raises(ValueError, match="unknown option"):
            load_trace("flash:bogus=1")


# ---------------------------------------------------------------------------
# replan: transitions, budget, fallback
# ---------------------------------------------------------------------------

class TestApplyEvent:
    def test_transition_errors(self):
        state = admitted_state()
        with pytest.raises(ValueError, match="already running"):
            apply_event(state, Event("admit", app="a", workload="fig1"))
        with pytest.raises(ValueError, match="no running application"):
            apply_event(state, Event("evict", app="zzz"))
        with pytest.raises(ValueError, match="no running application"):
            apply_event(state, Event("load", app="zzz", rho=1))
        with pytest.raises(ValueError, match="unknown server"):
            apply_event(state, Event("drain", servers=("nope",)))
        with pytest.raises(ValueError, match="nowhere to run"):
            apply_event(state, Event("drain", servers=("S1", "S2", "S3")))

    def test_load_retargets_in_place(self):
        state = admitted_state()
        multi, drained = apply_event(state, Event("load", app="a", rho=F(99)))
        assert multi["a"].period_target == 99
        assert drained == frozenset()


class TestReplan:
    @pytest.mark.parametrize("event", [None, Event("noop")])
    def test_noop_is_bit_for_bit(self, event):
        # Property (over several incumbents): no event, no migration —
        # the incumbent's very mapping object comes back.
        for seed in (1, 2, 3):
            report = replay(
                flash_crowd_trace(6, seed=seed), Platform.homogeneous(3),
                compare_cold=False,
            )
            state = report.final
            result = replan(state, event, budget=None)
            assert result.noop
            assert result.state.mapping is state.mapping
            assert result.moved == () and result.migration_cost == 0

    def test_admit_places_without_moving_survivors(self):
        state = admitted_state()
        before = dict(state.mapping.items())
        result = replan(
            state, Event("admit", app="b", workload="chain:n=3", rho=F(60)),
            budget=0,
        )
        assert sorted(result.admitted) == ["b.C0", "b.C1", "b.C2"]
        assert result.moved == () and result.forced == ()
        after = dict(result.state.mapping.items())
        assert {s: after[s] for s in before} == before

    def test_budget_bounds_voluntary_moves(self):
        platform = Platform.homogeneous(3)
        for budget in (0, 1, 2):
            report = replay(
                flash_crowd_trace(8, seed=5), platform,
                budget=budget, compare_cold=False,
            )
            for step in report.steps:
                # Feasibility overrides the budget — only the cold
                # fallback may exceed it.
                assert step.warm_moved <= budget or step.fallback

    def test_drain_forces_evacuation(self):
        state = admitted_state(Platform.homogeneous(2))
        victims = {
            svc for svc in state.multi.combined_graph.nodes
            if state.mapping.server(svc) == "S1"
        }
        assert victims  # fig1 on two servers always uses both
        result = replan(state, Event("drain", servers=("S1",)), budget=0)
        assert set(result.forced) == victims
        assert result.moved == ()
        assert result.state.drained == frozenset({"S1"})
        assert all(
            server == "S2" for _, server in result.state.mapping.items()
        )
        assert result.migration_cost > 0
        restored = replan(result.state, Event("restore", servers=("S1",)))
        assert restored.state.drained == frozenset()

    def test_evict_to_empty(self):
        state = admitted_state()
        result = replan(state, Event("evict", app="a"))
        assert result.feasible and result.value == 0
        assert len(result.state.multi) == 0
        assert dict(result.state.mapping.items()) == {}

    def test_never_infeasible_when_cold_is(self):
        # Property: whenever the from-scratch solve finds a feasible
        # mapping, the warm repair (fallback included) is feasible too.
        for seed in (2, 9):
            report = replay(
                flash_crowd_trace(8, seed=seed), Platform.homogeneous(3),
                budget=1,
            )
            for step in report.steps:
                if step.cold_feasible:
                    assert step.warm_feasible

    def test_migration_sizes_price_selectivity(self):
        state = admitted_state()
        sizes = migration_sizes(state.multi.combined_graph)
        assert set(sizes) == set(state.multi.combined_graph.nodes)
        assert all(size > 0 for size in sizes.values())


# ---------------------------------------------------------------------------
# The contention gate, audited per caller
# ---------------------------------------------------------------------------

class TestContentionGate:
    def test_incremental_shared_costs_refuses_contended_trees(self):
        platform = tree_platform()
        multi = load_concurrent_workload("chain:n=3").multi
        mapping = greedy_shared_mapping(multi.combined_graph, platform)
        with pytest.raises(ValueError, match="contended"):
            IncrementalSharedCosts(multi.combined_graph, platform, mapping)

    def test_placement_evaluator_dispatches_to_full_costs(self):
        platform = tree_platform()
        multi = load_concurrent_workload("chain:n=3").multi
        mapping = greedy_shared_mapping(multi.combined_graph, platform)
        for shared in (True, False):
            evaluator = placement_evaluator(
                multi.combined_graph, platform, mapping, shared=shared
            )
            assert isinstance(evaluator, FullPlacementCosts)

    def test_optimize_shared_mapping_exhaustive_branch(self):
        # 3 services on 4 servers: 64 mappings, the exhaustive scan must
        # score them through the contention-aware exact model.
        platform = tree_platform()
        graph = load_concurrent_workload("chain:n=3").multi.combined_graph
        value, mapping = optimize_shared_mapping(
            graph, CommModel.OVERLAP, platform, weights=None
        )
        assert value == exact_placement_value(
            graph, platform, mapping, model=CommModel.OVERLAP, shared=True
        )

    def test_optimize_shared_mapping_local_search_branch(self):
        # 5 services on 4 servers: 1024 mappings > the 512 exhaustive
        # limit, so the greedy-seed + local-search path runs — through
        # FullPlacementCosts, not the raising incremental evaluator.
        platform = tree_platform()
        graph = load_concurrent_workload("chain:n=5").multi.combined_graph
        value, mapping = optimize_shared_mapping(
            graph, CommModel.OVERLAP, platform, weights=None
        )
        assert value == exact_placement_value(
            graph, platform, mapping, model=CommModel.OVERLAP, shared=True
        )

    def test_cold_solve_under_drain_on_contended_tree(self):
        platform = tree_platform()
        multi = load_concurrent_workload("chain:n=3").multi
        drained = frozenset({platform.names[0]})
        value, mapping = cold_solve(multi, platform, drained=drained)
        assert platform.names[0] not in dict(mapping.items()).values()
        assert value == exact_placement_value(
            multi.combined_graph, platform, mapping,
            model=CommModel.OVERLAP, shared=True,
        )

    def test_replan_maintenance_on_contended_tree(self):
        platform = tree_platform()
        state = admitted_state(platform, workload="chain:n=3", rho=F(60))
        for event in maintenance_trace(platform):
            victims = {
                svc for svc, server in state.mapping.items()
                if server in event.servers
            } if event.kind == "drain" else set()
            result = replan(state, event, budget=1)
            state = result.state
            occupied = set(dict(state.mapping.items()).values())
            assert not occupied & state.drained
            assert set(result.forced) == victims
        assert state.drained == frozenset()


# ---------------------------------------------------------------------------
# replay + CLI
# ---------------------------------------------------------------------------

class TestReplay:
    def test_aggregates_and_timeline(self):
        report = replay(flash_crowd_trace(8, seed=5), Platform.homogeneous(3))
        assert len(report.steps) == 8
        aggregates = report.aggregates()
        assert aggregates["events"] == 8
        assert aggregates["mean_period_ratio"] >= 1.0 or \
            aggregates["mean_period_ratio"] is None
        assert report.total_cold_moves is not None
        table = report.summary_table()
        assert "ratio" in table and "cold mv" in table
        payload = report.as_dict()
        assert len(payload["timeline"]) == 8

    def test_without_cold_baseline(self):
        report = replay(
            flash_crowd_trace(6, seed=5), Platform.homogeneous(3),
            compare_cold=False,
        )
        assert report.mean_period_ratio is None
        assert report.total_cold_moves is None
        assert all(s.cold_period is None for s in report.steps)


class TestReplayCLI:
    def test_text_output(self, capsys):
        assert cli_main(
            ["replay", "flash:n=6,seed=1", "--platform", "hom:n=3",
             "--budget", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "admit crowd0" in out
        assert "move_ratio" in out

    def test_json_output(self, capsys):
        assert cli_main(
            ["replay", "flash:n=6,seed=1", "--platform", "hom:n=3",
             "--no-cold", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregates"]["events"] == 6
        assert len(payload["timeline"]) == 6

    def test_save_csv(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        assert cli_main(
            ["replay", "flash:n=6,seed=1", "--platform", "hom:n=3",
             "--no-cold", "--save-csv", str(path)]
        ) == 0
        capsys.readouterr()
        assert ScenarioTrace.load_csv(path) == flash_crowd_trace(6, seed=1)

    def test_error_paths_return_2(self, capsys):
        assert cli_main(
            ["replay", "tsunami:n=3", "--platform", "hom:n=3"]
        ) == 2
        assert cli_main(
            ["replay", "maint:dwell=4", "--platform", "hom:n=3"]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
