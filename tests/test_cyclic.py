"""Unit and property tests for the cyclic scheduling substrate (MCR)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cyclic import (
    EventGraph,
    InfeasibleScheduleError,
    brute_force_mcr,
    earliest_times,
    is_feasible,
    minimum_period,
)

F = Fraction


def simple_cycle_graph(weights, heights):
    """A single directed cycle with the given edge weights/heights."""
    eg = EventGraph()
    n = len(weights)
    for i in range(n):
        eg.add_constraint(i, (i + 1) % n, weights[i], heights[i])
    return eg


class TestEventGraph:
    def test_idempotent_events(self):
        eg = EventGraph()
        assert eg.add_event("x") == eg.add_event("x")
        assert len(eg) == 1
        assert "x" in eg

    def test_negative_height_rejected(self):
        eg = EventGraph()
        with pytest.raises(ValueError):
            eg.add_constraint("a", "b", 1, height=-1)

    def test_labels_roundtrip(self):
        eg = EventGraph()
        eg.add_constraint("a", "b", 1, 0)
        assert eg.label(eg.index("a")) == "a"
        assert set(eg.labels) == {"a", "b"}


class TestMinimumPeriod:
    def test_single_server_cycle(self):
        # in(1) -> comp(4) -> out(1) -> wrap: period = 6
        eg = EventGraph()
        eg.add_constraint("in", "comp", 1, 0)
        eg.add_constraint("comp", "out", 4, 0)
        eg.add_constraint("out", "in", 1, 1)
        assert minimum_period(eg) == 6

    def test_independent_self_loops_take_max(self):
        eg = EventGraph()
        eg.add_constraint("s", "s", 5, 1)
        eg.add_constraint("t", "t", 3, 1)
        assert minimum_period(eg) == 5

    def test_fractional_ratio(self):
        eg = simple_cycle_graph([F(23)], [3])
        assert minimum_period(eg) == F(23, 3)

    def test_floor_respected(self):
        eg = simple_cycle_graph([F(4)], [1])
        assert minimum_period(eg, floor=10) == 10

    def test_infeasible_zero_height(self):
        eg = simple_cycle_graph([F(1), F(1)], [0, 0])
        with pytest.raises(InfeasibleScheduleError):
            minimum_period(eg)

    def test_acyclic_graph_returns_floor(self):
        eg = EventGraph()
        eg.add_constraint("a", "b", 7, 0)
        eg.add_constraint("b", "c", 3, 0)
        assert minimum_period(eg) == 0
        assert minimum_period(eg, floor=2) == 2

    def test_negative_weights_ok(self):
        eg = simple_cycle_graph([F(-1), F(5)], [1, 1])
        assert minimum_period(eg) == 2

    def test_is_feasible_monotone(self):
        eg = simple_cycle_graph([F(10), F(4)], [1, 1])
        assert not is_feasible(eg, 6)
        assert is_feasible(eg, 7)
        assert is_feasible(eg, 8)


class TestEarliestTimes:
    def test_chain_times(self):
        eg = EventGraph()
        eg.add_constraint("a", "b", 2, 0)
        eg.add_constraint("b", "c", 3, 0)
        times = earliest_times(eg, 10)
        assert times["a"] == 0
        assert times["b"] == 2
        assert times["c"] == 5

    def test_height_reduces_offset(self):
        eg = EventGraph()
        eg.add_constraint("a", "b", 12, 1)
        times = earliest_times(eg, 10)
        assert times["b"] == 2  # 12 - 10

    def test_infeasible_raises(self):
        eg = simple_cycle_graph([F(10)], [1])
        with pytest.raises(InfeasibleScheduleError):
            earliest_times(eg, 5)

    def test_times_satisfy_constraints(self):
        eg = EventGraph()
        eg.add_constraint("a", "b", 3, 0)
        eg.add_constraint("b", "c", 4, 1)
        eg.add_constraint("c", "a", 2, 1)
        lam = minimum_period(eg)
        times = earliest_times(eg, lam)
        for e in eg.edges:
            u, v = eg.label(e.src), eg.label(e.dst)
            assert times[v] >= times[u] + e.weight - lam * e.height


@st.composite
def random_event_graph(draw):
    n = draw(st.integers(2, 6))
    n_edges = draw(st.integers(1, 10))
    eg = EventGraph()
    for node in range(n):
        eg.add_event(node)
    height_one_somewhere = False
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            h = 1  # self loops must advance data sets
        else:
            h = draw(st.integers(0, 2))
        w = draw(st.fractions(min_value=0, max_value=10))
        eg.add_constraint(u, v, w, h)
        height_one_somewhere = height_one_somewhere or h > 0
    return eg


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(random_event_graph())
    def test_mcr_matches_cycle_enumeration(self, eg):
        try:
            expected = brute_force_mcr(eg)
        except InfeasibleScheduleError:
            with pytest.raises(InfeasibleScheduleError):
                minimum_period(eg)
            return
        got = minimum_period(eg)
        if expected is None or expected < 0:
            assert got == 0  # floor
        else:
            assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(random_event_graph())
    def test_earliest_times_valid_at_mcr(self, eg):
        try:
            lam = minimum_period(eg)
        except InfeasibleScheduleError:
            return
        if lam == 0:
            lam = Fraction(1)
        times = earliest_times(eg, lam)
        for e in eg.edges:
            u, v = eg.label(e.src), eg.label(e.dst)
            assert times[v] >= times[u] + e.weight - lam * e.height
